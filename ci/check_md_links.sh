#!/usr/bin/env bash
# Markdown dead-link check for the top-level docs (CI job `doc-links`).
#
# Validates every inline link target in README.md / DESIGN.md /
# EXPERIMENTS.md without touching the network:
#
#   * relative file links must name an existing file or directory;
#   * `#anchor` fragments (same-file or cross-file) must match a heading
#     in the target document, using GitHub's slug rules (lowercase,
#     punctuation stripped, spaces to hyphens);
#   * http(s)/mailto targets are skipped — external liveness is not a
#     property of this repository.
#
# Exits nonzero listing every dead link. Plain bash + grep + sed; no
# dependencies, so it runs identically in CI and locally:
#
#   ci/check_md_links.sh
set -u
cd "$(dirname "$0")/.."

FILES=(README.md DESIGN.md EXPERIMENTS.md)
fail=0

# GitHub-style heading slug: lowercase, drop markdown emphasis, drop
# everything but alphanumerics/spaces/hyphens/underscores, spaces→hyphens.
slug() {
    printf '%s' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[`*]//g' -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# All heading anchors of a markdown file, one per line.
anchors_of() {
    grep -E '^#{1,6} ' "$1" | sed -E 's/^#+ +//' |
        while IFS= read -r heading; do
            slug "$heading"
        done
}

for f in "${FILES[@]}"; do
    if [ ! -f "$f" ]; then
        echo "$0: missing doc: $f"
        fail=1
        continue
    fi
    # Inline link/image targets: the parenthesized part of [text](target),
    # with any ' "title"' suffix cut at the first space.
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path=${target%%#*}
        anchor=""
        case "$target" in
        *#*) anchor=${target#*#} ;;
        esac
        if [ -n "$path" ] && [ ! -e "$path" ]; then
            echo "$f: dead link ($target): no such file: $path"
            fail=1
            continue
        fi
        if [ -n "$anchor" ]; then
            tf=${path:-$f}
            case "$tf" in
            *.md) ;;
            *) continue ;; # anchors into non-markdown targets: not checked
            esac
            if ! anchors_of "$tf" | grep -qx -- "$(slug "$anchor")"; then
                echo "$f: dead link ($target): no heading '#$anchor' in $tf"
                fail=1
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//; s/ .*$//')
done

if [ "$fail" -ne 0 ]; then
    echo "dead markdown links found"
    exit 1
fi
echo "markdown links OK (${FILES[*]})"
