//! The paper's §2.2 miscompilation story, end to end.
//!
//! A well-meaning optimizer applies common-subexpression elimination to the
//! redundant store sequence and reuses the *green* registers for the blue
//! store. The program still works in fault-free runs — conventional testing
//! passes — but a fault in `r1` or `r2` after the moves now corrupts *both*
//! store halves identically, so the hardware comparison passes and corrupt
//! data escapes to the output device.
//!
//! The TAL_FT type checker rejects the optimized code statically ("perfect
//! fault coverage relative to the fault model without needing to increase
//! the compiler test suite"); the fault-injection campaign confirms the SDC
//! is real.
//!
//! ```sh
//! cargo run --release --example miscompilation
//! ```

use std::sync::Arc;

use talft::core::check_program;
use talft::faultsim::{run_campaign, CampaignConfig};
use talft::isa::assemble;
use talft::machine::run_program;

const CORRECT: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

/// After "CSE": instructions 4–5 eliminated, blue store reuses r1/r2.
const MISCOMPILED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;

fn main() {
    // Both versions behave identically in fault-free runs...
    let ok = assemble(CORRECT).expect("assembles");
    let bad = assemble(MISCOMPILED).expect("assembles");
    let ok_prog = Arc::new(ok.program);
    let bad_prog = Arc::new(bad.program);
    let r1 = run_program(&ok_prog, 10_000);
    let r2 = run_program(&bad_prog, 10_000);
    assert_eq!(r1.trace, r2.trace);
    println!(
        "fault-free: both versions write {:?} — testing can't tell them apart",
        r1.trace
    );

    // ...but the checker can.
    let mut ok_arena = ok.arena;
    check_program(&ok_prog, &mut ok_arena).expect("correct version type-checks");
    println!("checker: correct version accepted ✓");
    let mut bad_arena = bad.arena;
    let err = check_program(&bad_prog, &mut bad_arena).expect_err("CSE version rejected");
    println!("checker: miscompiled version REJECTED — {err}");

    // And the rejection is justified: exhaustive injection finds silent
    // data corruption in the miscompiled version only.
    let cfg = CampaignConfig::default();
    let rep_ok = run_campaign(&ok_prog, &cfg).expect("golden run halts");
    let rep_bad = run_campaign(&bad_prog, &cfg).expect("golden run halts");
    println!(
        "campaign (correct):     {} injections, {} masked, {} detected, {} SDC",
        rep_ok.total, rep_ok.masked, rep_ok.detected, rep_ok.sdc
    );
    println!(
        "campaign (miscompiled): {} injections, {} masked, {} detected, {} SDC",
        rep_bad.total, rep_bad.masked, rep_bad.detected, rep_bad.sdc
    );
    assert!(rep_ok.fault_tolerant());
    assert!(rep_bad.sdc > 0);
    if let Some(v) = rep_bad.violations.first() {
        println!(
            "example SDC: {} at step {} set to {} — both store halves corrupted identically",
            v.site, v.at_step, v.value
        );
    }
}
