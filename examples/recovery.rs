//! Detect-and-restart recovery on top of TAL_FT detection (the extension
//! the paper declares orthogonal and omits — §2: "recovery is largely
//! orthogonal to detection").
//!
//! Theorem 4 is what makes naive restart *sound*: a detected fault's output
//! trace is always a prefix of the correct one, so replay-and-deduplicate
//! reconstructs exactly the fault-free stream. Run a kernel under a
//! periodic-fault storm and watch the logical output stay perfect.
//!
//! ```sh
//! cargo run --release --example recovery
//! ```

use talft::compiler::{compile, CompileOptions};
use talft::faultsim::{
    run_supervised, run_with_recovery, PlannedFault, SupervisorConfig, SupervisorOutcome,
};
use talft::isa::{Color, Reg};
use talft::machine::{run_program, FaultSite};
use talft::suite::{kernels, Scale};

fn main() {
    let kernel = &kernels(Scale::Tiny)[2]; // spec_mcf: graph relaxation
    println!("kernel: {} ({})", kernel.name, kernel.class);
    let c = compile(&kernel.source, &CompileOptions::default()).expect("compiles");

    let golden = run_program(&c.protected.program, 10_000_000);
    println!(
        "golden: {} outputs in {} steps",
        golden.trace.len(),
        golden.steps
    );

    // A storm: one upset per attempt for five attempts — program counters
    // and a general register, all guaranteed-live targets.
    let storm: Vec<PlannedFault> = (0..5)
        .map(|a| PlannedFault {
            attempt: a,
            at_step: 150 + u64::from(a) * 97,
            site: if a % 2 == 0 {
                FaultSite::Reg(Reg::Pc(Color::Green))
            } else {
                FaultSite::Reg(Reg::r(1))
            },
            value: -1 - i64::from(a),
        })
        .collect();

    let r = run_with_recovery(&c.protected.program, &storm, 8, 10_000_000);
    println!(
        "storm of {} planned faults: completed={} restarts={} total steps={}",
        storm.len(),
        r.completed,
        r.restarts,
        r.total_steps
    );
    assert!(r.completed, "recovery must eventually finish");
    assert!(r.restarts > 0, "the pc strikes are always detected");
    assert!(!r.replay_mismatch, "Theorem 4's prefix property held");
    assert_eq!(r.logical_trace, golden.trace, "logical output is exact");
    println!(
        "logical output identical to the fault-free run ({} outputs) ✓",
        r.logical_trace.len()
    );
    println!("restart soundness is exactly Theorem 4's prefix guarantee.");

    // The supervisor adds operational policy: an attempt that overruns a
    // too-small step budget restarts with an escalated one, and the
    // three-way outcome separates a clean run from a rescued one.
    let sup = run_supervised(
        &c.protected.program,
        &storm,
        &SupervisorConfig {
            max_restarts: 8,
            base_step_budget: golden.steps / 2, // deliberately too small
            escalation_percent: 100,
            ..SupervisorConfig::default()
        },
    );
    assert_eq!(sup.outcome, SupervisorOutcome::Degraded);
    assert_eq!(sup.logical_trace, golden.trace);
    println!(
        "supervisor: {:?} after {} restarts (budget escalation {} -> {} steps), \
         logical output still exact ✓",
        sup.outcome,
        sup.restarts,
        sup.attempts.first().map_or(0, |a| a.budget),
        sup.attempts.last().map_or(0, |a| a.budget),
    );
}
