//! Quickstart: assemble the paper's redundant-store sequence (§2.2), prove
//! it fault tolerant with the type checker, run it, then inject a fault by
//! hand and watch the hardware catch it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use talft::core::check_program;
use talft::isa::{assemble, Reg};
use talft::machine::{inject, run, FaultSite, Machine, Status};

const SRC: &str = r#"
// Store 5 to the memory-mapped output cell at 4096 — twice, once per color.
// The hardware store queue compares the green and blue (address, value)
// pairs before anything becomes observable.
.data
region out at 4096 len 1 : int output

.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1      // green: enqueue the intent
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3      // blue: compare and commit
  halt
"#;

fn main() {
    // 1. Assemble.
    let mut asm = assemble(SRC).expect("assembles");
    println!("assembled {} instructions", asm.program.code_len());

    // 2. Type-check: this *proves* the program fault tolerant under the
    //    paper's single-event-upset model (Theorem 4).
    let report = check_program(&asm.program, &mut asm.arena).expect("well-typed");
    println!(
        "type checker: {} block(s), {} instruction(s) — program is provably fault tolerant",
        report.blocks, report.instrs
    );

    // 3. Fault-free run: exactly one observable write.
    let program = Arc::new(asm.program);
    let mut m = Machine::boot(Arc::clone(&program));
    let r = run(&mut m, 10_000);
    println!(
        "fault-free run: {:?} after {} steps, trace = {:?}",
        r.status, r.steps, r.trace
    );
    assert_eq!(r.trace, vec![(4096, 5)]);

    // 4. Now corrupt the green value register right after it is loaded —
    //    a single-event upset (rule reg-zap).
    let mut faulty = Machine::boot(Arc::clone(&program));
    talft::machine::step(&mut faulty); // fetch mov r1, G 5
    talft::machine::step(&mut faulty); // execute it
    inject(&mut faulty, FaultSite::Reg(Reg::r(1)), 999); // zap r1: 5 → 999
    let r = run(&mut faulty, 10_000);
    println!(
        "faulty run:     {:?} after {} steps, trace = {:?}",
        r.status, r.steps, r.trace
    );
    assert_eq!(
        r.status,
        Status::Fault,
        "the hardware must detect the fault"
    );
    assert!(
        r.trace.is_empty(),
        "nothing corrupt may reach the output device"
    );
    println!("the stB comparison caught the corrupted value before it became observable ✓");
}
