//! Run a full single-event-upset campaign over a compiled benchmark kernel
//! and print the Theorem 4 scorecard (the E2 experiment for one kernel).
//!
//! ```sh
//! cargo run --release --example fault_injection [-- kernel_name [stride]]
//! ```

use talft::compiler::{compile, CompileOptions};
use talft::faultsim::{golden_run, run_campaign, CampaignConfig};
use talft::suite::{kernels, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("spec_gzip", String::as_str);
    let stride: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let ks = kernels(Scale::Tiny);
    let kernel = ks.iter().find(|k| k.name == name).unwrap_or_else(|| {
        eprintln!("unknown kernel {name}; available:");
        for k in &ks {
            eprintln!("  {} — {}", k.name, k.class);
        }
        std::process::exit(1);
    });

    println!("kernel: {} ({})", kernel.name, kernel.class);
    let c = compile(&kernel.source, &CompileOptions::default()).expect("compiles");
    let cfg = CampaignConfig {
        stride,
        ..CampaignConfig::default()
    };

    // Corollary 3 first: the fault-free run never signals a fault.
    let golden = golden_run(&c.protected.program, &cfg).expect("golden run halts in budget");
    println!(
        "golden run: {} steps, {} observable writes, status {} (no false positives ✓)",
        golden.steps,
        golden.trace.len(),
        golden.status
    );

    // Theorem 4: every injected fault is masked or detected.
    println!("injecting at every {stride}-th step, every register and queue slot…");
    let rep = run_campaign(&c.protected.program, &cfg).expect("golden run halts");
    println!("protected binary:");
    println!("  injections : {}", rep.total);
    println!(
        "  masked     : {} ({:.1}%)",
        rep.masked,
        pct(rep.masked, rep.total)
    );
    println!(
        "  detected   : {} ({:.1}%)",
        rep.detected,
        pct(rep.detected, rep.total)
    );
    println!("  SDC        : {}", rep.sdc);
    println!("  violations : {}", rep.other_violations);
    assert!(
        rep.fault_tolerant(),
        "Theorem 4 violated: {:?}",
        rep.violations
    );
    println!("Theorem 4 holds on this kernel's entire sampled fault space ✓");

    // Contrast: the unprotected baseline under the identical campaign.
    let rep_base = run_campaign(&c.baseline.program, &cfg).expect("golden run halts");
    println!("unprotected baseline:");
    println!("  injections : {}", rep_base.total);
    println!("  masked     : {}", rep_base.masked);
    println!("  detected   : {}", rep_base.detected);
    println!(
        "  SDC        : {} ({:.1}%) — silent corruption the hardware never notices",
        rep_base.sdc,
        pct(rep_base.sdc, rep_base.total)
    );
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}
