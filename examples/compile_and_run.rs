//! Compile a Wile source program through the reliability transformation,
//! prove the output fault tolerant, run both variants, and report the
//! Figure 10-style overhead for this one program.
//!
//! ```sh
//! cargo run --example compile_and_run
//! ```

use talft::compiler::{compile, vir::interpret, CompileOptions};
use talft::core::check_program;
use talft::machine::run_program;
use talft::sim::{simulate, MachineModel};

/// A small dot-product-with-threshold workload.
const SRC: &str = r#"
array xs[16] = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
array ys[16] = [2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5];
output out[4];

func dot(n) {
  var acc = 0;
  var i = 0;
  while (i < n) {
    acc = acc + xs[i] * ys[i];
    i = i + 1;
  }
  return acc;
}

func main() {
  var d = dot(16);
  out[0] = d;
  if (d > 200) { out[1] = 1; } else { out[1] = 0; }
  out[2] = d & 255;
  out[3] = d >> 4;
}
"#;

fn main() {
    let opts = CompileOptions::default();
    let mut c = compile(SRC, &opts).expect("compiles");

    // The protected output type-checks: provably fault tolerant.
    let rep = check_program(&c.protected.program, &mut c.protected.arena)
        .expect("protected output is well-typed");
    println!(
        "protected: {} blocks, {} instructions — type-checks ✓",
        rep.blocks, rep.instrs
    );

    // The baseline is the same program without redundancy — the checker
    // rejects it (exactly the §2.2 failure mode).
    let base_err = check_program(&c.baseline.program, &mut c.baseline.arena)
        .expect_err("baseline must be rejected");
    println!("baseline:  rejected by the checker ({base_err}) ✓");

    // All three semantics agree on the observable trace.
    let reference = interpret(&c.vir, 10_000_000);
    let prot = run_program(&c.protected.program, 100_000_000);
    let base = run_program(&c.baseline.program, 100_000_000);
    assert_eq!(prot.trace, reference.trace);
    assert_eq!(base.trace, reference.trace);
    println!("trace ({} writes): {:?}", prot.trace.len(), prot.trace);

    // Figure 10 for this one program.
    let model = MachineModel::default();
    let bc = simulate(&c.baseline.sched, &reference.visits, &model);
    let pc = simulate(&c.protected.sched, &reference.visits, &model);
    let uc = simulate(&c.protected_unordered_sched, &reference.visits, &model);
    println!(
        "cycles: baseline {bc}, TAL-FT {pc} ({:.3}x), TAL-FT w/o ordering {uc} ({:.3}x)",
        pc as f64 / bc as f64,
        uc as f64 / bc as f64
    );
}
