//! The benchmark suite for the TAL_FT evaluation (paper §5).
//!
//! The paper compiled SPEC CINT2000 and MediaBench with the modified
//! VELOCITY compiler. We reproduce the *workload classes* of those suites as
//! deterministic Wile kernels (DESIGN.md "Substitutions"): each kernel
//! exercises the memory/ILP/branch mix characteristic of its namesake —
//! compression match-finding, graph relaxation, bit manipulation, token
//! scanning, DSP filters, quantization — and writes a self-checking stream
//! of results to its `out` region.
//!
//! Kernels are size-parameterized ([`Scale`]) so fault-injection campaigns
//! (which replay the whole program per injected fault) can use small inputs
//! while timing runs use larger ones.

#![warn(missing_docs)]

pub mod kernels;

pub use kernels::{kernels, Kernel, Scale};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_both_families() {
        let ks = kernels(Scale::Tiny);
        assert!(ks.iter().filter(|k| k.name.starts_with("spec_")).count() >= 7);
        assert!(ks.iter().filter(|k| k.name.starts_with("mb_")).count() >= 7);
    }

    #[test]
    fn names_are_unique() {
        let ks = kernels(Scale::Small);
        let mut names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }
}
