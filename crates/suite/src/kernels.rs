//! The Wile kernels standing in for SPEC CINT2000 / MediaBench workloads.
//!
//! Every kernel generates its own input deterministically (a 20-bit LCG
//! stream computed in Wile — the reproduction cannot ship SPEC's reference
//! inputs), computes its class's characteristic inner loop, and writes
//! per-element results plus a final checksum to the observable `out` region.

/// Kernel scale: array sizes / trip counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Campaign-sized (fault injection replays the whole run per fault).
    Tiny,
    /// Test-sized.
    Small,
    /// Timing-sized (Figure 10 runs).
    Full,
}

impl Scale {
    /// The base element count for this scale (power of two).
    #[must_use]
    pub fn n(self) -> i64 {
        match self {
            Scale::Tiny => 8,
            Scale::Small => 32,
            Scale::Full => 128,
        }
    }
}

/// A named benchmark kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Benchmark name (`spec_*` / `mb_*`, after the paper's suites).
    pub name: &'static str,
    /// Workload class description.
    pub class: &'static str,
    /// Wile source text.
    pub source: String,
}

/// Shared input generator: fills `data[n]` with a 20-bit LCG stream.
fn lcg_fill(n: i64) -> String {
    format!(
        "var seed = 12345;\n  var gi = 0;\n  while (gi < {n}) {{\n    \
         seed = (seed * 1103515245 + 12345) & 1048575;\n    \
         data[gi] = seed;\n    gi = gi + 1;\n  }}\n"
    )
}

/// All kernels at the given scale.
#[must_use]
pub fn kernels(scale: Scale) -> Vec<Kernel> {
    let n = scale.n();
    vec![
        spec_gzip(n),
        spec_vpr(n),
        spec_mcf(n),
        spec_crafty(n),
        spec_parser(n),
        spec_bzip2(n),
        spec_twolf(n),
        mb_adpcm(n),
        mb_epic(n),
        mb_g721(n),
        mb_gsm(n),
        mb_jpeg(n),
        mb_mpeg2(n),
        mb_pegwit(n),
        spec_gap(n),
        spec_vortex(n),
        mb_mesa(n),
        mb_rasta(n),
    ]
}

/// Permutation composition and cycle counting (gap's group arithmetic).
fn spec_gap(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray perm[{n}];\narray comp[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {n}) {{ perm[i] = i; i = i + 1; }}\n  \
  var k = 0;\n  while (k < {n}) {{\n    \
    var a = data[k] & {mask};\n    var b = (data[k] >> 7) & {mask};\n    \
    var t = perm[a];\n    perm[a] = perm[b];\n    perm[b] = t;\n    k = k + 1;\n  }}\n  \
  var j = 0;\n  var fixed = 0;\n  while (j < {n}) {{\n    \
    comp[j] = perm[perm[j] & {mask}];\n    \
    if (comp[j] == j) {{ fixed = fixed + 1; }}\n    \
    out[j] = comp[j];\n    j = j + 1;\n  }}\n  out[0] = fixed;\n}}\n",
        mask = n - 1
    );
    Kernel {
        name: "spec_gap",
        class: "permutation group arithmetic",
        source,
    }
}

/// Object-store bucket lookup with probing (vortex's OO database shape).
fn spec_vortex(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray buckets[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {n}) {{ buckets[i] = 0 - 1; i = i + 1; }}\n  \
  var k = 0;\n  while (k < {half}) {{\n    \
    var key = data[k] & 65535;\n    var h = (key * 2654435761) & {mask};\n    \
    var probes = 0;\n    var placed = 0;\n    \
    while (probes < 4 && placed == 0) {{\n      \
      var slot = (h + probes) & {mask};\n      \
      if (buckets[slot] == 0 - 1) {{ buckets[slot] = key; placed = 1; }}\n      \
      probes = probes + 1;\n    }}\n    k = k + 1;\n  }}\n  \
  var q = 0;\n  var hits = 0;\n  while (q < {half}) {{\n    \
    var key = data[q] & 65535;\n    var h = (key * 2654435761) & {mask};\n    \
    var probes = 0;\n    var found = 0;\n    \
    while (probes < 4) {{\n      \
      var slot = (h + probes) & {mask};\n      \
      if (buckets[slot] == key) {{ found = 1; }}\n      \
      probes = probes + 1;\n    }}\n    \
    hits = hits + found;\n    out[q] = found;\n    q = q + 1;\n  }}\n  \
  out[0] = hits;\n}}\n",
        mask = n - 1,
        half = n / 2
    );
    Kernel {
        name: "spec_vortex",
        class: "object-store hash lookup",
        source,
    }
}

/// Fixed-point vertex transform (mesa's 3D pipeline shape): a 3x3 matrix
/// times a stream of vectors, with `>> 8` fixed-point scaling.
fn mb_mesa(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray mtx[8] = [256, 12, 3, 7, 250, 9, 2, 14];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i + 3 <= {n}) {{\n    \
    var x = (data[i] & 1023) - 512;\n    \
    var y = (data[i + 1] & 1023) - 512;\n    \
    var z = (data[i + 2] & 1023) - 512;\n    \
    out[i] = (mtx[0] * x + mtx[1] * y + mtx[2] * z) >> 8;\n    \
    out[i + 1] = (mtx[3] * x + mtx[4] * y + mtx[5] * z) >> 8;\n    \
    out[i + 2] = (mtx[6] * x + mtx[7] * y + mtx[2] * z) >> 8;\n    \
    i = i + 3;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_mesa",
        class: "fixed-point vertex transform",
        source,
    }
}

/// Critical-band filter energy accumulation (rasta's speech front end).
fn mb_rasta(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[8];\nfunc main() {{\n  {fill}\
  var band = 0;\n  while (band < 8) {{\n    \
    var lo = band * ({n} >> 3);\n    var hi = lo + ({n} >> 3);\n    \
    var acc = 0;\n    var i = lo;\n    while (i < hi) {{\n      \
      var v = (data[i] & 511) - 256;\n      \
      acc = acc + v * v;\n      i = i + 1;\n    }}\n    \
    var l = 0;\n    var t = acc;\n    while (t > 0) {{ t = t >> 1; l = l + 1; }}\n    \
    out[band] = l;\n    band = band + 1;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_rasta",
        class: "filter-bank energies",
        source,
    }
}

/// LZ77-style match finding (the gzip deflate inner loop): for each
/// position, the longest match (≤ 4) against a sliding window.
fn spec_gzip(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var sum = 0;\n  var i = 4;\n  while (i < {n}) {{\n    \
    var best = 0;\n    var j = 1;\n    while (j < 4) {{\n      \
      var len = 0;\n      \
      if (data[i - j] == data[i]) {{ len = 1;\n        \
        if (i + 1 < {n}) {{ if (data[i - j + 1] == data[i + 1]) {{ len = 2; }} }}\n      }}\n      \
      if (len > best) {{ best = len; }}\n      j = j + 1;\n    }}\n    \
    out[i] = best;\n    sum = sum + best;\n    i = i + 1;\n  }}\n  \
  out[0] = sum;\n}}\n"
    );
    Kernel {
        name: "spec_gzip",
        class: "compression match-finding",
        source,
    }
}

/// Routing-cost relaxation sweeps (vpr's route loop shape).
fn spec_vpr(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray cost[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {n}) {{ cost[i] = data[i] & 255; i = i + 1; }}\n  \
  var sweep = 0;\n  while (sweep < 4) {{\n    var k = 1;\n    while (k < {n}) {{\n      \
      var c = cost[k - 1] + (data[k] & 15) + 1;\n      \
      if (c < cost[k]) {{ cost[k] = c; }}\n      k = k + 1;\n    }}\n    \
    sweep = sweep + 1;\n  }}\n  \
  var j = 0;\n  while (j < {n}) {{ out[j] = cost[j]; j = j + 1; }}\n}}\n"
    );
    Kernel {
        name: "spec_vpr",
        class: "routing cost relaxation",
        source,
    }
}

/// Bellman–Ford edge relaxation (mcf's network-simplex flavor).
fn spec_mcf(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray dist[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {n}) {{ dist[i] = 1048575; i = i + 1; }}\n  dist[0] = 0;\n  \
  var round = 0;\n  while (round < 4) {{\n    var e = 0;\n    while (e < {n}) {{\n      \
      var u = data[e] & {umask};\n      var v = (data[e] >> 5) & {umask};\n      \
      var w = (data[e] >> 10) & 63;\n      \
      var nd = dist[u] + w;\n      if (nd < dist[v]) {{ dist[v] = nd; }}\n      \
      e = e + 1;\n    }}\n    round = round + 1;\n  }}\n  \
  var j = 0;\n  while (j < {n}) {{ out[j] = dist[j] & 1048575; j = j + 1; }}\n}}\n",
        umask = n - 1
    );
    Kernel {
        name: "spec_mcf",
        class: "shortest-path relaxation",
        source,
    }
}

/// Bitboard population counts and mobility masks (crafty's move generator).
fn spec_crafty(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  var total = 0;\n  while (i < {n}) {{\n    \
    var b = data[i];\n    var pop = 0;\n    var k = 0;\n    while (k < 20) {{\n      \
      pop = pop + (b & 1);\n      b = b >> 1;\n      k = k + 1;\n    }}\n    \
    var mob = (data[i] << 1) ^ (data[i] >> 1);\n    \
    out[i] = pop + (mob & 7);\n    total = total + pop;\n    i = i + 1;\n  }}\n  \
  out[0] = total;\n}}\n"
    );
    Kernel {
        name: "spec_crafty",
        class: "bitboard population counts",
        source,
    }
}

/// Token scanning: classify a byte stream and count token runs (parser's
/// dictionary scan shape).
fn spec_parser(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[4];\nfunc main() {{\n  {fill}\
  var tokens = 0;\n  var inword = 0;\n  var alpha = 0;\n  var i = 0;\n  \
  while (i < {n}) {{\n    var c = data[i] & 127;\n    \
    var isalpha = 0;\n    if (c >= 65) {{ if (c < 91) {{ isalpha = 1; }} }}\n    \
    if (c >= 97) {{ if (c < 123) {{ isalpha = 1; }} }}\n    \
    alpha = alpha + isalpha;\n    \
    if (isalpha == 1) {{\n      if (inword == 0) {{ tokens = tokens + 1; inword = 1; }}\n    \
    }} else {{ inword = 0; }}\n    i = i + 1;\n  }}\n  \
  out[0] = tokens;\n  out[1] = alpha;\n  out[2] = {n} - alpha;\n  out[3] = tokens * 2 + alpha;\n}}\n"
    );
    Kernel {
        name: "spec_parser",
        class: "token scanning",
        source,
    }
}

/// Move-to-front transform (bzip2's second stage).
fn spec_bzip2(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray mtf[16];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var t = 0;\n  while (t < 16) {{ mtf[t] = t; t = t + 1; }}\n  \
  var i = 0;\n  var sum = 0;\n  while (i < {n}) {{\n    \
    var sym = data[i] & 15;\n    \
    var idx = 0;\n    var k = 0;\n    while (k < 16) {{\n      \
      if (mtf[k] == sym) {{ idx = k; }}\n      k = k + 1;\n    }}\n    \
    var m = idx;\n    while (m > 0) {{ mtf[m] = mtf[m - 1]; m = m - 1; }}\n    \
    mtf[0] = sym;\n    \
    out[i] = idx;\n    sum = sum + idx;\n    i = i + 1;\n  }}\n  \
  out[0] = sum;\n}}\n"
    );
    Kernel {
        name: "spec_bzip2",
        class: "move-to-front transform",
        source,
    }
}

/// Placement swap-cost evaluation (twolf's annealing inner loop).
fn spec_twolf(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray posx[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {n}) {{ posx[i] = data[i] & 511; i = i + 1; }}\n  \
  var best = 1048575;\n  var j = 0;\n  while (j < {n}) {{\n    \
    var k = j + 1;\n    var cost = 0;\n    while (k < {n}) {{\n      \
      var d = posx[j] - posx[k];\n      if (d < 0) {{ d = 0 - d; }}\n      \
      cost = cost + d;\n      k = k + 4;\n    }}\n    \
    out[j] = cost;\n    if (cost < best) {{ best = cost; }}\n    j = j + 1;\n  }}\n  \
  out[0] = best;\n}}\n"
    );
    Kernel {
        name: "spec_twolf",
        class: "placement swap cost",
        source,
    }
}

/// ADPCM step-size encoder (adpcm's rawcaudio shape).
fn mb_adpcm(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray steptab[8] = [7, 11, 16, 24, 34, 49, 70, 100];\n\
output out[{n}];\nfunc main() {{\n  {fill}\
  var pred = 0;\n  var stepidx = 0;\n  var i = 0;\n  while (i < {n}) {{\n    \
    var sample = (data[i] & 2047) - 1024;\n    \
    var delta = sample - pred;\n    var sign = 0;\n    \
    if (delta < 0) {{ sign = 8; delta = 0 - delta; }}\n    \
    var step = steptab[stepidx];\n    var code = 0;\n    \
    if (delta >= step) {{ code = 4; delta = delta - step; }}\n    \
    if (delta >= (step >> 1)) {{ code = code + 2; delta = delta - (step >> 1); }}\n    \
    if (delta >= (step >> 2)) {{ code = code + 1; }}\n    \
    var diff = step >> 3;\n    \
    if (code & 4 == 4) {{ diff = diff + step; }}\n    \
    if (code & 2 == 2) {{ diff = diff + (step >> 1); }}\n    \
    if (code & 1 == 1) {{ diff = diff + (step >> 2); }}\n    \
    if (sign == 8) {{ pred = pred - diff; }} else {{ pred = pred + diff; }}\n    \
    if (pred > 1023) {{ pred = 1023; }}\n    if (pred < -1024) {{ pred = -1024; }}\n    \
    if (code >= 4) {{ stepidx = stepidx + 1; }} else {{ stepidx = stepidx - 1; }}\n    \
    if (stepidx < 0) {{ stepidx = 0; }}\n    if (stepidx > 7) {{ stepidx = 7; }}\n    \
    out[i] = code + sign;\n    i = i + 1;\n  }}\n  out[0] = pred & 2047;\n}}\n"
    );
    Kernel {
        name: "mb_adpcm",
        class: "ADPCM encode",
        source,
    }
}

/// 5-tap low-pass filter + decimation (epic's pyramid stage).
fn mb_epic(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let half = n / 2;
    let source = format!(
        "array data[{n}];\noutput out[{half}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  while (i < {half}) {{\n    var c = i * 2;\n    \
    var acc = data[c] * 6;\n    \
    if (c >= 1) {{ acc = acc + data[c - 1] * 4; }}\n    \
    if (c >= 2) {{ acc = acc + data[c - 2]; }}\n    \
    if (c + 1 < {n}) {{ acc = acc + data[c + 1] * 4; }}\n    \
    if (c + 2 < {n}) {{ acc = acc + data[c + 2]; }}\n    \
    out[i] = (acc >> 4) & 1048575;\n    i = i + 1;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_epic",
        class: "image pyramid filter",
        source,
    }
}

/// Threshold quantizer (g721's quan() scan).
fn mb_g721(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray thresh[8] = [62, 125, 251, 502, 1004, 2008, 4016, 8032];\n\
output out[{n}];\nfunc main() {{\n  {fill}\
  var i = 0;\n  var hist = 0;\n  while (i < {n}) {{\n    \
    var v = data[i] & 8191;\n    var q = 0;\n    var k = 0;\n    \
    while (k < 8) {{\n      if (v >= thresh[k]) {{ q = k + 1; }}\n      k = k + 1;\n    }}\n    \
    out[i] = q;\n    hist = hist + q;\n    i = i + 1;\n  }}\n  out[0] = hist;\n}}\n"
    );
    Kernel {
        name: "mb_g721",
        class: "threshold quantizer",
        source,
    }
}

/// Autocorrelation lags (gsm's LPC analysis front end).
fn mb_gsm(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[8];\nfunc main() {{\n  {fill}\
  var lag = 0;\n  while (lag < 5) {{\n    var acc = 0;\n    var i = 0;\n    \
    while (i + lag < {n}) {{\n      \
      var a = (data[i] & 255) - 128;\n      var b = (data[i + lag] & 255) - 128;\n      \
      acc = acc + a * b;\n      i = i + 1;\n    }}\n    \
    out[lag] = acc & 1048575;\n    lag = lag + 1;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_gsm",
        class: "LPC autocorrelation",
        source,
    }
}

/// Quantization + zigzag reorder over 8×8 blocks (jpeg's cjpeg shape).
fn mb_jpeg(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\narray zig[8] = [0, 1, 5, 6, 2, 4, 7, 3];\n\
array qshift[8] = [3, 4, 4, 5, 5, 6, 6, 7];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var blk = 0;\n  while (blk + 8 <= {n}) {{\n    var k = 0;\n    while (k < 8) {{\n      \
      var src = blk + zig[k];\n      var q = data[src] >> qshift[k];\n      \
      out[blk + k] = q;\n      k = k + 1;\n    }}\n    blk = blk + 8;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_jpeg",
        class: "quantize + zigzag",
        source,
    }
}

/// Butterfly IDCT-lite over rows of 8 (mpeg2dec's idctcol shape).
fn mb_mpeg2(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var blk = 0;\n  while (blk + 8 <= {n}) {{\n    \
    var s0 = data[blk] + data[blk + 4];\n    var d0 = data[blk] - data[blk + 4];\n    \
    var s1 = data[blk + 1] + data[blk + 5];\n    var d1 = data[blk + 1] - data[blk + 5];\n    \
    var s2 = data[blk + 2] + data[blk + 6];\n    var d2 = data[blk + 2] - data[blk + 6];\n    \
    var s3 = data[blk + 3] + data[blk + 7];\n    var d3 = data[blk + 3] - data[blk + 7];\n    \
    out[blk] = (s0 + s2) >> 1;\n    out[blk + 1] = (s1 + s3) >> 1;\n    \
    out[blk + 2] = (s0 - s2) >> 1;\n    out[blk + 3] = (s1 - s3) >> 1;\n    \
    out[blk + 4] = (d0 + d2) >> 1;\n    out[blk + 5] = (d1 + d3) >> 1;\n    \
    out[blk + 6] = (d0 - d2) >> 1;\n    out[blk + 7] = (d1 - d3) >> 1;\n    \
    blk = blk + 8;\n  }}\n}}\n"
    );
    Kernel {
        name: "mb_mpeg2",
        class: "IDCT butterflies",
        source,
    }
}

/// Polynomial rolling hash with a mixing pass (pegwit's arithmetic shape).
fn mb_pegwit(n: i64) -> Kernel {
    let fill = lcg_fill(n);
    let source = format!(
        "array data[{n}];\noutput out[{n}];\nfunc main() {{\n  {fill}\
  var h = 5381;\n  var i = 0;\n  while (i < {n}) {{\n    \
    h = (h * 33 + data[i]) & 16777215;\n    \
    out[i] = h & 65535;\n    i = i + 1;\n  }}\n  \
  var j = 0;\n  var mix = 0;\n  while (j < {n}) {{\n    \
    mix = (mix ^ out[j]) * 2654435761;\n    mix = (mix >> 8) & 16777215;\n    \
    j = j + 1;\n  }}\n  out[0] = mix & 65535;\n}}\n"
    );
    Kernel {
        name: "mb_pegwit",
        class: "modular rolling hash",
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_compiler::{compile, vir::interpret, CompileOptions};

    /// Every kernel at every scale parses, analyzes, lowers, and its VIR
    /// reference run halts with a non-trivial trace.
    #[test]
    fn kernels_lower_and_run_at_all_scales() {
        for scale in [Scale::Tiny, Scale::Small] {
            for k in kernels(scale) {
                let c = compile(&k.source, &CompileOptions::default())
                    .unwrap_or_else(|e| panic!("{} fails to compile: {e}", k.name));
                let r = interpret(&c.vir, 10_000_000);
                assert!(r.halted, "{} did not halt", k.name);
                assert!(!r.trace.is_empty(), "{} produced no output", k.name);
            }
        }
    }

    /// Deterministic: two compilations/interpretations agree.
    #[test]
    fn kernels_are_deterministic() {
        for k in kernels(Scale::Tiny) {
            let c1 = compile(&k.source, &CompileOptions::default()).expect("compiles");
            let c2 = compile(&k.source, &CompileOptions::default()).expect("compiles");
            let r1 = interpret(&c1.vir, 10_000_000);
            let r2 = interpret(&c2.vir, 10_000_000);
            assert_eq!(r1.trace, r2.trace, "{} nondeterministic", k.name);
        }
    }

    /// Scales change the workload size.
    #[test]
    fn scales_change_dynamic_size() {
        let tiny = kernels(Scale::Tiny);
        let full = kernels(Scale::Full);
        for (t, f) in tiny.iter().zip(full.iter()) {
            let ct = compile(&t.source, &CompileOptions::default()).expect("compiles");
            let cf = compile(&f.source, &CompileOptions::default()).expect("compiles");
            let rt = interpret(&ct.vir, 50_000_000);
            let rf = interpret(&cf.vir, 50_000_000);
            assert!(
                rf.dyn_instrs > rt.dyn_instrs,
                "{}: full not larger than tiny",
                t.name
            );
        }
    }
}
