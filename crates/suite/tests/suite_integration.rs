//! Suite-wide integration: for every benchmark kernel, the protected TAL_FT
//! program type-checks (it is *provably* fault tolerant), executes on the
//! faulty machine with the exact reference trace, and survives a sampled
//! single-fault campaign with zero silent data corruption, while the
//! unprotected baseline shows SDC under the same campaign.

use talft_compiler::{compile, vir::interpret, CompileOptions};
use talft_core::check_program;
use talft_faultsim::{run_campaign, CampaignConfig};
use talft_machine::{run_program, Status};
use talft_suite::{kernels, Scale};

#[test]
fn every_kernel_protected_output_type_checks() {
    for k in kernels(Scale::Tiny) {
        let mut c = compile(&k.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        check_program(&c.protected.program, &mut c.protected.arena)
            .unwrap_or_else(|e| panic!("{} rejected by the checker: {e}", k.name));
    }
}

#[test]
fn every_kernel_runs_with_reference_trace() {
    for k in kernels(Scale::Small) {
        let c = compile(&k.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let reference = interpret(&c.vir, 50_000_000);
        assert!(reference.halted, "{}: reference did not halt", k.name);
        let prot = run_program(&c.protected.program, 200_000_000);
        assert_eq!(
            prot.status,
            Status::Halted,
            "{}: protected did not halt",
            k.name
        );
        assert_eq!(
            prot.trace, reference.trace,
            "{}: protected trace diverges",
            k.name
        );
        let base = run_program(&c.baseline.program, 200_000_000);
        assert_eq!(
            base.status,
            Status::Halted,
            "{}: baseline did not halt",
            k.name
        );
        assert_eq!(
            base.trace, reference.trace,
            "{}: baseline trace diverges",
            k.name
        );
    }
}

#[test]
fn sampled_campaign_finds_no_sdc_in_protected_kernels() {
    // A strided campaign over three representative kernels (the full
    // exhaustive campaign is the `coverage` bench harness).
    let cfg = CampaignConfig {
        stride: 97,
        mutations_per_site: 2,
        ..CampaignConfig::default()
    };
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let rep = run_campaign(&c.protected.program, &cfg).expect("golden run halts");
        assert!(rep.total > 0, "{}: empty campaign", k.name);
        assert!(
            rep.fault_tolerant(),
            "{}: Theorem 4 violated: {:?}",
            k.name,
            rep.violations
        );
    }
}

#[test]
fn sampled_campaign_finds_sdc_in_baseline() {
    let cfg = CampaignConfig {
        stride: 13,
        mutations_per_site: 3,
        ..CampaignConfig::default()
    };
    let mut found_sdc = false;
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let rep = run_campaign(&c.baseline.program, &cfg).expect("golden run halts");
        if rep.sdc > 0 {
            found_sdc = true;
            break;
        }
    }
    assert!(
        found_sdc,
        "baseline kernels should exhibit SDC under faults"
    );
}
