//! Machine-readable reports for the bench bins: every bin accepts
//! `--json <path>` and mirrors its printed table into a schema-tagged JSON
//! document built on [`talft_obs::Json`].
//!
//! Schema stability contract: every report carries a top-level `"schema"`
//! string (`"talft.<bin>.v1"`); object keys are emitted in fixed insertion
//! order and are only ever *added*, never renamed or removed, within a
//! schema version. Downstream tooling (CI smoke checks, EXPERIMENTS.md
//! regeneration) may rely on any key documented here.

use std::path::PathBuf;

use talft_faultsim::CampaignReport;
use talft_obs::Json;

use crate::{CoverageRow, Fig10Row, MultifaultRow, MutationSummary};

/// Parse `--name N` or `--name=N` from the process arguments.
#[must_use]
pub fn arg(name: &str) -> Option<u64> {
    arg_str(name).and_then(|s| s.parse().ok())
}

/// Parse `--name VALUE` or `--name=VALUE` from the process arguments.
#[must_use]
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let spaced = args
        .iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned());
    spaced.or_else(|| {
        args.iter()
            .find_map(|a| a.strip_prefix(name)?.strip_prefix('=').map(str::to_owned))
    })
}

/// The `--json <path>` destination, if requested on the command line.
#[must_use]
pub fn json_path() -> Option<PathBuf> {
    arg_str("--json").map(PathBuf::from)
}

/// Write a report to `path` (pretty-printed, trailing newline). Exits the
/// process with an error on I/O failure — bins have no recovery story.
pub fn write_json(json: &Json, path: &std::path::Path) {
    if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// If `--json <path>` was given, build the report with `make` and write it.
/// `make` runs only when a destination was requested.
pub fn emit(make: impl FnOnce() -> Json) {
    if let Some(path) = json_path() {
        write_json(&make(), &path);
    }
}

/// A report under construction: a `"schema"`-tagged ordered JSON object.
#[derive(Debug)]
pub struct Report {
    fields: Vec<(String, Json)>,
}

impl Report {
    /// Start a report with schema tag `talft.<bin>.v1`.
    #[must_use]
    pub fn new(schema: &str) -> Self {
        Self {
            fields: vec![("schema".to_owned(), Json::str(schema))],
        }
    }

    /// Append a field (insertion order is serialization order).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_owned(), value));
        self
    }

    /// Append the current observability snapshot under `"obs"` (only
    /// meaningful when the bin enabled instrumentation).
    #[must_use]
    pub fn with_obs(self) -> Self {
        self.field("obs", talft_obs::snapshot().to_json())
    }

    /// Finish the report.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Object(self.fields)
    }
}

/// A [`CampaignReport`] as JSON (shared by the coverage / multifault /
/// perfreport schemas).
#[must_use]
pub fn campaign_json(r: &CampaignReport) -> Json {
    Json::obj([
        ("total", Json::U64(r.total)),
        ("masked", Json::U64(r.masked)),
        ("detected", Json::U64(r.detected)),
        ("sdc", Json::U64(r.sdc)),
        ("other_violations", Json::U64(r.other_violations)),
        ("engine_errors", Json::U64(r.engine_errors)),
        ("incomplete_plans", Json::U64(r.incomplete_plans)),
        ("fault_order", Json::U64(u64::from(r.fault_order))),
        ("stopped_early", Json::Bool(r.stopped_early)),
        ("coverage", Json::F64(r.coverage())),
        ("fault_tolerant", Json::Bool(r.fault_tolerant())),
        (
            "detection_latency",
            Json::obj([
                ("mean", Json::F64(r.detection_latency.mean())),
                ("max", Json::U64(r.detection_latency.max)),
            ]),
        ),
    ])
}

/// Figure 10 rows plus geomeans (`talft.fig10.v1` payload).
#[must_use]
pub fn fig10_json(rows: &[Fig10Row]) -> Json {
    let go = crate::geomean(&rows.iter().map(Fig10Row::ratio_ordered).collect::<Vec<_>>());
    let gu = crate::geomean(
        &rows
            .iter()
            .map(Fig10Row::ratio_unordered)
            .collect::<Vec<_>>(),
    );
    Json::obj([
        (
            "rows",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::str(r.name)),
                            ("base_cycles", Json::U64(r.base_cycles)),
                            ("talft_cycles", Json::U64(r.talft_cycles)),
                            (
                                "talft_unordered_cycles",
                                Json::U64(r.talft_unordered_cycles),
                            ),
                            ("ratio_ordered", Json::F64(r.ratio_ordered())),
                            ("ratio_unordered", Json::F64(r.ratio_unordered())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("geomean_ordered", Json::F64(go)),
        ("geomean_unordered", Json::F64(gu)),
    ])
}

/// Coverage rows (`talft.coverage.v1` payload).
#[must_use]
pub fn coverage_json(rows: &[CoverageRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::str(r.name)),
                    ("protected", campaign_json(&r.protected)),
                    ("baseline", campaign_json(&r.baseline)),
                ])
            })
            .collect(),
    )
}

/// Multifault rows (`talft.multifault.v2` payload).
#[must_use]
pub fn multifault_json(rows: &[MultifaultRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::str(r.name)),
                    ("k", Json::U64(u64::from(r.k))),
                    ("protected", campaign_json(&r.protected)),
                    ("batched_secs", Json::F64(r.batched_secs)),
                    ("scalar_secs", Json::F64(r.scalar_secs)),
                    ("speedup", Json::F64(r.speedup())),
                ])
            })
            .collect(),
    )
}

/// Mutation-oracle summary (`talft.mutation.v1` payload).
#[must_use]
pub fn mutation_json(s: &MutationSummary) -> Json {
    Json::obj([
        (
            "per_op",
            Json::Array(
                s.per_op
                    .iter()
                    .map(|(op, sc)| {
                        Json::obj([
                            ("operator", Json::str(op.name())),
                            ("principle", Json::str(op.principle())),
                            ("total", Json::U64(sc.total)),
                            ("killed_by_checker", Json::U64(sc.killed_by_checker)),
                            ("killed_by_lint", Json::U64(sc.killed_by_lint)),
                            (
                                "killed_by_campaign_only",
                                Json::U64(sc.killed_by_campaign_only),
                            ),
                            ("equivalent", Json::U64(sc.equivalent)),
                            ("score", Json::F64(sc.score())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total", Json::U64(s.total())),
        ("score", Json::F64(s.score())),
        (
            "killed_by_lint",
            Json::U64(s.per_op.iter().map(|(_, sc)| sc.killed_by_lint).sum()),
        ),
        ("campaign_only", Json::U64(s.campaign_only.len() as u64)),
        ("equivalents", Json::U64(s.equivalents.len() as u64)),
    ])
}

/// A labeled geomean sweep row (`ablation` / `loopshape` / `optlevel`).
#[must_use]
pub fn sweep_row_json(label: &str, geomean: f64, base_cycles: u64, talft_cycles: u64) -> Json {
    Json::obj([
        ("label", Json::str(label)),
        ("geomean", Json::F64(geomean)),
        ("base_cycles", Json::U64(base_cycles)),
        ("talft_cycles", Json::U64(talft_cycles)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_leads_with_schema_and_roundtrips() {
        let json = Report::new("talft.test.v1")
            .field("rows", Json::Array(vec![Json::U64(1)]))
            .build();
        let text = json.to_string();
        assert!(text
            .trim_start()
            .starts_with("{\n  \"schema\": \"talft.test.v1\""));
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("talft.test.v1")
        );
    }

    #[test]
    fn campaign_json_has_stable_keys() {
        let rep = CampaignReport::default();
        let j = campaign_json(&rep);
        for key in [
            "total",
            "masked",
            "detected",
            "sdc",
            "other_violations",
            "coverage",
            "fault_tolerant",
            "detection_latency",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
    }
}
