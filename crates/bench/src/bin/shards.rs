//! E18 / **sharded-campaign equivalence & scaling table**: runs suite
//! kernel grids through the `talft-faultsim` shard/checkpoint/merge layer
//! (DESIGN.md §11) and hard-fails unless every partitioned run is
//! **bit-identical** to the whole-grid report:
//!
//! * shard-count scaling — the grid split `N ∈ {1, 2, 4, 8}` ways, every
//!   shard run to completion and the parts merged; the table reports the
//!   max/sum of per-shard wall-clock against the whole-grid time (the max
//!   column is the distributed-campaign latency bound);
//! * kill/resume — shard 0 interrupted at its first durable checkpoint,
//!   round-tripped through the `talft.checkpoint.v1` JSON a successor
//!   process would read off disk, resumed with a different chunk size, and
//!   merged; any divergence from the uninterrupted report is a hard
//!   failure (exit 2).
//!
//! The process-boundary version of the same gate (real SIGKILLed workers)
//! is CI's `talftd-smoke` job.
//!
//! Usage: `cargo run --release -p talft-bench --bin shards
//!          [-- --kernels N] [--stride N] [--threads N] [--every N]`

use std::sync::Arc;
use std::time::Instant;

use talft_bench::report::arg;
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{
    golden_run, grid_fingerprint, merge_shard_reports, run_plan_campaign, run_shard_campaign,
    single_fault_plans, CampaignCheckpoint, CampaignConfig, CampaignReport, FaultPlan, Golden,
    ShardControl, ShardOutcome, ShardPart, ShardSpec,
};
use talft_isa::Program;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

fn part(
    golden: &Golden,
    plans: &[FaultPlan],
    spec: ShardSpec,
    report: CampaignReport,
) -> ShardPart {
    ShardPart {
        spec,
        fingerprint: grid_fingerprint(golden, plans),
        plans: spec.range(plans.len()).len() as u64,
        report,
    }
}

fn complete_shard(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    spec: ShardSpec,
) -> CampaignReport {
    let outcome = run_shard_campaign(program, cfg, golden, plans, spec, 0, None, |_| {
        ShardControl::Continue
    })
    .expect("ungated shard runs");
    match outcome {
        ShardOutcome::Complete(r) => r,
        ShardOutcome::Interrupted(_) => unreachable!("no Stop issued"),
    }
}

fn main() {
    let n_kernels = arg("--kernels").map_or(3, |v| (v as usize).max(1));
    let stride = arg("--stride").unwrap_or(31);
    let threads = arg("--threads").map_or(2, |v| (v as usize).max(1));
    let every = arg("--every").map_or(64, |v| (v as usize).max(1));
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 2,
        threads,
        ..CampaignConfig::default()
    };
    println!("# E18: sharded-campaign equivalence (stride {stride}, {threads} threads)");
    println!("# every row asserts merged == whole-grid bit for bit; divergence exits 2");
    println!();
    println!("| kernel | plans | whole ms | N | max shard ms | sum shard ms | identical |");
    println!("|---|---:|---:|---:|---:|---:|---|");
    let mut failures = 0u32;
    let mut resume_rows = Vec::new();
    for kern in kernels(Scale::Tiny).into_iter().take(n_kernels) {
        let c = compile(&kern.source, &CompileOptions::default()).expect("kernel compiles");
        let p = &c.protected.program;
        let golden = golden_run(p, &cfg).expect("golden halts");
        let plans = single_fault_plans(p, &cfg, &golden);
        let t0 = Instant::now();
        let whole = run_plan_campaign(p, &cfg, &golden, &plans);
        let whole_ms = t0.elapsed().as_secs_f64() * 1e3;
        if whole.sdc != 0 {
            println!(
                "RESULT: SDC on protected {} — Theorem 4 violation",
                kern.name
            );
            std::process::exit(2);
        }
        for count in [1u32, 2, 4, 8] {
            let mut parts = Vec::new();
            let mut max_ms = 0f64;
            let mut sum_ms = 0f64;
            for i in 0..count {
                let spec = ShardSpec::new(i, count).expect("valid spec");
                let t = Instant::now();
                let report = complete_shard(p, &cfg, &golden, &plans, spec);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                max_ms = max_ms.max(ms);
                sum_ms += ms;
                parts.push(part(&golden, &plans, spec, report));
            }
            let merged = merge_shard_reports(&parts).expect("complete partition merges");
            let ok = merged == whole;
            failures += u32::from(!ok);
            println!(
                "| {} | {} | {:.0} | {} | {:.0} | {:.0} | {} |",
                kern.name,
                plans.len(),
                whole_ms,
                count,
                max_ms,
                sum_ms,
                if ok { "yes" } else { "NO — DIVERGED" },
            );
        }
        // Kill/resume: interrupt shard 0 of 2 at its first checkpoint, push
        // the checkpoint through its durable JSON form, resume with a
        // different chunk size, merge with the untouched shard 1.
        let spec0 = ShardSpec::new(0, 2).expect("valid");
        let spec1 = ShardSpec::new(1, 2).expect("valid");
        let outcome = run_shard_campaign(p, &cfg, &golden, &plans, spec0, every, None, |_| {
            ShardControl::Stop
        })
        .expect("shard runs");
        let (resumed_report, done_at_interrupt) = match outcome {
            ShardOutcome::Interrupted(cp) => {
                let text = cp.to_json().to_string();
                let restored = CampaignCheckpoint::from_json(&Json::parse(&text).expect("parses"))
                    .expect("checkpoint decodes");
                assert_eq!(restored, cp, "durable checkpoint round-trip");
                let done = cp.done;
                let resumed = run_shard_campaign(
                    p,
                    &cfg,
                    &golden,
                    &plans,
                    spec0,
                    every * 3 + 1,
                    Some(&restored),
                    |_| ShardControl::Continue,
                )
                .expect("resume runs");
                match resumed {
                    ShardOutcome::Complete(r) => (r, done),
                    ShardOutcome::Interrupted(_) => unreachable!("no Stop issued on resume"),
                }
            }
            // Shard smaller than one chunk: completes before any checkpoint.
            ShardOutcome::Complete(r) => (r, 0),
        };
        let merged = merge_shard_reports(&[
            part(&golden, &plans, spec0, resumed_report),
            part(
                &golden,
                &plans,
                spec1,
                complete_shard(p, &cfg, &golden, &plans, spec1),
            ),
        ])
        .expect("partition merges");
        let ok = merged == whole;
        failures += u32::from(!ok);
        resume_rows.push(format!(
            "| {} | {} | {} | {} | {} |",
            kern.name,
            plans.len(),
            done_at_interrupt,
            every,
            if ok { "yes" } else { "NO — DIVERGED" },
        ));
    }
    println!();
    println!("# kill at first checkpoint → resume (chunk size changes across the restart)");
    println!("| kernel | plans | done at kill | checkpoint every | identical |");
    println!("|---|---:|---:|---:|---|");
    for row in &resume_rows {
        println!("{row}");
    }
    println!();
    if failures > 0 {
        println!("RESULT: {failures} sharded run(s) DIVERGED from the whole-grid report.");
        std::process::exit(2);
    }
    println!(
        "RESULT: all sharded and kill/resume runs bit-identical to the whole grid; \
         protected kernels report zero SDC through the sharded path."
    );
}
