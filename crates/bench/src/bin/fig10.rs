//! E1 / **Figure 10**: execution time of TAL-FT (with and without the
//! green≺blue scheduling constraint) normalized to the unprotected baseline,
//! per benchmark, on the 6-wide in-order model.
//!
//! Paper's result: 1.34x geomean (ordered), 1.30x (without ordering).
//! Usage: `cargo run --release -p talft-bench --bin fig10 [--scale full|small|tiny]`

use talft_bench::{fig10_rows, render_fig10};
use talft_sim::MachineModel;
use talft_suite::Scale;

fn main() {
    let scale = match std::env::args().nth(2).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    };
    let model = MachineModel::default();
    println!("# Figure 10 — Performance normalized to unprotected version");
    println!(
        "# model: {}-wide in-order, lat(alu/mul/ld/st) = {}/{}/{}/{}, branch penalty {}",
        model.width,
        model.lat_alu,
        model.lat_mul,
        model.lat_load,
        model.lat_store,
        model.branch_penalty
    );
    match fig10_rows(scale, &model) {
        Ok(rows) => print!("{}", render_fig10(&rows)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
