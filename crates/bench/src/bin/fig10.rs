//! E1 / **Figure 10**: execution time of TAL-FT (with and without the
//! green≺blue scheduling constraint) normalized to the unprotected baseline,
//! per benchmark, on the 6-wide in-order model.
//!
//! Paper's result: 1.34x geomean (ordered), 1.30x (without ordering).
//! Usage: `cargo run --release -p talft-bench --bin fig10
//!          [--scale full|small|tiny] [--json <path>]`

use talft_bench::report::{self, fig10_json, Report};
use talft_bench::{fig10_rows, render_fig10};
use talft_obs::Json;
use talft_sim::MachineModel;
use talft_suite::Scale;

fn main() {
    let (scale, scale_name) = match report::arg_str("--scale").as_deref() {
        Some("tiny") => (Scale::Tiny, "tiny"),
        Some("small") => (Scale::Small, "small"),
        _ => (Scale::Full, "full"),
    };
    let model = MachineModel::default();
    println!("# Figure 10 — Performance normalized to unprotected version");
    println!(
        "# model: {}-wide in-order, lat(alu/mul/ld/st) = {}/{}/{}/{}, branch penalty {}",
        model.width,
        model.lat_alu,
        model.lat_mul,
        model.lat_load,
        model.lat_store,
        model.branch_penalty
    );
    match fig10_rows(scale, &model) {
        Ok(rows) => {
            print!("{}", render_fig10(&rows));
            report::emit(|| {
                Report::new("talft.fig10.v1")
                    .field("scale", Json::str(scale_name))
                    .field("width", Json::U64(u64::from(model.width)))
                    .field("data", fig10_json(&rows))
                    .build()
            });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
