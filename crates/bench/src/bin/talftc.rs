//! `talftc` — the TAL_FT command-line driver.
//!
//! ```text
//! talftc <file.wile|file.talft> [flags]
//!
//!   --emit-asm        print the (protected) program as .talft text
//!   --disasm          print a bare disassembly
//!   --lint            run the TF0xx lint engine (talft-analysis) before
//!                     type checking and print rustc-style diagnostics;
//!                     error-severity lints exit 4. With --lint,
//!                     --json=PATH writes the diagnostics as JSON
//!                     (schema talft.lint.v1) instead of the profile
//!   --zap-report=PATH
//!                     write the static zap-vulnerability report — every
//!                     per-cell k=1 verdict plus the compositional k=2
//!                     pair summary — as JSON (schema talft.zap.v1)
//!   --no-check        skip type checking
//!   --run             execute and print the observable trace
//!   --campaign[=N]    run a fault campaign (stride N, default 11)
//!   --campaign-k=K    fault multiplicity (default 1; K>=2 samples the
//!                     boundary outside the single-upset model — SDC there
//!                     is reported but is not a Theorem 4 violation)
//!   --seed=N          sampler seed for K>=2 campaigns
//!   --threads=N       campaign worker threads (default 1)
//!   --shards=N        split the campaign grid into N deterministic shards
//!                     (run through the checkpoint/merge layer; the merged
//!                     report is bit-identical to a whole-grid run)
//!   --shard=I         run only shard I of N (cross-process distribution);
//!                     the merged summary prints once all N shard reports
//!                     are on disk
//!   --resume          resume an interrupted shard from its durable
//!                     checkpoint (and skip shards whose reports exist)
//!   --checkpoint-dir=D
//!                     where shard reports + checkpoints live
//!                     (default `<input>.shards`)
//!   --checkpoint-every=M
//!                     plans between durable checkpoints (default 256)
//!   --checkpoint-stride=N
//!                     golden checkpoint interval in steps for the campaign
//!                     engine (default 0 = auto); performance knob only —
//!                     reports are stride-invariant
//!   --no-batch        route campaigns through the scalar engine instead of
//!                     the bit-parallel batched one (default on); A/B knob
//!                     only — the engines are verdict-exact, reports are
//!                     bit-identical either way
//!   --max-steps=N     step budget for the golden run
//!   --baseline        operate on the unprotected baseline instead
//!   --time            report Figure 10-style cycles for this program
//!   --profile         enable instrumentation and print the metric table
//!                     (checker passes, solver queries, campaign verdicts)
//!                     to stderr at exit, plus the entailment-cache hit
//!                     rate after checking and campaign plans/sec
//!   --json=PATH       with --profile: also write the metric snapshot as
//!                     JSON (schema talft.profile.v1) to PATH
//!   --solver-cache=PATH
//!                     persist entailment verdicts across runs: load PATH
//!                     before any solver work and save it back on exit
//!                     (atomic tmp+rename). A missing or corrupt file is a
//!                     cold start — never an error. Verdicts are keyed on
//!                     an arena-independent normal form, so the cache is
//!                     shared across inputs and re-runs
//! ```
//!
//! Exit codes (each failure class is distinct and stable):
//!
//! ```text
//!   0  success
//!   1  usage / I/O / other errors
//!   2  parse, assembly, or compile error
//!   3  type error (talft_core::check_program rejected the program)
//!   4  error-severity lint fired under --lint
//!   5  Theorem 4 violation found by a k=1 campaign, or engine error in
//!      any campaign
//!   6  campaign interrupted — SIGTERM/SIGINT mid-shard (progress is
//!      checkpointed; re-run with --resume) or the golden run exhausted
//!      --max-steps (raise the budget and re-run)
//! ```
//!
//! Wile inputs go through the full reliability-transforming compiler;
//! `.talft` inputs are assembled directly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_faultsim::{
    golden_run_retrying, grid_fingerprint, merge_shard_reports, multi_fault_plans,
    run_multi_campaign, run_shard_campaign, CampaignConfig, CampaignReport, GoldenError,
    ShardControl, ShardOutcome, ShardPart, ShardSpec,
};
use talft_isa::{assemble, print_program, Program};
use talft_logic::ExprArena;
use talft_machine::run_program;
use talft_sim::{simulate, MachineModel};

/// Exit code 6: the campaign was interrupted (signal or step budget) and
/// can be continued, as opposed to having failed.
const EXIT_INTERRUPTED: u8 = 6;

struct Flags {
    emit_asm: bool,
    disasm: bool,
    lint: bool,
    zap_report: Option<String>,
    check: bool,
    run: bool,
    campaign: Option<u64>,
    campaign_k: u32,
    seed: Option<u64>,
    threads: Option<usize>,
    checkpoint_stride: Option<u64>,
    batch: bool,
    max_steps: Option<u64>,
    shards: Option<u32>,
    shard: Option<u32>,
    resume: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: Option<usize>,
    baseline: bool,
    time: bool,
    profile: bool,
    solver_cache: Option<String>,
}

/// Set by the SIGTERM/SIGINT handler; polled at shard chunk boundaries so
/// an interrupted campaign exits through a durable checkpoint (code 6)
/// instead of losing its progress.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_interrupt_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler: extern "C" fn(i32) = on_signal;
    // SAFETY: installing an async-signal-safe handler (a single atomic
    // store) for SIGINT (2) and SIGTERM (15).
    unsafe {
        signal(2, handler as usize);
        signal(15, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_interrupt_handlers() {}

fn main() -> ExitCode {
    let code = real_main();
    // Save through every exit path (type errors and lint failures warm the
    // cache for the next run too).
    if std::env::args().any(|a| a.starts_with("--solver-cache=")) {
        match talft_logic::save_solver_cache() {
            Ok(Some(p)) => eprintln!("talftc: solver cache saved to {}", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("talftc: cannot save solver cache: {e}"),
        }
    }
    if talft_obs::enabled() {
        let snap = talft_obs::snapshot();
        eprint!("{}", snap.render_text());
        // Under --lint the --json destination carries the lint report
        // (written in real_main), not the profile snapshot.
        if let Some(path) = std::env::args()
            .find_map(|a| a.strip_prefix("--json=").map(str::to_owned))
            .filter(|_| !std::env::args().any(|a| a == "--lint"))
        {
            let json = talft_obs::Json::Object(vec![
                (
                    "schema".to_owned(),
                    talft_obs::Json::str("talft.profile.v1"),
                ),
                ("obs".to_owned(), snap.to_json()),
            ]);
            if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                eprintln!("talftc: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("talftc: wrote {path}");
        }
    }
    code
}

fn real_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!(
            "usage: talftc <file.wile|file.talft> [--emit-asm] [--disasm] [--lint] \
             [--zap-report=PATH] [--no-check] \
             [--run] [--campaign[=N]] [--campaign-k=K] [--seed=N] [--threads=N] \
             [--checkpoint-stride=N] [--no-batch] [--max-steps=N] [--shards=N] [--shard=I] \
             [--resume] [--checkpoint-dir=D] [--checkpoint-every=M] [--baseline] [--time] \
             [--profile] [--json=PATH] [--solver-cache=PATH]"
        );
        return ExitCode::FAILURE;
    };
    let flags = Flags {
        emit_asm: args.iter().any(|a| a == "--emit-asm"),
        disasm: args.iter().any(|a| a == "--disasm"),
        lint: args.iter().any(|a| a == "--lint"),
        zap_report: args
            .iter()
            .find_map(|a| a.strip_prefix("--zap-report=").map(str::to_owned)),
        check: !args.iter().any(|a| a == "--no-check"),
        run: args.iter().any(|a| a == "--run"),
        campaign: args.iter().find_map(|a| {
            a.strip_prefix("--campaign")
                .filter(|rest| rest.is_empty() || rest.starts_with('='))
                .map(|rest| {
                    rest.strip_prefix('=')
                        .and_then(|n| n.parse().ok())
                        .unwrap_or(11)
                })
        }),
        campaign_k: args
            .iter()
            .find_map(|a| a.strip_prefix("--campaign-k=").and_then(|n| n.parse().ok()))
            .unwrap_or(1),
        seed: args
            .iter()
            .find_map(|a| a.strip_prefix("--seed=").and_then(|n| n.parse().ok())),
        threads: args
            .iter()
            .find_map(|a| a.strip_prefix("--threads=").and_then(|n| n.parse().ok())),
        checkpoint_stride: args.iter().find_map(|a| {
            a.strip_prefix("--checkpoint-stride=")
                .and_then(|n| n.parse().ok())
        }),
        batch: !args.iter().any(|a| a == "--no-batch"),
        max_steps: args
            .iter()
            .find_map(|a| a.strip_prefix("--max-steps=").and_then(|n| n.parse().ok())),
        shards: args
            .iter()
            .find_map(|a| a.strip_prefix("--shards=").and_then(|n| n.parse().ok())),
        shard: args
            .iter()
            .find_map(|a| a.strip_prefix("--shard=").and_then(|n| n.parse().ok())),
        resume: args.iter().any(|a| a == "--resume"),
        checkpoint_dir: args
            .iter()
            .find_map(|a| a.strip_prefix("--checkpoint-dir=").map(str::to_owned)),
        checkpoint_every: args.iter().find_map(|a| {
            a.strip_prefix("--checkpoint-every=")
                .and_then(|n| n.parse().ok())
        }),
        baseline: args.iter().any(|a| a == "--baseline"),
        time: args.iter().any(|a| a == "--time"),
        profile: args.iter().any(|a| a == "--profile"),
        solver_cache: args
            .iter()
            .find_map(|a| a.strip_prefix("--solver-cache=").map(str::to_owned)),
    };
    if flags.profile {
        talft_obs::set_enabled(true);
    }
    if let Some(p) = &flags.solver_cache {
        let n = talft_logic::load_solver_cache(p);
        eprintln!("talftc: solver cache: loaded {n} entries from {p}");
    }

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("talftc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut line_table: Option<Vec<u32>> = None;
    let (program, mut arena): (Arc<Program>, ExprArena) = if path.ends_with(".talft") {
        match assemble(&src) {
            Ok(a) => {
                line_table = Some(a.lines);
                (Arc::new(a.program), a.arena)
            }
            Err(e) => {
                eprintln!("talftc: assembly error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let opts = CompileOptions::default();
        let c = match compile(&src, &opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("talftc: {e}");
                return ExitCode::from(2);
            }
        };
        if flags.time {
            report_timing(&c);
        }
        if flags.baseline {
            (c.baseline.program, c.baseline.arena)
        } else {
            (c.protected.program, c.protected.arena)
        }
    };

    if flags.emit_asm {
        print!("{}", print_program(&program, &arena));
    }
    if flags.disasm {
        print!("{}", talft_isa::disassemble(&program));
    }
    if flags.lint {
        if let Some(code) = run_lint(&path, &program, &mut arena, line_table.as_deref()) {
            return code;
        }
    }
    if let Some(out) = &flags.zap_report {
        if let Err(e) = write_zap_report(out, &path, &program) {
            eprintln!("talftc: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("talftc: wrote zap report to {out}");
    }
    if flags.check {
        match check_program(&program, &mut arena) {
            Ok(rep) => eprintln!(
                "talftc: type check OK ({} blocks, {} instructions) — fault tolerant",
                rep.blocks, rep.instrs
            ),
            Err(e) => {
                let mut d = e.to_diagnostic();
                if let Some(lines) = line_table.as_deref() {
                    d = d.with_line_table(lines);
                }
                eprintln!("talftc: TYPE ERROR:\n{}", d.render());
                return ExitCode::from(3);
            }
        }
        if flags.profile {
            let (hits, misses) = arena.entail_cache_stats();
            let total = hits + misses;
            if total > 0 {
                eprintln!(
                    "talftc: entailment cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
                    100.0 * hits as f64 / total as f64
                );
            }
        }
    }
    if flags.run {
        let r = run_program(&program, 500_000_000);
        eprintln!("talftc: {} after {} steps", r.status, r.steps);
        for (a, v) in &r.trace {
            println!("{a}\t{v}");
        }
    }
    // --campaign-k=K alone implies a campaign at the default stride.
    let campaign_stride = flags
        .campaign
        .or_else(|| (flags.campaign_k > 1).then_some(11));
    if let Some(stride) = campaign_stride {
        let mut cfg = CampaignConfig {
            stride,
            ..CampaignConfig::default()
        };
        if let Some(seed) = flags.seed {
            cfg.seed = seed;
        }
        if let Some(threads) = flags.threads {
            cfg.threads = threads.max(1);
        }
        if let Some(max_steps) = flags.max_steps {
            cfg.max_steps = max_steps;
        }
        if let Some(cp) = flags.checkpoint_stride {
            cfg.checkpoint_stride = cp;
        }
        cfg.batch = flags.batch;
        let k = flags.campaign_k.max(1);
        if flags.shards.is_some() || flags.shard.is_some() {
            return run_sharded(&program, &cfg, k, &flags, &path);
        }
        let t0 = std::time::Instant::now();
        let rep = match run_multi_campaign(&program, &cfg, k) {
            Ok(rep) => rep,
            Err(e @ GoldenError::BudgetExhausted { .. }) => {
                // Not a verdict and not an error in the program: the run
                // was cut short by the step budget. Distinct exit class so
                // callers can tell "interrupted, raise --max-steps and
                // retry" from a real failure.
                eprintln!("talftc: campaign interrupted: {e}");
                eprintln!("talftc: raise --max-steps and re-run");
                return ExitCode::from(EXIT_INTERRUPTED);
            }
            Err(e) => {
                eprintln!("talftc: campaign aborted: {e}");
                return ExitCode::FAILURE;
            }
        };
        if flags.profile {
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                eprintln!(
                    "talftc: campaign throughput: {:.0} plans/sec ({} plans in {:.3}s)",
                    rep.total as f64 / secs,
                    rep.total,
                    secs
                );
            }
        }
        return summarize_campaign(&rep, k);
    }
    ExitCode::SUCCESS
}

/// Print the campaign summary and map the report onto the exit-code
/// contract (0 tolerant / 5 Theorem 4 violation). Shared by the whole-grid
/// and sharded paths so their output is comparable line for line.
fn summarize_campaign(rep: &CampaignReport, k: u32) -> ExitCode {
    eprintln!(
        "talftc: campaign (k={k}): {} injections — {} masked, {} detected, {} SDC, \
         {} other, {} engine errors ({:.1}% detection coverage)",
        rep.total,
        rep.masked,
        rep.detected,
        rep.sdc,
        rep.other_violations,
        rep.engine_errors,
        100.0 * rep.coverage(),
    );
    if !rep.fault_tolerant() {
        eprintln!("talftc: faults escaped; first counterexamples:");
        for v in rep.violations.iter().take(5) {
            eprintln!(
                "  {:?} at step {} ← {} (+{} strikes)",
                v.site,
                v.at_step,
                v.value,
                v.followups.len()
            );
        }
        if rep.within_fault_model() || rep.engine_errors > 0 {
            eprintln!("talftc: THEOREM 4 VIOLATION (single-upset model)");
            return ExitCode::from(5);
        }
        eprintln!(
            "talftc: k={k} is outside the single-upset model — boundary measurement, \
             not a Theorem 4 violation"
        );
    }
    ExitCode::SUCCESS
}

/// The `--shards` campaign path: run the grid through the faultsim
/// checkpoint/shard/merge layer. Each shard leaves a durable
/// `talft.shard-report.v1` in the checkpoint dir; SIGTERM/SIGINT lands in
/// a checkpoint and exit 6; once all N shard reports exist they merge into
/// a report bit-identical to the whole-grid run and the usual summary and
/// exit-code contract apply.
fn run_sharded(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    k: u32,
    flags: &Flags,
    input: &str,
) -> ExitCode {
    let count = flags.shards.unwrap_or(1).max(1);
    let dir = PathBuf::from(
        flags
            .checkpoint_dir
            .clone()
            .unwrap_or_else(|| format!("{input}.shards")),
    );
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("talftc: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let every = flags.checkpoint_every.unwrap_or(256);
    let indices: Vec<u32> = match flags.shard {
        Some(i) if i < count => vec![i],
        Some(i) => {
            eprintln!("talftc: --shard={i} out of range for --shards={count}");
            return ExitCode::FAILURE;
        }
        None => (0..count).collect(),
    };
    install_interrupt_handlers();
    let golden = match golden_run_retrying(program, cfg) {
        Ok(g) => g,
        Err(e @ GoldenError::BudgetExhausted { .. }) => {
            eprintln!("talftc: campaign interrupted: {e}");
            eprintln!("talftc: raise --max-steps and re-run");
            return ExitCode::from(EXIT_INTERRUPTED);
        }
        Err(e) => {
            eprintln!("talftc: campaign aborted: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plans = multi_fault_plans(program, cfg, &golden, k);
    let fingerprint = grid_fingerprint(&golden, &plans);
    for &i in &indices {
        let spec = ShardSpec::new(i, count).expect("index checked above");
        let part_path = dir.join(format!("shard-{i}.json"));
        if flags.resume && part_path.exists() {
            match load_part(&part_path, spec, fingerprint) {
                Ok(_) => {
                    eprintln!("talftc: shard {spec} already complete — skipping");
                    continue;
                }
                Err(e) => {
                    eprintln!("talftc: {e}");
                    eprintln!(
                        "talftc: stale shard report (different grid?); delete {} and re-run",
                        dir.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        let cp_path = dir.join(format!("checkpoint-{i}.json"));
        let resume_cp = if flags.resume && cp_path.exists() {
            match talft_faultsim::CampaignCheckpoint::load(&cp_path) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    eprintln!("talftc: cannot resume shard {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            None
        };
        if let Some(cp) = &resume_cp {
            eprintln!(
                "talftc: resuming shard {spec} from checkpoint ({}/{} plans done)",
                cp.done, cp.shard_plans
            );
        }
        let mut save_error: Option<std::io::Error> = None;
        let outcome = run_shard_campaign(
            program,
            cfg,
            &golden,
            &plans,
            spec,
            every,
            resume_cp.as_ref(),
            |cp| {
                if let Err(e) = cp.save(&cp_path) {
                    save_error = Some(e);
                    return ShardControl::Stop;
                }
                if INTERRUPTED.load(Ordering::SeqCst) {
                    ShardControl::Stop
                } else {
                    ShardControl::Continue
                }
            },
        );
        match outcome {
            Err(e) => {
                eprintln!("talftc: shard {spec}: {e}");
                return ExitCode::FAILURE;
            }
            Ok(ShardOutcome::Interrupted(cp)) => {
                if let Some(e) = save_error {
                    eprintln!("talftc: cannot write checkpoint {}: {e}", cp_path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "talftc: campaign interrupted at {}/{} plans of shard {spec}; \
                     checkpoint saved — re-run with --resume to continue",
                    cp.done, cp.shard_plans
                );
                return ExitCode::from(EXIT_INTERRUPTED);
            }
            Ok(ShardOutcome::Complete(report)) => {
                let part = ShardPart {
                    spec,
                    fingerprint,
                    plans: spec.range(plans.len()).len() as u64,
                    report,
                };
                let text = format!("{}\n", part.to_json());
                if let Err(e) = talft_faultsim::shard::atomic_write(&part_path, &text) {
                    eprintln!("talftc: cannot write {}: {e}", part_path.display());
                    return ExitCode::FAILURE;
                }
                let _ = std::fs::remove_file(&cp_path);
                eprintln!("talftc: shard {spec} complete ({} plans)", part.plans);
            }
        }
    }
    // Merge once the whole partition is on disk (this process may have run
    // only one shard of a cross-process campaign).
    let mut parts = Vec::with_capacity(count as usize);
    for i in 0..count {
        let path = dir.join(format!("shard-{i}.json"));
        if !path.exists() {
            eprintln!(
                "talftc: {}/{count} shard report(s) present in {} — run the remaining \
                 shards to merge",
                parts.len(),
                dir.display()
            );
            return ExitCode::SUCCESS;
        }
        let spec = ShardSpec::new(i, count).expect("i < count");
        match load_part(&path, spec, fingerprint) {
            Ok(p) => parts.push(p),
            Err(e) => {
                eprintln!("talftc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match merge_shard_reports(&parts) {
        Ok(merged) => {
            eprintln!("talftc: merged {count} shard(s) — verified complete partition");
            summarize_campaign(&merged, k)
        }
        Err(e) => {
            eprintln!("talftc: shard merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Load a `talft.shard-report.v1` file and validate it belongs to this
/// grid (spec + fingerprint + complete coverage of its slice).
fn load_part(
    path: &std::path::Path,
    spec: ShardSpec,
    fingerprint: u64,
) -> Result<ShardPart, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = talft_obs::Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let part = ShardPart::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    if part.spec != spec {
        return Err(format!("{}: wrong shard {}", path.display(), part.spec));
    }
    if part.fingerprint != fingerprint {
        return Err(format!(
            "{}: fingerprint {:016x} does not match this grid ({:016x})",
            path.display(),
            part.fingerprint,
            fingerprint
        ));
    }
    if part.report.total != part.plans {
        return Err(format!(
            "{}: report covers {} of {} plans",
            path.display(),
            part.report.total,
            part.plans
        ));
    }
    Ok(part)
}

/// Run the TF0xx lints (including the solver-backed `TF007`) and print
/// rustc-style diagnostics. Returns the exit code (4) when an
/// error-severity lint fired, `None` when lint passes. With `--json=PATH`
/// the diagnostics are also mirrored as a `talft.lint.v1` report.
/// `--zap-report=PATH`: dump the per-cell k=1 classification and the
/// compositional k=2 pair summary as a `talft.zap.v1` document.
fn write_zap_report(out: &str, input: &str, program: &Arc<Program>) -> Result<(), String> {
    use talft_obs::Json;
    let zap = talft_analysis::analyze_zaps(program);
    let mut analyzer = talft_analysis::PairAnalyzer::new(program);
    let pairs = analyzer.pair_report();
    let cell = |kind: &str, addr: i64, index: Option<u64>, class: &talft_analysis::ZapClass| {
        let mut fields = vec![
            ("kind".to_owned(), Json::str(kind)),
            ("addr".to_owned(), Json::I64(addr)),
        ];
        if let Some(i) = index {
            fields.push(("index".to_owned(), Json::U64(i)));
        }
        fields.push(("class".to_owned(), Json::Str(class.to_string())));
        Json::Object(fields)
    };
    let mut cells = Vec::new();
    cells.extend(zap.pc.iter().map(|(a, c)| cell("pc", *a, None, c)));
    cells.extend(zap.dst.iter().map(|(a, c)| cell("d", *a, None, c)));
    cells.extend(
        zap.gpr
            .iter()
            .map(|((a, r), c)| cell("gpr", *a, Some(u64::from(*r)), c)),
    );
    cells.extend(
        zap.queue
            .iter()
            .map(|((a, s), c)| cell("queue", *a, Some(*s as u64), c)),
    );
    let (detected, benign, vulnerable) = zap.tally();
    let witnesses: Vec<Json> = pairs
        .witness
        .iter()
        .map(|(at, (a, b))| {
            Json::obj([
                ("compare", Json::I64(*at)),
                ("first", Json::Str(a.to_string())),
                ("second", Json::Str(b.to_string())),
            ])
        })
        .collect();
    let per_compare: Vec<Json> = pairs
        .per_compare
        .iter()
        .map(|(at, n)| Json::obj([("compare", Json::I64(*at)), ("pairs", Json::U64(*n))]))
        .collect();
    let json = Json::obj([
        ("schema", Json::str("talft.zap.v1")),
        ("file", Json::str(input)),
        (
            "bailed",
            match &zap.bailed {
                Some(why) => Json::Str(why.clone()),
                None => Json::Null,
            },
        ),
        (
            "k1",
            Json::obj([
                ("detected", Json::U64(detected as u64)),
                ("benign", Json::U64(benign as u64)),
                ("vulnerable", Json::U64(vulnerable as u64)),
                ("coverage", Json::F64(zap.coverage())),
                ("cells", Json::Array(cells)),
            ]),
        ),
        (
            "k2",
            Json::obj([
                ("cells", Json::U64(pairs.cells as u64)),
                ("pairs", Json::U64(pairs.pairs)),
                ("detected", Json::U64(pairs.detected)),
                ("benign", Json::U64(pairs.benign)),
                ("vulnerable", Json::U64(pairs.vulnerable)),
                ("single_vulnerable", Json::U64(pairs.single_vulnerable)),
                ("cooperative", Json::U64(pairs.cooperative)),
                ("coverage", Json::F64(pairs.coverage())),
                ("fixpoints", Json::U64(pairs.fixpoints)),
                ("per_compare", Json::Array(per_compare)),
                ("witnesses", Json::Array(witnesses)),
            ]),
        ),
    ]);
    std::fs::write(out, format!("{json}\n")).map_err(|e| format!("cannot write {out}: {e}"))
}

fn run_lint(
    path: &str,
    program: &Arc<Program>,
    arena: &mut ExprArena,
    lines: Option<&[u32]>,
) -> Option<ExitCode> {
    let mut diags = talft_analysis::lint_program_solver(program, arena);
    if let Some(lines) = lines {
        diags = diags
            .into_iter()
            .map(|d| d.with_line_table(lines))
            .collect();
    }
    for d in &diags {
        eprintln!("{}", d.render());
    }
    let errors = talft_analysis::error_count(&diags);
    let warnings = diags.len() - errors;
    eprintln!("talftc: lint: {errors} error(s), {warnings} warning(s)");
    if let Some(json_path) =
        std::env::args().find_map(|a| a.strip_prefix("--json=").map(str::to_owned))
    {
        let json = talft_obs::Json::Object(vec![
            ("schema".to_owned(), talft_obs::Json::str("talft.lint.v1")),
            ("file".to_owned(), talft_obs::Json::str(path)),
            ("errors".to_owned(), talft_obs::Json::U64(errors as u64)),
            ("warnings".to_owned(), talft_obs::Json::U64(warnings as u64)),
            (
                "diagnostics".to_owned(),
                talft_obs::Json::Array(diags.iter().map(talft_core::Diagnostic::to_json).collect()),
            ),
        ]);
        if let Err(e) = std::fs::write(&json_path, format!("{json}\n")) {
            eprintln!("talftc: cannot write {json_path}: {e}");
            return Some(ExitCode::FAILURE);
        }
        eprintln!("talftc: wrote {json_path}");
    }
    (errors > 0).then(|| ExitCode::from(4))
}

fn report_timing(c: &talft_compiler::Compiled) {
    let model = MachineModel::default();
    let r = talft_compiler::vir::interpret(&c.vir, 200_000_000);
    if !r.halted {
        eprintln!("talftc: --time: reference run did not halt");
        return;
    }
    let b = simulate(&c.baseline.sched, &r.visits, &model);
    let p = simulate(&c.protected.sched, &r.visits, &model);
    let u = simulate(&c.protected_unordered_sched, &r.visits, &model);
    eprintln!(
        "talftc: cycles baseline={b} talft={p} ({:.3}x) talft-unordered={u} ({:.3}x)",
        p as f64 / b as f64,
        u as f64 / b as f64
    );
}
