//! `talftc` — the TAL_FT command-line driver.
//!
//! ```text
//! talftc <file.wile|file.talft> [flags]
//!
//!   --emit-asm        print the (protected) program as .talft text
//!   --disasm          print a bare disassembly
//!   --no-check        skip type checking
//!   --run             execute and print the observable trace
//!   --campaign[=N]    run a single-fault campaign (stride N, default 11)
//!   --baseline        operate on the unprotected baseline instead
//!   --time            report Figure 10-style cycles for this program
//! ```
//!
//! Wile inputs go through the full reliability-transforming compiler;
//! `.talft` inputs are assembled directly.

use std::process::ExitCode;
use std::sync::Arc;

use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_faultsim::{run_campaign, CampaignConfig};
use talft_isa::{assemble, print_program, Program};
use talft_logic::ExprArena;
use talft_machine::run_program;
use talft_sim::{simulate, MachineModel};

struct Flags {
    emit_asm: bool,
    disasm: bool,
    check: bool,
    run: bool,
    campaign: Option<u64>,
    baseline: bool,
    time: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: talftc <file.wile|file.talft> [--emit-asm] [--disasm] [--no-check] [--run] [--campaign[=N]] [--baseline] [--time]");
        return ExitCode::FAILURE;
    };
    let flags = Flags {
        emit_asm: args.iter().any(|a| a == "--emit-asm"),
        disasm: args.iter().any(|a| a == "--disasm"),
        check: !args.iter().any(|a| a == "--no-check"),
        run: args.iter().any(|a| a == "--run"),
        campaign: args.iter().find_map(|a| {
            a.strip_prefix("--campaign")
                .map(|rest| rest.strip_prefix('=').and_then(|n| n.parse().ok()).unwrap_or(11))
        }),
        baseline: args.iter().any(|a| a == "--baseline"),
        time: args.iter().any(|a| a == "--time"),
    };

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("talftc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (program, mut arena): (Arc<Program>, ExprArena) = if path.ends_with(".talft") {
        match assemble(&src) {
            Ok(a) => (Arc::new(a.program), a.arena),
            Err(e) => {
                eprintln!("talftc: assembly error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let opts = CompileOptions::default();
        let c = match compile(&src, &opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("talftc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if flags.time {
            report_timing(&c);
        }
        if flags.baseline {
            (c.baseline.program, c.baseline.arena)
        } else {
            (c.protected.program, c.protected.arena)
        }
    };

    if flags.emit_asm {
        print!("{}", print_program(&program, &arena));
    }
    if flags.disasm {
        print!("{}", talft_isa::disassemble(&program));
    }
    if flags.check {
        match check_program(&program, &mut arena) {
            Ok(rep) => eprintln!(
                "talftc: type check OK ({} blocks, {} instructions) — fault tolerant",
                rep.blocks, rep.instrs
            ),
            Err(e) => {
                eprintln!("talftc: TYPE ERROR: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if flags.run {
        let r = run_program(&program, 500_000_000);
        eprintln!("talftc: {} after {} steps", r.status, r.steps);
        for (a, v) in &r.trace {
            println!("{a}\t{v}");
        }
    }
    if let Some(stride) = flags.campaign {
        let cfg = CampaignConfig { stride, ..CampaignConfig::default() };
        let rep = run_campaign(&program, &cfg);
        eprintln!(
            "talftc: campaign: {} injections — {} masked, {} detected, {} SDC, {} other",
            rep.total, rep.masked, rep.detected, rep.sdc, rep.other_violations
        );
        if !rep.fault_tolerant() {
            eprintln!("talftc: NOT fault tolerant; first counterexamples:");
            for v in rep.violations.iter().take(5) {
                eprintln!("  {:?} at step {} ← {}", v.site, v.at_step, v.value);
            }
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}

fn report_timing(c: &talft_compiler::Compiled) {
    let model = MachineModel::default();
    let r = talft_compiler::vir::interpret(&c.vir, 200_000_000);
    if !r.halted {
        eprintln!("talftc: --time: reference run did not halt");
        return;
    }
    let b = simulate(&c.baseline.sched, &r.visits, &model);
    let p = simulate(&c.protected.sched, &r.visits, &model);
    let u = simulate(&c.protected_unordered_sched, &r.visits, &model);
    eprintln!(
        "talftc: cycles baseline={b} talft={p} ({:.3}x) talft-unordered={u} ({:.3}x)",
        p as f64 / b as f64,
        u as f64 / b as f64
    );
}
