//! **perfreport** — the E15 observability profile: per-pass checker
//! timings, solver query counters, and campaign throughput at
//! `MachineModel::default()`, captured through the `talft-obs` registry and
//! written as one schema-stable JSON document.
//!
//! Four phases, each preceded by a registry reset so its numbers are
//! attributable:
//!
//! 1. **checker** — compile every Tiny-scale kernel and `check_program` its
//!    protected binary (per-pass spans, rule-hit counters, solver counters);
//! 2. **checkperf** — the E21 solver matrix: re-check every kernel under
//!    interval pre-solver {off, on} × persistent cache {cold, warm} and
//!    record wall time plus the interval/FM/pcache counters;
//! 3. **machine** — run each protected binary to completion (steps, queue
//!    high-water mark);
//! 4. **campaign** — a strided k=1 campaign per kernel with `threads: 1`
//!    pinned (plans/sec would be machine-dependent under
//!    `available_parallelism`; see DESIGN.md §Observability).
//!
//! Usage: `cargo run --release -p talft-bench --bin perfreport
//!          [--json <path>] [--check <path>] [--stride N]`
//!
//! `--json` defaults to `BENCH_perf.json`. `--check <path>` instead parses
//! an existing report with the dep-free [`talft_obs::Json`] parser and
//! verifies the schema tag and required sections — the CI smoke gate. For
//! the checkperf matrix it also gates on the machine-independent solver
//! invariants: every row must satisfy `interval hit + miss == queries`
//! (no silent bypass of the counter discipline), the interval-off rows
//! must report zero interval queries, and within each interval mode the
//! warm-cache row must run **no more** Fourier–Motzkin eliminations than
//! its cold counterpart.

use std::time::Instant;

use talft_bench::report::{self, campaign_json, Report};
use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_faultsim::{run_campaign, CampaignConfig};
use talft_machine::run_program;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

/// Required top-level keys of a `talft.perfreport.v1` document.
const REQUIRED: &[&str] = &[
    "schema",
    "stride",
    "kernels",
    "checker",
    "checkperf",
    "machine",
    "campaign",
];

fn main() {
    if let Some(path) = report::arg_str("--check") {
        check_existing(&path);
        return;
    }
    let stride = report::arg("--stride").unwrap_or(23);
    let path = report::json_path().unwrap_or_else(|| "BENCH_perf.json".into());

    talft_obs::set_enabled(true);
    let ks = kernels(Scale::Tiny);

    // Phase 1: checker. Compile outside the measured region; check inside.
    let mut compiled = Vec::new();
    for k in &ks {
        match compile(&k.source, &CompileOptions::default()) {
            Ok(c) => compiled.push((k.name, c)),
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        }
    }
    talft_obs::reset_all();
    let t0 = Instant::now();
    for (name, c) in &mut compiled {
        if let Err(e) = check_program(&c.protected.program, &mut c.protected.arena) {
            eprintln!("error: {name} failed the checker: {e}");
            std::process::exit(1);
        }
    }
    let checker_wall = t0.elapsed();
    let checker = talft_obs::snapshot();

    // Phase 2: checkperf — the E21 matrix. Each cell re-checks every
    // kernel; the cold run of each interval mode starts from an absent
    // cache file and saves, the warm run reloads what cold wrote. The
    // interval layer is verdict-transparent, so all four cells must check
    // identically — only the timings and counters may differ.
    let ambient_interval = talft_logic::entail_interval_enabled();
    let mut checkperf_rows = Vec::new();
    for interval in [false, true] {
        let mode = if interval { "on" } else { "off" };
        let cache_path = std::env::temp_dir().join(format!(
            "talft-checkperf-{}-{mode}.solvercache",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&cache_path);
        for run in ["cold", "warm"] {
            talft_logic::set_entail_interval(interval);
            talft_logic::clear_solver_cache();
            let loaded = talft_logic::load_solver_cache(&cache_path);
            talft_obs::reset_all();
            let t0 = Instant::now();
            for (name, c) in &mut compiled {
                if let Err(e) = check_program(&c.protected.program, &mut c.protected.arena) {
                    eprintln!("error: {name} failed the checker (interval {mode}, {run}): {e}");
                    std::process::exit(1);
                }
            }
            let wall = t0.elapsed();
            let snap = talft_obs::snapshot();
            let n = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
            if run == "cold" {
                if let Err(e) = talft_logic::save_solver_cache() {
                    eprintln!("error: cannot save checkperf solver cache: {e}");
                    std::process::exit(1);
                }
            }
            let (fm_runs, iq, ih, im) = (
                n("logic.fm.runs"),
                n("logic.interval.queries"),
                n("logic.interval.hit"),
                n("logic.interval.miss"),
            );
            eprintln!(
                "checkperf: interval {mode:>3} / pcache {run:>4}: {:>9} ns, \
                 fm {fm_runs}, interval {ih}/{iq}, pcache {}/{}",
                ns(wall),
                n("logic.pcache.hit"),
                n("logic.pcache.hit") + n("logic.pcache.miss"),
            );
            checkperf_rows.push(Json::obj([
                ("interval", Json::str(mode)),
                ("pcache", Json::str(run)),
                ("wall_ns", Json::U64(ns(wall))),
                ("loaded", Json::U64(loaded as u64)),
                ("fm_runs", Json::U64(fm_runs)),
                ("fm_giveups", Json::U64(n("logic.fm.giveups"))),
                ("interval_queries", Json::U64(iq)),
                ("interval_hit", Json::U64(ih)),
                ("interval_miss", Json::U64(im)),
                ("interval_narrowed", Json::U64(n("logic.interval.narrowed"))),
                ("pcache_hit", Json::U64(n("logic.pcache.hit"))),
                ("pcache_miss", Json::U64(n("logic.pcache.miss"))),
            ]));
        }
        let _ = std::fs::remove_file(&cache_path);
    }
    talft_logic::clear_solver_cache();
    talft_logic::set_entail_interval(ambient_interval);

    // Phase 3: machine.
    talft_obs::reset_all();
    for (name, c) in &compiled {
        let r = run_program(&c.protected.program, 100_000_000);
        if !r.halted() {
            eprintln!("error: {name} did not halt");
            std::process::exit(1);
        }
    }
    let machine = talft_obs::snapshot();

    // Phase 4: campaign, threads pinned to 1 for comparable plans/sec.
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 2,
        threads: 1,
        ..CampaignConfig::default()
    };
    talft_obs::reset_all();
    let t0 = Instant::now();
    let mut campaign_rows = Vec::new();
    for (name, c) in &compiled {
        match run_campaign(&c.protected.program, &cfg) {
            Ok(rep) => campaign_rows.push(Json::obj([
                ("name", Json::str(*name)),
                ("report", campaign_json(&rep)),
            ])),
            Err(e) => {
                eprintln!("error: {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    let campaign_wall = t0.elapsed();
    let campaign = talft_obs::snapshot();

    let json = Report::new("talft.perfreport.v1")
        .field("stride", Json::U64(stride))
        .field("kernels", Json::U64(ks.len() as u64))
        .field(
            "checker",
            Json::obj([
                ("wall_ns", Json::U64(ns(checker_wall))),
                ("obs", checker.to_json()),
            ]),
        )
        .field(
            "checkperf",
            Json::obj([("rows", Json::Array(checkperf_rows.clone()))]),
        )
        .field("machine", Json::obj([("obs", machine.to_json())]))
        .field(
            "campaign",
            Json::obj([
                ("wall_ns", Json::U64(ns(campaign_wall))),
                ("threads", Json::U64(1)),
                ("rows", Json::Array(campaign_rows)),
                ("obs", campaign.to_json()),
            ]),
        )
        .build();
    report::write_json(&json, &path);

    eprintln!("--- checker phase ---");
    eprint!("{}", checker.render_text());
    eprintln!("--- machine phase ---");
    eprint!("{}", machine.render_text());
    eprintln!("--- campaign phase ---");
    eprint!("{}", campaign.render_text());
}

fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Validate an existing report: parses with the self-contained JSON parser
/// and checks the schema contract. Exit 0 on success, 1 on any failure.
fn check_existing(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfreport: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perfreport: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    for key in REQUIRED {
        if json.get(key).is_none() {
            eprintln!("perfreport: {path} is missing required key {key:?}");
            std::process::exit(1);
        }
    }
    if json.get("schema").and_then(Json::as_str) != Some("talft.perfreport.v1") {
        eprintln!("perfreport: {path} has an unexpected schema tag");
        std::process::exit(1);
    }
    let counters = json
        .get("checker")
        .and_then(|c| c.get("obs"))
        .and_then(|o| o.get("counters"));
    for counter in ["checker.blocks", "checker.instrs", "logic.query.eq"] {
        if counters.and_then(|c| c.get(counter)).is_none() {
            eprintln!("perfreport: {path} checker phase is missing counter {counter:?}");
            std::process::exit(1);
        }
    }
    check_checkperf(path, &json);
    println!("perfreport: {path} OK (schema talft.perfreport.v1)");
}

/// Gate the checkperf matrix on its machine-independent solver invariants.
fn check_checkperf(path: &str, json: &Json) {
    let fail = |msg: &str| -> ! {
        eprintln!("perfreport: {path}: checkperf: {msg}");
        std::process::exit(1);
    };
    let Some(Json::Array(rows)) = json.get("checkperf").and_then(|c| c.get("rows")) else {
        fail("rows is not an array");
    };
    if rows.len() != 4 {
        fail(&format!("expected 4 matrix rows, found {}", rows.len()));
    }
    // (interval mode, pcache run) → fm_runs, for the cold-vs-warm gate.
    let mut fm: Vec<(String, String, u64)> = Vec::new();
    for row in rows {
        let s = |key: &str| -> String {
            match row.get(key).and_then(Json::as_str) {
                Some(v) => v.to_string(),
                None => fail(&format!("a row is missing {key:?}")),
            }
        };
        let n = |key: &str| -> u64 {
            match row.get(key).and_then(Json::as_u64) {
                Some(v) => v,
                None => fail(&format!("a row is missing {key:?}")),
            }
        };
        let (mode, run) = (s("interval"), s("pcache"));
        let cell = format!("interval {mode} / pcache {run}");
        if n("interval_hit") + n("interval_miss") != n("interval_queries") {
            fail(&format!("{cell}: interval hit+miss != queries"));
        }
        if mode == "off" && n("interval_queries") != 0 {
            fail(&format!("{cell}: interval layer consulted while off"));
        }
        if n("fm_giveups") != 0 {
            fail(&format!("{cell}: nonzero Fourier–Motzkin give-ups"));
        }
        fm.push((mode, run, n("fm_runs")));
    }
    for mode in ["off", "on"] {
        let runs_of = |which: &str| {
            fm.iter()
                .find(|(m, r, _)| m == mode && r == which)
                .map(|&(_, _, v)| v)
                .unwrap_or_else(|| fail(&format!("missing row interval {mode} / pcache {which}")))
        };
        if runs_of("warm") > runs_of("cold") {
            fail(&format!(
                "interval {mode}: warm cache ran more FM eliminations than cold"
            ));
        }
    }
}
