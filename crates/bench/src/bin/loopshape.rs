//! Loop-shape ablation (extension): the Figure 10 ratio under top-test vs
//! inverted (bottom-test) loops. Inversion enlarges basic blocks — the
//! scheduling window the duplicated stream hides in — so it probes how
//! sensitive the headline overhead is to front-end code shape.
//!
//! Usage: `cargo run --release -p talft-bench --bin loopshape [--json <path>]`

use talft_bench::report::{self, sweep_row_json, Report};
use talft_bench::{geomean, reference_visits, Fig10Row};
use talft_compiler::{compile, CompileOptions};
use talft_obs::Json;
use talft_sim::{simulate, MachineModel};
use talft_suite::{kernels, Scale};

fn main() {
    let model = MachineModel::default();
    println!("# Loop-shape ablation: geomean TAL-FT overhead");
    println!("| loop form | geomean | baseline cyc (sum) | TAL-FT cyc (sum) |");
    println!("|---|---:|---:|---:|");
    let mut json_rows = Vec::new();
    for (label, invert) in [("top-test", false), ("inverted", true)] {
        let mut ratios = Vec::new();
        let mut base_sum = 0u64;
        let mut prot_sum = 0u64;
        for k in kernels(Scale::Small) {
            let opts = CompileOptions {
                invert_loops: invert,
                model,
                ..Default::default()
            };
            let c = match compile(&k.source, &opts) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {}: {e}", k.name);
                    std::process::exit(1);
                }
            };
            let visits = reference_visits(&c).expect("halts");
            let row = Fig10Row {
                name: k.name,
                base_cycles: simulate(&c.baseline.sched, &visits, &model),
                talft_cycles: simulate(&c.protected.sched, &visits, &model),
                talft_unordered_cycles: 0,
            };
            base_sum += row.base_cycles;
            prot_sum += row.talft_cycles;
            ratios.push(row.ratio_ordered());
        }
        let g = geomean(&ratios);
        println!("| {label} | {g:.3}x | {base_sum} | {prot_sum} |");
        json_rows.push(sweep_row_json(label, g, base_sum, prot_sum));
    }
    report::emit(|| {
        Report::new("talft.loopshape.v1")
            .field("rows", Json::Array(json_rows))
            .build()
    });
}
