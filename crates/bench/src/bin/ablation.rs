//! E6 / **ablations**: (a) the scheduling-constraint gap (already part of
//! Figure 10) as a function of issue width — the paper's 34% vs 30% at
//! width 6 — and (b) where the duplication overhead lands on narrow and
//! very wide machines.
//!
//! Usage: `cargo run --release -p talft-bench --bin ablation [--json <path>]`

use talft_bench::report::{self, Report};
use talft_bench::width_sweep;
use talft_obs::Json;
use talft_suite::Scale;

fn main() {
    println!("# Ablation: geomean overhead vs issue width");
    println!("| width | TAL-FT | TAL-FT w/o ordering | gap |");
    println!("|---:|---:|---:|---:|");
    match width_sweep(Scale::Small, &[1, 2, 3, 4, 6, 8]) {
        Ok(rows) => {
            for &(w, go, gu) in &rows {
                println!("| {w} | {go:.3}x | {gu:.3}x | {:.1}% |", (go - gu) * 100.0);
            }
            report::emit(|| {
                Report::new("talft.ablation.v1")
                    .field(
                        "rows",
                        Json::Array(
                            rows.iter()
                                .map(|&(w, go, gu)| {
                                    Json::obj([
                                        ("width", Json::U64(u64::from(w))),
                                        ("geomean_ordered", Json::F64(go)),
                                        ("geomean_unordered", Json::F64(gu)),
                                    ])
                                })
                                .collect(),
                        ),
                    )
                    .build()
            });
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
