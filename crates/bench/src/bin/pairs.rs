//! E22 / **static pair-fault coverage table**: the compositional k=2
//! pair analyzer (talft-analysis) cross-validated against k=2 injection
//! campaigns over every suite kernel. Three hard gates, any failure
//! exits nonzero:
//!
//! * a **pair-differential mismatch** — a statically Detected/Benign
//!   cell *pair* that a two-strike plan drove to SDC — contradicts the
//!   compositional analyzer's soundness claim;
//! * a **guided/unguided report divergence** — static-guided plan
//!   prioritization must be verdict-neutral (bit-identical reports);
//! * an **analyzer bail** on a suite kernel (all kernels fit the
//!   two-word taint mask).
//!
//! Per kernel the table reports the static pair tally (detected /
//! benign / vulnerable, with the vulnerable split into single-member
//! and genuinely cooperative defeats) and the *static k=2 coverage* —
//! the fraction of unordered cell pairs provably safe under two upsets
//! — next to the sampled-grid evidence. The first kernels additionally
//! get an **exhaustive** pair grid (every unordered pair of a strided
//! strike universe).
//!
//! Usage: `cargo run --release -p talft-bench --bin pairs
//!          [-- --stride N] [--samples N] [--exhaustive N]
//!          [--json <path>] [--check <path>]`
//!
//! `--stride N` (default 17) thins the strike universe; `--samples N`
//! (default 128) caps the stratified k=2 sample; `--exhaustive N`
//! (default 2) exhaustively pairs the first N kernels.
//! `TALFT_STRIDE_SCALE` scales the stride as everywhere else.
//! `--check <path>` re-validates an existing report with the dep-free
//! JSON parser and gates on the same count invariants — never timings.

use std::sync::Arc;

use talft_analysis::{
    cross_validate_pairs, lint_pairs, prioritize_pairs, PairAnalyzer, PairDiffSummary, PairReport,
};
use talft_bench::report::{self, Report};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{
    exhaustive_pair_plans, golden_run, golden_trace, multi_fault_plans, plan_fault_grid_against,
    run_plan_campaign, run_plan_campaign_guided, single_fault_plans, CampaignConfig, FaultPlan,
    Golden, Verdict,
};
use talft_isa::Program;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

/// Required top-level keys of a `talft.pairs.v1` document.
const REQUIRED: &[&str] = &[
    "schema",
    "kernels",
    "stride",
    "samples",
    "rows",
    "exhaustive",
    "totals",
];

/// Exhaustive pair grids stay under this many plans per side.
const EXHAUSTIVE_CAP: usize = 20_000;

/// One side (protected or baseline) of a kernel row.
struct Side {
    pairs: PairReport,
    tf008: u64,
    sampled_sdc: u64,
    diff: PairDiffSummary,
    guided_identical: bool,
}

fn main() {
    if let Some(path) = report::arg_str("--check") {
        check_existing(&path);
        return;
    }
    let stride = report::arg("--stride").unwrap_or(17);
    let samples = report::arg("--samples").unwrap_or(128) as usize;
    let exhaustive_kernels = report::arg("--exhaustive").unwrap_or(2) as usize;
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 1,
        pair_samples: samples,
        ..CampaignConfig::default()
    };
    let ks = kernels(Scale::Tiny);
    println!(
        "# E22 static pair-fault coverage differential ({} kernels, stride {}, {} sampled pairs)",
        ks.len(),
        cfg.effective_stride(),
        samples
    );
    println!("# statically Detected/Benign cell pairs must never score SDC in a k=2 campaign");
    println!(
        "| kernel | side | cells | pairs | detected | benign | vulnerable | coop | k2 cov | grid SDC | predicted | mismatches | guided≡ |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---:|");

    let mut failed = false;
    let mut rows = Vec::new();
    let mut exhaustive_rows = Vec::new();
    let mut totals: Vec<(&str, Side)> = vec![];
    for (ki, k) in ks.iter().enumerate() {
        let c = match compile(&k.source, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        };
        let mut sides = Vec::new();
        for (side, program) in [
            ("protected", &c.protected.program),
            ("baseline", &c.baseline.program),
        ] {
            let program: Arc<Program> = Arc::new(program.as_ref().clone());
            let s = match analyze_side(&program, &cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {} ({side}): {e}", k.name);
                    std::process::exit(1);
                }
            };
            if !s.diff.holds() {
                eprintln!(
                    "PAIR DIFFERENTIAL MISMATCH: {} ({side}): statically-safe SDC pair: {:?}",
                    k.name, s.diff.mismatches
                );
                failed = true;
            }
            if !s.guided_identical {
                eprintln!(
                    "GUIDANCE NOT VERDICT-NEUTRAL: {} ({side}): guided report diverged",
                    k.name
                );
                failed = true;
            }
            if ki < exhaustive_kernels {
                match exhaustive_side(&program, &cfg) {
                    Ok((ex_stride, plans, sdc, diff)) => {
                        if !diff.holds() {
                            eprintln!(
                                "PAIR DIFFERENTIAL MISMATCH (exhaustive): {} ({side}): {:?}",
                                k.name, diff.mismatches
                            );
                            failed = true;
                        }
                        exhaustive_rows.push(Json::obj([
                            ("name", Json::str(k.name)),
                            ("side", Json::str(side)),
                            ("stride", Json::U64(ex_stride)),
                            ("plans", Json::U64(plans)),
                            ("sdc", Json::U64(sdc)),
                            ("checked", Json::U64(diff.checked as u64)),
                            ("predicted_sdc", Json::U64(diff.predicted_sdc as u64)),
                            ("mismatches", Json::U64(diff.mismatches.len() as u64)),
                        ]));
                    }
                    Err(e) => {
                        eprintln!("error: {} ({side}) exhaustive: {e}", k.name);
                        std::process::exit(1);
                    }
                }
            }
            print_row(k.name, side, &s);
            sides.push((side, s));
        }
        rows.push(Json::obj([
            ("name", Json::str(k.name)),
            ("protected", side_json(&sides[0].1)),
            ("baseline", side_json(&sides[1].1)),
        ]));
        totals.extend(sides);
    }

    let total_for = |which: &str| -> Json {
        let mut agg = Side {
            pairs: PairReport::default(),
            tf008: 0,
            sampled_sdc: 0,
            diff: PairDiffSummary::default(),
            guided_identical: true,
        };
        for s in totals.iter().filter(|(sd, _)| *sd == which).map(|(_, s)| s) {
            agg.pairs.cells += s.pairs.cells;
            agg.pairs.pairs += s.pairs.pairs;
            agg.pairs.detected += s.pairs.detected;
            agg.pairs.benign += s.pairs.benign;
            agg.pairs.vulnerable += s.pairs.vulnerable;
            agg.pairs.single_vulnerable += s.pairs.single_vulnerable;
            agg.pairs.cooperative += s.pairs.cooperative;
            agg.pairs.fixpoints += s.pairs.fixpoints;
            agg.tf008 += s.tf008;
            agg.sampled_sdc += s.sampled_sdc;
            agg.diff.plans += s.diff.plans;
            agg.diff.checked += s.diff.checked;
            agg.diff.degenerate += s.diff.degenerate;
            agg.diff.predicted_sdc += s.diff.predicted_sdc;
            agg.diff
                .mismatches
                .extend(s.diff.mismatches.iter().cloned());
            agg.guided_identical &= s.guided_identical;
        }
        side_json(&agg)
    };
    let totals_json = Json::obj([
        ("protected", total_for("protected")),
        ("baseline", total_for("baseline")),
    ]);
    report::emit(|| {
        Report::new("talft.pairs.v1")
            .field("kernels", Json::U64(ks.len() as u64))
            .field("stride", Json::U64(cfg.effective_stride()))
            .field("samples", Json::U64(samples as u64))
            .field("rows", Json::Array(rows.clone()))
            .field("exhaustive", Json::Array(exhaustive_rows.clone()))
            .field("totals", totals_json.clone())
            .build()
    });

    if failed {
        println!("RESULT: STATIC PAIR ANALYSIS CONTRADICTED — see messages above.");
        std::process::exit(2);
    }
    println!(
        "RESULT: pair differential holds on all {} kernels (protected and baseline); \
         static guidance is verdict-neutral.",
        ks.len()
    );
}

/// Pair-classify one binary and cross-validate the sampled k=2 grid.
fn analyze_side(program: &Arc<Program>, cfg: &CampaignConfig) -> Result<Side, String> {
    let mut analyzer = PairAnalyzer::new(program);
    if let Some(why) = analyzer.bailed() {
        return Err(format!("pair analyzer bailed: {why}"));
    }
    let pairs = analyzer.pair_report();
    let tf008 = lint_pairs(program).len() as u64;
    let golden = golden_run(program, cfg).map_err(|e| format!("golden run: {e}"))?;
    let plans = multi_fault_plans(program, cfg, &golden, 2);
    let trace = golden_trace(program, cfg, &golden);
    let hot = prioritize_pairs(&mut analyzer, &trace, &plans);
    let baseline = run_plan_campaign(program, cfg, &golden, &plans);
    let guided = run_plan_campaign_guided(program, cfg, &golden, &plans, &hot);
    let grid = plan_fault_grid_against(program, cfg, &golden, &plans);
    let diff = cross_validate_pairs(&mut analyzer, &grid);
    Ok(Side {
        pairs,
        tf008,
        sampled_sdc: grid.count(Verdict::Sdc) as u64,
        diff,
        guided_identical: guided == baseline,
    })
}

/// Exhaustively pair a strided strike universe, doubling the stride until
/// the quadratic grid fits the cap, and cross-validate it.
fn exhaustive_side(
    program: &Arc<Program>,
    base: &CampaignConfig,
) -> Result<(u64, u64, u64, PairDiffSummary), String> {
    let mut cfg = base.clone();
    let golden: Golden = golden_run(program, &cfg).map_err(|e| format!("golden run: {e}"))?;
    loop {
        let n = single_fault_plans(program, &cfg, &golden).len();
        if n * n.saturating_sub(1) / 2 <= EXHAUSTIVE_CAP {
            break;
        }
        cfg.stride = cfg.stride.saturating_mul(2);
    }
    let plans: Vec<FaultPlan> = exhaustive_pair_plans(program, &cfg, &golden);
    let grid = plan_fault_grid_against(program, &cfg, &golden, &plans);
    let mut analyzer = PairAnalyzer::new(program);
    let diff = cross_validate_pairs(&mut analyzer, &grid);
    Ok((
        cfg.effective_stride(),
        plans.len() as u64,
        grid.count(Verdict::Sdc) as u64,
        diff,
    ))
}

fn print_row(name: &str, side: &str, s: &Side) {
    println!(
        "| {} | {} | {} | {} | {} | {} | {} | {} | {:.1}% | {} | {} | **{}** | {} |",
        name,
        side,
        s.pairs.cells,
        s.pairs.pairs,
        s.pairs.detected,
        s.pairs.benign,
        s.pairs.vulnerable,
        s.pairs.cooperative,
        100.0 * s.pairs.coverage(),
        s.sampled_sdc,
        s.diff.predicted_sdc,
        s.diff.mismatches.len(),
        if s.guided_identical { "yes" } else { "NO" },
    );
}

fn side_json(s: &Side) -> Json {
    Json::obj([
        ("cells", Json::U64(s.pairs.cells as u64)),
        ("pairs", Json::U64(s.pairs.pairs)),
        ("detected", Json::U64(s.pairs.detected)),
        ("benign", Json::U64(s.pairs.benign)),
        ("vulnerable", Json::U64(s.pairs.vulnerable)),
        ("single_vulnerable", Json::U64(s.pairs.single_vulnerable)),
        ("cooperative", Json::U64(s.pairs.cooperative)),
        ("k2_coverage", Json::F64(s.pairs.coverage())),
        ("fixpoints", Json::U64(s.pairs.fixpoints)),
        ("tf008", Json::U64(s.tf008)),
        ("plans", Json::U64(s.diff.plans as u64)),
        ("checked", Json::U64(s.diff.checked as u64)),
        ("degenerate", Json::U64(s.diff.degenerate as u64)),
        ("grid_sdc", Json::U64(s.sampled_sdc)),
        ("predicted_sdc", Json::U64(s.diff.predicted_sdc as u64)),
        ("mismatches", Json::U64(s.diff.mismatches.len() as u64)),
        ("guided_identical", Json::U64(u64::from(s.guided_identical))),
    ])
}

/// Validate an existing report: parse, check the schema contract, then gate
/// on the machine-independent count invariants. Exit 0 on success.
fn check_existing(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pairs: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("pairs: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    for key in REQUIRED {
        if json.get(key).is_none() {
            eprintln!("pairs: {path} is missing required key {key:?}");
            std::process::exit(1);
        }
    }
    if json.get("schema").and_then(Json::as_str) != Some("talft.pairs.v1") {
        eprintln!("pairs: {path} has an unexpected schema tag");
        std::process::exit(1);
    }
    let fail = |msg: &str| -> ! {
        eprintln!("pairs: {path}: {msg}");
        std::process::exit(1);
    };
    let Some(Json::Array(rows)) = json.get("rows") else {
        fail("rows is not an array");
    };
    if rows.is_empty() {
        fail("rows is empty");
    }
    let mut sum_pairs = [0u64; 2];
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        for (i, side) in ["protected", "baseline"].into_iter().enumerate() {
            let s = row
                .get(side)
                .unwrap_or_else(|| fail(&format!("kernel {name} is missing side {side}")));
            let n = |key: &str| -> u64 {
                match s.get(key).and_then(Json::as_u64) {
                    Some(v) => v,
                    None => fail(&format!("kernel {name} ({side}) is missing {key}")),
                }
            };
            if n("mismatches") != 0 {
                fail(&format!(
                    "kernel {name} ({side}) reports a statically-safe SDC pair"
                ));
            }
            if n("guided_identical") != 1 {
                fail(&format!(
                    "kernel {name} ({side}): guidance changed the report"
                ));
            }
            if n("detected") + n("benign") + n("vulnerable") != n("pairs") {
                fail(&format!(
                    "kernel {name} ({side}): pair classes do not sum to the pair count"
                ));
            }
            if n("pairs") == 0 || n("cells") == 0 {
                fail(&format!("kernel {name} ({side}) classified nothing"));
            }
            if n("checked") + n("degenerate") > n("plans") {
                fail(&format!(
                    "kernel {name} ({side}): validated more plans than ran"
                ));
            }
            sum_pairs[i] += n("pairs");
        }
    }
    let Some(Json::Array(exhaustive)) = json.get("exhaustive") else {
        fail("exhaustive is not an array");
    };
    for ex in exhaustive {
        let name = ex.get("name").and_then(Json::as_str).unwrap_or("?");
        let n = |key: &str| -> u64 {
            match ex.get(key).and_then(Json::as_u64) {
                Some(v) => v,
                None => fail(&format!("exhaustive {name} is missing {key}")),
            }
        };
        if n("mismatches") != 0 {
            fail(&format!(
                "exhaustive {name}: statically-safe SDC pair in the full grid"
            ));
        }
        if n("plans") == 0 {
            fail(&format!("exhaustive {name} ran no plans"));
        }
    }
    let totals = json
        .get("totals")
        .unwrap_or_else(|| fail("totals is missing"));
    for (i, side) in ["protected", "baseline"].into_iter().enumerate() {
        let t = totals
            .get(side)
            .unwrap_or_else(|| fail(&format!("totals is missing side {side}")));
        if t.get("pairs").and_then(Json::as_u64) != Some(sum_pairs[i]) {
            fail(&format!(
                "totals ({side}): pairs does not equal the row sum"
            ));
        }
        if t.get("mismatches").and_then(Json::as_u64) != Some(0) {
            fail(&format!("totals ({side}): mismatches present"));
        }
    }
    println!("pairs: {path} OK (schema talft.pairs.v1)");
}
