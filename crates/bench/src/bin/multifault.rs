//! E13 / **k-fault boundary table**: sampled multi-fault campaigns over
//! every protected benchmark binary. Theorem 4 is indexed to a *single*
//! upset per run; at `k ≥ 2` the guarantee lapses, and this table measures
//! how: the stratified + correlated sampler finds coordinated double
//! upsets (same corrupted value into a green/blue copy pair) that slip
//! past the dual-modular comparison as silent data corruption. Nonzero SDC
//! here is the *expected* boundary of the fault model, not a soundness
//! bug — the `k = 1` row of the same table must stay at zero.
//!
//! Usage: `cargo run --release -p talft-bench --bin multifault
//!          [-- --k N] [--samples N] [--seed N] [--stride N] [--threads N]
//!          [--json <path>]`

use talft_bench::report::{self, arg, multifault_json, Report};
use talft_bench::{multifault_row, render_multifault};
use talft_faultsim::CampaignConfig;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

fn main() {
    let k = arg("--k").map_or(2, |v| u32::try_from(v).unwrap_or(2));
    let samples = arg("--samples").unwrap_or(4096) as usize;
    let seed = arg("--seed").unwrap_or(0x7A1F_F00D);
    let stride = arg("--stride").unwrap_or(17);
    let threads = arg("--threads").map_or(1, |v| (v as usize).max(1));
    let cfg = CampaignConfig {
        stride,
        pair_samples: samples,
        seed,
        threads,
        ..CampaignConfig::default()
    };
    println!("# k-fault boundary campaign (sampled; seed {seed:#x}, {samples} plans/kernel)");
    println!("# k=1 is the exhaustive strided sweep (must be 0 SDC); k>=2 is outside the model");
    let mut rows = Vec::new();
    for kern in kernels(Scale::Tiny) {
        for kk in [1, k] {
            match multifault_row(&kern, &cfg, kk) {
                Ok(row) => rows.push(row),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    print!("{}", render_multifault(&rows));
    println!();
    let k1_sdc: u64 = rows
        .iter()
        .filter(|r| r.k == 1)
        .map(|r| r.protected.sdc)
        .sum();
    let k1_other: u64 = rows
        .iter()
        .filter(|r| r.k == 1)
        .map(|r| r.protected.other_violations)
        .sum();
    let kn: Vec<&talft_bench::MultifaultRow> = rows.iter().filter(|r| r.k > 1).collect();
    let kn_sdc: u64 = kn.iter().map(|r| r.protected.sdc).sum();
    let kn_exposed: u64 = kn
        .iter()
        .map(|r| r.protected.detected + r.protected.sdc + r.protected.other_violations)
        .sum();
    let kn_det: u64 = kn.iter().map(|r| r.protected.detected).sum();
    let cov = if kn_exposed == 0 {
        1.0
    } else {
        kn_det as f64 / kn_exposed as f64
    };
    report::emit(|| {
        Report::new("talft.multifault.v2")
            .field("k", Json::U64(u64::from(k)))
            .field("seed", Json::U64(seed))
            .field("stride", Json::U64(stride))
            .field("samples", Json::U64(samples as u64))
            .field("k1_violations", Json::U64(k1_sdc + k1_other))
            .field("kn_sdc", Json::U64(kn_sdc))
            .field("kn_detection_coverage", Json::F64(cov))
            .field("rows", multifault_json(&rows))
            .build()
    });
    if k1_sdc + k1_other > 0 {
        println!("RESULT: THEOREM 4 VIOLATION AT k=1 — see above.");
        std::process::exit(2);
    }
    println!(
        "RESULT: k=1 clean (Theorem 4 holds); k={k} SDC {kn_sdc} across the suite, \
         detection coverage {:.1}% — the single-upset model boundary.",
        100.0 * cov
    );
}
