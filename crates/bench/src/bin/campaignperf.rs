//! **campaignperf** — the E16/E19 engine differential: the bit-parallel
//! batched campaign engine timed three-way against the scalar checkpointed
//! work-stealing engine and the pre-checkpoint reference engine on the same
//! plan sets, plus the entailment-cache hit rate over the suite checker
//! workload.
//!
//! Two phases, each preceded by a registry reset so its numbers are
//! attributable:
//!
//! 1. **checker** — compile every Tiny-scale kernel and `check_program` its
//!    protected binary with the entailment cache enabled; report
//!    `logic.cache.hit` / `logic.cache.miss` and the derived hit rate;
//! 2. **campaign** — per kernel, build the k=1 plan set once, then run
//!    [`run_plan_campaign_reference`], [`run_plan_campaign_scalar`] and
//!    [`run_plan_campaign_batched`] on it with the same pinned thread
//!    count. All three reports must be bit-identical and SDC must be zero
//!    (Theorem 4); the row records each engine's wall time and plans/sec,
//!    and the document carries per-engine verdict totals so `--check` can
//!    re-prove the agreement offline. The `batch` object breaks demotions
//!    down by cause (the `faultsim.batch.demote.*` counters) and records
//!    the multi-strike lane count, so the residual scalar work is
//!    attributable from the report alone.
//!
//! Usage: `cargo run --release -p talft-bench --bin campaignperf
//!          [--json <path>] [--check <path>] [--threads N] [--stride N]
//!          [--checkpoint-stride N]`
//!
//! `--json` defaults to `BENCH_campaign.json`; `--threads` defaults to 4
//! (pinned, not `available_parallelism`, so rows are comparable across
//! machines); `--stride` (campaign time stride) defaults to 3;
//! `--checkpoint-stride` defaults to 0 (engine auto). `--check <path>`
//! parses an existing report with the dep-free [`talft_obs::Json`] parser
//! and gates on the *count* invariants — nonzero checkpoint reuse, nonzero
//! cache hits, nonzero batched lanes, a per-cause demotion breakdown that
//! sums to the demotion total, a demoted-lane fraction of at most 2%, zero
//! SDC, and field-by-field equality of the per-engine verdict totals —
//! never on timings, which vary by machine.

use std::time::Instant;

use talft_bench::report::{self, campaign_json, Report};
use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_faultsim::{
    golden_run, run_plan_campaign_batched, run_plan_campaign_reference, run_plan_campaign_scalar,
    single_fault_plans, CampaignConfig, CampaignReport,
};
use talft_obs::Json;
use talft_suite::{kernels, Scale};

/// Required top-level keys of a `talft.campaignperf.v3` document.
const REQUIRED: &[&str] = &[
    "schema",
    "threads",
    "stride",
    "checkpoint_stride",
    "cache",
    "rows",
    "totals",
    "checkpoints",
    "batch",
];

/// The verdict-count fields every engine must agree on, exactly. These are
/// the u64 fields of [`campaign_json`]; timings are deliberately absent.
const VERDICT_FIELDS: &[&str] = &[
    "total",
    "masked",
    "detected",
    "sdc",
    "other_violations",
    "engine_errors",
    "incomplete_plans",
];

/// The demotion-cause counters, in taxonomy order; `--check` demands they
/// sum exactly to `batch.demotions`.
const DEMOTE_CAUSES: &[&str] = &[
    "queue_addr",
    "mem_commit",
    "gpr_hi",
    "load_addr",
    "control_fork",
    "terminal",
];

/// Summed verdict counts for one engine across every kernel.
#[derive(Default)]
struct VerdictTotals {
    total: u64,
    masked: u64,
    detected: u64,
    sdc: u64,
    other_violations: u64,
    engine_errors: u64,
    incomplete_plans: u64,
}

impl VerdictTotals {
    fn add(&mut self, r: &CampaignReport) {
        self.total += r.total;
        self.masked += r.masked;
        self.detected += r.detected;
        self.sdc += r.sdc;
        self.other_violations += r.other_violations;
        self.engine_errors += r.engine_errors;
        self.incomplete_plans += r.incomplete_plans;
    }

    fn json(&self) -> Json {
        Json::obj([
            ("total", Json::U64(self.total)),
            ("masked", Json::U64(self.masked)),
            ("detected", Json::U64(self.detected)),
            ("sdc", Json::U64(self.sdc)),
            ("other_violations", Json::U64(self.other_violations)),
            ("engine_errors", Json::U64(self.engine_errors)),
            ("incomplete_plans", Json::U64(self.incomplete_plans)),
        ])
    }
}

fn main() {
    if let Some(path) = report::arg_str("--check") {
        check_existing(&path);
        return;
    }
    let threads = usize::try_from(report::arg("--threads").unwrap_or(4)).unwrap_or(4);
    let stride = report::arg("--stride").unwrap_or(3);
    let checkpoint_stride = report::arg("--checkpoint-stride").unwrap_or(0);
    let path = report::json_path().unwrap_or_else(|| "BENCH_campaign.json".into());

    talft_obs::set_enabled(true);
    talft_logic::set_entail_cache(true);
    let ks = kernels(Scale::Tiny);

    // Phase 1: checker with the entailment cache on. Compile outside the
    // measured region; check inside.
    let mut compiled = Vec::new();
    for k in &ks {
        match compile(&k.source, &CompileOptions::default()) {
            Ok(c) => compiled.push((k.name, c)),
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        }
    }
    talft_obs::reset_all();
    for (name, c) in &mut compiled {
        if let Err(e) = check_program(&c.protected.program, &mut c.protected.arena) {
            eprintln!("error: {name} failed the checker: {e}");
            std::process::exit(1);
        }
    }
    let checker = talft_obs::snapshot();
    let cache_hits = counter(&checker, "logic.cache.hit");
    let cache_misses = counter(&checker, "logic.cache.miss");
    let hit_rate = rate(cache_hits, cache_misses);

    // Phase 2: campaign differential, threads pinned.
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 2,
        threads,
        checkpoint_stride,
        ..CampaignConfig::default()
    };
    talft_obs::reset_all();
    let mut rows = Vec::new();
    let (mut tot_plans, mut tot_ref_ns, mut tot_eng_ns, mut tot_bat_ns) = (0u64, 0u64, 0u64, 0u64);
    let (mut ref_tot, mut eng_tot, mut bat_tot) = (
        VerdictTotals::default(),
        VerdictTotals::default(),
        VerdictTotals::default(),
    );
    for (name, c) in &compiled {
        let golden = match golden_run(&c.protected.program, &cfg) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                std::process::exit(1);
            }
        };
        let plans = single_fault_plans(&c.protected.program, &cfg, &golden);
        let t0 = Instant::now();
        let ref_rep = run_plan_campaign_reference(&c.protected.program, &cfg, &golden, &plans);
        let ref_ns = ns(t0.elapsed());
        let t0 = Instant::now();
        let eng_rep = run_plan_campaign_scalar(&c.protected.program, &cfg, &golden, &plans);
        let eng_ns = ns(t0.elapsed());
        let t0 = Instant::now();
        let bat_rep = run_plan_campaign_batched(&c.protected.program, &cfg, &golden, &plans);
        let bat_ns = ns(t0.elapsed());
        if eng_rep != ref_rep {
            eprintln!("error: {name}: scalar engine report diverged from the reference engine");
            std::process::exit(1);
        }
        if bat_rep != ref_rep {
            eprintln!("error: {name}: batched engine report diverged from the reference engine");
            std::process::exit(1);
        }
        if eng_rep.sdc != 0 {
            eprintln!("error: {name}: SDC on a protected binary (Theorem 4 violated)");
            std::process::exit(1);
        }
        let plans_n = plans.len() as u64;
        tot_plans += plans_n;
        tot_ref_ns += ref_ns;
        tot_eng_ns += eng_ns;
        tot_bat_ns += bat_ns;
        ref_tot.add(&ref_rep);
        eng_tot.add(&eng_rep);
        bat_tot.add(&bat_rep);
        eprintln!(
            "{name:>10}: {plans_n:>6} plans  reference {:>10.0} plans/s  scalar {:>10.0} plans/s  batched {:>10.0} plans/s  ({:.2}x)",
            per_sec(plans_n, ref_ns),
            per_sec(plans_n, eng_ns),
            per_sec(plans_n, bat_ns),
            ratio(eng_ns, bat_ns),
        );
        rows.push(Json::obj([
            ("name", Json::str(*name)),
            ("plans", Json::U64(plans_n)),
            ("reference_ns", Json::U64(ref_ns)),
            ("engine_ns", Json::U64(eng_ns)),
            ("batched_ns", Json::U64(bat_ns)),
            (
                "reference_plans_per_sec",
                Json::F64(per_sec(plans_n, ref_ns)),
            ),
            ("engine_plans_per_sec", Json::F64(per_sec(plans_n, eng_ns))),
            ("batched_plans_per_sec", Json::F64(per_sec(plans_n, bat_ns))),
            ("speedup", Json::F64(ratio(ref_ns, eng_ns))),
            ("batched_speedup", Json::F64(ratio(eng_ns, bat_ns))),
            ("sdc", Json::U64(eng_rep.sdc)),
            ("report", campaign_json(&eng_rep)),
        ]));
    }
    let campaign = talft_obs::snapshot();

    let json = Report::new("talft.campaignperf.v3")
        .field("threads", Json::U64(threads as u64))
        .field("stride", Json::U64(stride))
        .field("checkpoint_stride", Json::U64(checkpoint_stride))
        .field("kernels", Json::U64(ks.len() as u64))
        .field(
            "cache",
            Json::obj([
                ("hits", Json::U64(cache_hits)),
                ("misses", Json::U64(cache_misses)),
                ("hit_rate", Json::F64(hit_rate)),
            ]),
        )
        .field("rows", Json::Array(rows))
        .field(
            "totals",
            Json::obj([
                ("plans", Json::U64(tot_plans)),
                ("reference_ns", Json::U64(tot_ref_ns)),
                ("engine_ns", Json::U64(tot_eng_ns)),
                ("batched_ns", Json::U64(tot_bat_ns)),
                (
                    "reference_plans_per_sec",
                    Json::F64(per_sec(tot_plans, tot_ref_ns)),
                ),
                (
                    "engine_plans_per_sec",
                    Json::F64(per_sec(tot_plans, tot_eng_ns)),
                ),
                (
                    "batched_plans_per_sec",
                    Json::F64(per_sec(tot_plans, tot_bat_ns)),
                ),
                ("speedup", Json::F64(ratio(tot_ref_ns, tot_eng_ns))),
                ("batched_speedup", Json::F64(ratio(tot_eng_ns, tot_bat_ns))),
                (
                    "verdicts",
                    Json::obj([
                        ("reference", ref_tot.json()),
                        ("engine", eng_tot.json()),
                        ("batched", bat_tot.json()),
                    ]),
                ),
            ]),
        )
        .field(
            "checkpoints",
            Json::obj([
                (
                    "seeks",
                    Json::U64(counter(&campaign, "campaign.checkpoint.seeks")),
                ),
                (
                    "steps_saved",
                    Json::U64(counter(&campaign, "campaign.checkpoint.steps_saved")),
                ),
                (
                    "converged_early",
                    Json::U64(counter(&campaign, "campaign.converged_early")),
                ),
                (
                    "converged_steps_saved",
                    Json::U64(counter(&campaign, "campaign.converged.steps_saved")),
                ),
            ]),
        )
        .field(
            "batch",
            Json::obj([
                (
                    "lanes",
                    Json::U64(counter(&campaign, "faultsim.batch.lanes")),
                ),
                (
                    "multi_lanes",
                    Json::U64(counter(&campaign, "faultsim.batch.multi_lanes")),
                ),
                (
                    "demotions",
                    Json::U64(counter(&campaign, "faultsim.batch.demotions")),
                ),
                (
                    "scalar_routed",
                    Json::U64(counter(&campaign, "faultsim.batch.scalar_routed")),
                ),
                (
                    "demote",
                    Json::obj(DEMOTE_CAUSES.iter().map(|c| {
                        (
                            *c,
                            Json::U64(counter(&campaign, &format!("faultsim.batch.demote.{c}"))),
                        )
                    })),
                ),
            ]),
        )
        .build();
    report::write_json(&json, &path);

    eprintln!(
        "totals: {tot_plans} plans, engine speedup {:.2}x, batched {:.2}x over engine, \
         cache hit rate {:.1}%",
        ratio(tot_ref_ns, tot_eng_ns),
        ratio(tot_eng_ns, tot_bat_ns),
        hit_rate * 100.0
    );
}

fn counter(snap: &talft_obs::Snapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn per_sec(n: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        n as f64 * 1e9 / nanos as f64
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Validate an existing report: parse, check the schema contract, then gate
/// on the machine-independent count invariants. Exit 0 on success.
fn check_existing(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaignperf: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("campaignperf: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    for key in REQUIRED {
        if json.get(key).is_none() {
            eprintln!("campaignperf: {path} is missing required key {key:?}");
            std::process::exit(1);
        }
    }
    if json.get("schema").and_then(Json::as_str) != Some("talft.campaignperf.v3") {
        eprintln!("campaignperf: {path} has an unexpected schema tag");
        std::process::exit(1);
    }
    let fail = |msg: &str| -> ! {
        eprintln!("campaignperf: {path}: {msg}");
        std::process::exit(1);
    };
    let u64_at = |j: &Json, outer: &str, key: &str| -> u64 {
        match j.get(outer).and_then(|o| o.get(key)).and_then(Json::as_u64) {
            Some(v) => v,
            None => fail(&format!("missing {outer}.{key}")),
        }
    };
    // Count invariants — machine-independent, unlike the timings.
    if u64_at(&json, "checkpoints", "seeks") == 0 {
        fail("checkpoint ring was never used (checkpoints.seeks == 0)");
    }
    if u64_at(&json, "cache", "hits") == 0 {
        fail("entailment cache recorded zero hits");
    }
    if u64_at(&json, "batch", "lanes") == 0 {
        fail("batched engine never packed a lane (batch.lanes == 0)");
    }
    // The demotion-cause taxonomy is total, and the queue/`d` shadows keep
    // the residual scalar work small: at most 2% of admitted lanes may
    // demote. Both are count invariants — a regression here means shadow
    // coverage shrank, not that the machine got slower.
    let lanes = u64_at(&json, "batch", "lanes");
    let demotions = u64_at(&json, "batch", "demotions");
    let cause_sum: u64 = DEMOTE_CAUSES
        .iter()
        .map(|c| {
            match json
                .get("batch")
                .and_then(|b| b.get("demote"))
                .and_then(|d| d.get(c))
                .and_then(Json::as_u64)
            {
                Some(v) => v,
                None => fail(&format!("missing batch.demote.{c}")),
            }
        })
        .sum();
    if cause_sum != demotions {
        fail(&format!(
            "per-cause demotions sum to {cause_sum} but batch.demotions is {demotions}"
        ));
    }
    if demotions * 50 > lanes {
        fail(&format!(
            "demoted-lane fraction {demotions}/{lanes} exceeds the 2% budget"
        ));
    }
    if json
        .get("batch")
        .and_then(|b| b.get("multi_lanes"))
        .and_then(Json::as_u64)
        .is_none()
    {
        fail("missing batch.multi_lanes");
    }
    let Some(Json::Array(rows)) = json.get("rows") else {
        fail("rows is not an array");
    };
    if rows.is_empty() {
        fail("rows is empty");
    }
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        if row.get("sdc").and_then(Json::as_u64) != Some(0) {
            fail(&format!("kernel {name} reports SDC on a protected binary"));
        }
        if row.get("batched_ns").and_then(Json::as_u64).is_none() {
            fail(&format!("kernel {name} is missing batched_ns"));
        }
    }
    // The three-way differential, re-proved offline: every engine's summed
    // verdict counts must agree field-by-field. Any divergence is a
    // verdict-exactness regression, not a tuning matter — exit nonzero and
    // name the field.
    let Some(verdicts) = json.get("totals").and_then(|t| t.get("verdicts")) else {
        fail("missing totals.verdicts");
    };
    for field in VERDICT_FIELDS {
        let at = |engine: &str| -> u64 {
            match verdicts
                .get(engine)
                .and_then(|e| e.get(field))
                .and_then(Json::as_u64)
            {
                Some(v) => v,
                None => fail(&format!("missing totals.verdicts.{engine}.{field}")),
            }
        };
        let (r, e, b) = (at("reference"), at("engine"), at("batched"));
        if e != r || b != r {
            fail(&format!(
                "engines disagree on {field}: reference={r} engine={e} batched={b}"
            ));
        }
    }
    if verdicts
        .get("reference")
        .and_then(|e| e.get("sdc"))
        .and_then(Json::as_u64)
        != Some(0)
    {
        fail("protected-suite totals report nonzero SDC");
    }
    println!("campaignperf: {path} OK (schema talft.campaignperf.v3, engines agree)");
}
