//! E17 / **static fault-coverage table**: the zap-vulnerability analyzer
//! (talft-analysis) cross-validated against k=1 injection-campaign grids
//! over every suite kernel, plus lint quietness on checker-accepted
//! output. Three hard gates, any failure exits nonzero:
//!
//! * a **differential mismatch** — a statically Detected/Benign cell that
//!   a grid injection drove to SDC — contradicts the analyzer's soundness
//!   claim (the static analogue of Theorem 4);
//! * an **error-severity lint** on a protected (checker-accepted) binary
//!   breaks the "lints are a strict under-approximation of the checker"
//!   contract;
//! * **SDC on a protected grid** is a Theorem 4 violation outright.
//!
//! Per kernel the table reports the static cell tally (detected / benign /
//! vulnerable) and the resulting *static coverage* — the fraction of cells
//! provably safe under a single upset — for the protected binary and the
//! unprotected baseline, next to the grid evidence.
//!
//! Usage: `cargo run --release -p talft-bench --bin lint
//!          [-- --stride N] [--json <path>] [--check <path>]
//!          [--solver-cache <path>]`
//!
//! `--stride N` (default 1 = exhaustive grid) samples every Nth step;
//! `TALFT_STRIDE_SCALE` scales it as everywhere else. `--check <path>`
//! re-validates an existing report with the dep-free JSON parser and gates
//! on the same count invariants — never on timings. `--solver-cache <path>`
//! loads/saves the persistent entailment-verdict cache around the sweep.

use std::sync::Arc;

use talft_analysis::{analyze_zaps, cross_validate, lint_program, DiffSummary, ZapReport};
use talft_bench::report::{self, Report};
use talft_compiler::{compile, CompileOptions};
use talft_core::Severity;
use talft_faultsim::{single_fault_grid, CampaignConfig, Verdict};
use talft_isa::Program;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

/// Required top-level keys of a `talft.lint.grid.v1` document.
const REQUIRED: &[&str] = &["schema", "kernels", "stride", "rows", "totals"];

/// One side (protected or baseline) of a kernel row.
struct Side {
    detected: u64,
    benign: u64,
    vulnerable: u64,
    coverage: f64,
    grid_sdc: u64,
    diff: DiffSummary,
    lint_errors: u64,
    lint_warnings: u64,
}

fn main() {
    if let Some(path) = report::arg_str("--check") {
        check_existing(&path);
        return;
    }
    let pcache = report::arg_str("--solver-cache");
    if let Some(p) = &pcache {
        let n = talft_logic::load_solver_cache(p);
        println!("# solver cache: loaded {n} entries from {p}");
    }
    let stride = report::arg("--stride").unwrap_or(1);
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 1,
        ..CampaignConfig::default()
    };
    let ks = kernels(Scale::Tiny);
    println!(
        "# E17 static fault-coverage differential ({} kernels, grid stride {})",
        ks.len(),
        cfg.effective_stride()
    );
    println!("# statically Detected/Benign cells must never score SDC in the k=1 grid");
    println!(
        "| kernel | side | cells | detected | benign | vulnerable | static cov | grid SDC | checked | mismatches |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");

    let mut failed = false;
    let mut rows = Vec::new();
    let mut totals: Vec<(&str, Side)> = vec![];
    for k in &ks {
        let c = match compile(&k.source, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        };
        let mut sides = Vec::new();
        for (side, program) in [
            ("protected", &c.protected.program),
            ("baseline", &c.baseline.program),
        ] {
            let program: Arc<Program> = Arc::new(program.as_ref().clone());
            let s = match analyze_side(&program, &cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {} ({side}): {e}", k.name);
                    std::process::exit(1);
                }
            };
            if !s.diff.holds() {
                eprintln!(
                    "DIFFERENTIAL MISMATCH: {} ({side}): {:?}",
                    k.name, s.diff.mismatches
                );
                failed = true;
            }
            if side == "protected" {
                if s.lint_errors > 0 {
                    eprintln!(
                        "LINT ERROR on checker-accepted output: {} ({} error lints)",
                        k.name, s.lint_errors
                    );
                    failed = true;
                }
                if s.grid_sdc > 0 {
                    eprintln!(
                        "THEOREM 4 VIOLATION: {} protected grid scored {} SDC",
                        k.name, s.grid_sdc
                    );
                    failed = true;
                }
            }
            print_row(k.name, side, &s);
            sides.push((side, s));
        }
        let row = Json::obj([
            ("name", Json::str(k.name)),
            ("protected", side_json(&sides[0].1)),
            ("baseline", side_json(&sides[1].1)),
        ]);
        rows.push(row);
        totals.extend(sides);
    }

    let total_for = |which: &str| -> Json {
        let mut agg = Side {
            detected: 0,
            benign: 0,
            vulnerable: 0,
            coverage: 0.0,
            grid_sdc: 0,
            diff: DiffSummary::default(),
            lint_errors: 0,
            lint_warnings: 0,
        };
        for s in totals.iter().filter(|(sd, _)| *sd == which).map(|(_, s)| s) {
            agg.detected += s.detected;
            agg.benign += s.benign;
            agg.vulnerable += s.vulnerable;
            agg.grid_sdc += s.grid_sdc;
            agg.diff.checked += s.diff.checked;
            agg.diff.plans += s.diff.plans;
            agg.diff.predicted_sdc += s.diff.predicted_sdc;
            agg.diff
                .mismatches
                .extend(s.diff.mismatches.iter().cloned());
            agg.lint_errors += s.lint_errors;
            agg.lint_warnings += s.lint_warnings;
        }
        let cells = agg.detected + agg.benign + agg.vulnerable;
        agg.coverage = if cells == 0 {
            1.0
        } else {
            (agg.detected + agg.benign) as f64 / cells as f64
        };
        side_json(&agg)
    };
    let totals_json = Json::obj([
        ("protected", total_for("protected")),
        ("baseline", total_for("baseline")),
    ]);
    report::emit(|| {
        Report::new("talft.lint.grid.v1")
            .field("kernels", Json::U64(ks.len() as u64))
            .field("stride", Json::U64(cfg.effective_stride()))
            .field("rows", Json::Array(rows.clone()))
            .field("totals", totals_json.clone())
            .build()
    });

    // All solver work is done; persist before the gate checks can exit.
    if pcache.is_some() {
        match talft_logic::save_solver_cache() {
            Ok(Some(p)) => {
                let (h, m, entries) = talft_logic::solver_cache_stats().unwrap_or((0, 0, 0));
                println!(
                    "# solver cache: saved {entries} entries to {} ({h} hits / {m} misses this run)",
                    p.display()
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot save solver cache: {e}"),
        }
    }

    if failed {
        println!("RESULT: STATIC ANALYSIS CONTRADICTED — see messages above.");
        std::process::exit(2);
    }
    println!(
        "RESULT: differential holds on all {} kernels (protected and baseline); \
         protected output is lint-clean.",
        ks.len()
    );
}

/// Lint + zap-classify + grid-validate one binary.
fn analyze_side(program: &Arc<Program>, cfg: &CampaignConfig) -> Result<Side, String> {
    let diags = lint_program(program);
    let lint_errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count() as u64;
    let lint_warnings = diags.len() as u64 - lint_errors;
    let report: ZapReport = analyze_zaps(program);
    if let Some(why) = &report.bailed {
        return Err(format!("analyzer bailed: {why}"));
    }
    let (detected, benign, vulnerable) = report.tally();
    let grid = single_fault_grid(program, cfg).map_err(|e| format!("golden run: {e}"))?;
    let diff = cross_validate(&report, &grid);
    Ok(Side {
        detected: detected as u64,
        benign: benign as u64,
        vulnerable: vulnerable as u64,
        coverage: report.coverage(),
        grid_sdc: grid.count(Verdict::Sdc) as u64,
        diff,
        lint_errors,
        lint_warnings,
    })
}

fn print_row(name: &str, side: &str, s: &Side) {
    println!(
        "| {} | {} | {} | {} | {} | {} | {:.1}% | {} | {} | **{}** |",
        name,
        side,
        s.detected + s.benign + s.vulnerable,
        s.detected,
        s.benign,
        s.vulnerable,
        100.0 * s.coverage,
        s.grid_sdc,
        s.diff.checked,
        s.diff.mismatches.len(),
    );
}

fn side_json(s: &Side) -> Json {
    Json::obj([
        ("cells", Json::U64(s.detected + s.benign + s.vulnerable)),
        ("detected", Json::U64(s.detected)),
        ("benign", Json::U64(s.benign)),
        ("vulnerable", Json::U64(s.vulnerable)),
        ("static_coverage", Json::F64(s.coverage)),
        ("grid_sdc", Json::U64(s.grid_sdc)),
        ("plans", Json::U64(s.diff.plans as u64)),
        ("checked", Json::U64(s.diff.checked as u64)),
        ("predicted_sdc", Json::U64(s.diff.predicted_sdc as u64)),
        ("mismatches", Json::U64(s.diff.mismatches.len() as u64)),
        ("lint_errors", Json::U64(s.lint_errors)),
        ("lint_warnings", Json::U64(s.lint_warnings)),
    ])
}

/// Validate an existing report: parse, check the schema contract, then gate
/// on the machine-independent count invariants. Exit 0 on success.
fn check_existing(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("lint: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    for key in REQUIRED {
        if json.get(key).is_none() {
            eprintln!("lint: {path} is missing required key {key:?}");
            std::process::exit(1);
        }
    }
    if json.get("schema").and_then(Json::as_str) != Some("talft.lint.grid.v1") {
        eprintln!("lint: {path} has an unexpected schema tag");
        std::process::exit(1);
    }
    let fail = |msg: &str| -> ! {
        eprintln!("lint: {path}: {msg}");
        std::process::exit(1);
    };
    let Some(Json::Array(rows)) = json.get("rows") else {
        fail("rows is not an array");
    };
    if rows.is_empty() {
        fail("rows is empty");
    }
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        for side in ["protected", "baseline"] {
            let s = row
                .get(side)
                .unwrap_or_else(|| fail(&format!("kernel {name} is missing side {side}")));
            let n = |key: &str| -> u64 {
                match s.get(key).and_then(Json::as_u64) {
                    Some(v) => v,
                    None => fail(&format!("kernel {name} ({side}) is missing {key}")),
                }
            };
            if n("mismatches") != 0 {
                fail(&format!(
                    "kernel {name} ({side}) reports differential mismatches"
                ));
            }
            if n("checked") == 0 {
                fail(&format!("kernel {name} ({side}) compared zero grid cells"));
            }
            if side == "protected" {
                if n("grid_sdc") != 0 {
                    fail(&format!("kernel {name}: SDC on a protected grid"));
                }
                if n("lint_errors") != 0 {
                    fail(&format!(
                        "kernel {name}: error lints on checker-accepted output"
                    ));
                }
            }
        }
    }
    println!("lint: {path} OK (schema talft.lint.grid.v1)");
}
