//! E14 / **mutation-score table**: the adversarial oracle over every suite
//! kernel. Each of the 12 catalog operators (talft-oracle) is applied at
//! every applicable site of every protected binary; every mutant runs
//! through the checker, then the `TF0xx` lint engine (talft-analysis), and
//! — if accepted by both — a k=1 fault campaign as ground truth. The
//! *killed by lint* column counts checker-accepted mutants an
//! error-severity lint rejected statically. Two hard gates:
//!
//! * any *killed-by-campaign-only* mutant (checker accepted, campaign found
//!   SDC or a broken fault-free run) is a checker soundness gap → exit 2;
//! * overall mutation score below 90% → exit 1 (the catalog is supposed to
//!   model exactly the bug class the checker exists to reject).
//!
//! Surviving (equivalent) mutants are listed individually so EXPERIMENTS.md
//! can document why each is harmless.
//!
//! Usage: `cargo run --release -p talft-bench --bin mutation
//!          [-- --kernels N] [--cap N] [--stride N] [--seed N]
//!          [--mutations N] [--threads N] [--json <path>]
//!          [--solver-cache <path>]`
//!
//! `--kernels N` limits the sweep to the first N suite kernels (CI smoke);
//! `--cap N` bounds mutants per operator per kernel (0 = exhaustive).
//! `--solver-cache <path>` persists entailment verdicts across runs — the
//! sweep re-checks near-identical mutants, so a warm cache skips most
//! Fourier–Motzkin work (E21 measures the speedup).
//! `TALFT_STRIDE_SCALE` scales the campaign stride as everywhere else.

use talft_bench::report::{self, arg, mutation_json, Report};
use talft_bench::{mutation_summary, render_mutation};
use talft_faultsim::CampaignConfig;
use talft_obs::Json;
use talft_oracle::OracleConfig;
use talft_suite::{kernels, Scale};

fn main() {
    let pcache = report::arg_str("--solver-cache");
    if let Some(p) = &pcache {
        let n = talft_logic::load_solver_cache(p);
        println!("# solver cache: loaded {n} entries from {p}");
    }
    let cap = arg("--cap").unwrap_or(0) as usize;
    let stride = arg("--stride").unwrap_or(17);
    let seed = arg("--seed").unwrap_or(0x0E14_0E14);
    let mutations = arg("--mutations").unwrap_or(1) as usize;
    let threads = arg("--threads").unwrap_or(1) as usize;
    let mut ks = kernels(Scale::Tiny);
    if let Some(n) = arg("--kernels") {
        ks.truncate(n as usize);
    }
    let cfg = OracleConfig {
        campaign: CampaignConfig {
            stride,
            seed,
            mutations_per_site: mutations.max(1),
            threads: threads.max(1),
            ..CampaignConfig::default()
        },
        max_mutants_per_op: cap,
    };
    println!(
        "# E14 mutation oracle ({} kernels, cap {}, stride {}, seed {seed:#x})",
        ks.len(),
        if cap == 0 {
            "none".into()
        } else {
            cap.to_string()
        },
        cfg.campaign.effective_stride(),
    );
    println!(
        "# checker + lint vs. k=1 campaign differential; campaign-only kills are soundness gaps"
    );
    let summary = match mutation_summary(&ks, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_mutation(&summary));
    println!();
    // All solver work is done; persist before the gate checks can exit.
    if pcache.is_some() {
        match talft_logic::save_solver_cache() {
            Ok(Some(p)) => {
                let (h, m, entries) = talft_logic::solver_cache_stats().unwrap_or((0, 0, 0));
                println!(
                    "# solver cache: saved {entries} entries to {} ({h} hits / {m} misses this run)",
                    p.display()
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: cannot save solver cache: {e}"),
        }
    }
    report::emit(|| {
        Report::new("talft.mutation.v1")
            .field("kernels", Json::U64(ks.len() as u64))
            .field("cap", Json::U64(cap as u64))
            .field("seed", Json::U64(seed))
            .field("stride", Json::U64(cfg.campaign.effective_stride()))
            .field("data", mutation_json(&summary))
            .build()
    });
    if !summary.campaign_only.is_empty() {
        for (kernel, o) in &summary.campaign_only {
            eprintln!(
                "SOUNDNESS GAP: {} @ {} on {}: {} — {:?}",
                o.op.name(),
                o.addr,
                kernel,
                o.detail,
                o.verdict
            );
        }
        println!(
            "RESULT: CHECKER SOUNDNESS GAP — {} mutant(s) killed by the campaign only.",
            summary.campaign_only.len()
        );
        std::process::exit(2);
    }
    let score = summary.score();
    if score < 0.90 {
        println!(
            "RESULT: mutation score {:.1}% below the 90% bar ({} mutants, {} survivors).",
            100.0 * score,
            summary.total(),
            summary.equivalents.len()
        );
        std::process::exit(1);
    }
    println!(
        "RESULT: mutation score {:.1}% over {} mutants; zero campaign-only kills; \
         {} equivalent survivor(s), all listed above.",
        100.0 * score,
        summary.total(),
        summary.equivalents.len()
    );
}
