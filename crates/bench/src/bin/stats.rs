//! Program-characterization table (an extension beyond the paper's figures):
//! static/dynamic sizes of both variants, code growth from the reliability
//! transformation, store-queue high-water mark (hardware store-buffer
//! sizing), and mean/max fault-detection latency.
//!
//! Usage: `cargo run --release -p talft-bench --bin stats [--json <path>]`

use talft_bench::report::{self, Report};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{run_campaign, CampaignConfig};
use talft_machine::{run, Machine};
use talft_obs::Json;
use talft_suite::{kernels, Scale};

fn main() {
    println!("# Program characterization (Tiny scale)");
    println!(
        "| benchmark | base instrs | prot instrs | growth | dyn steps | max queue | det. latency mean | max |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    let cfg = CampaignConfig {
        stride: 23,
        mutations_per_site: 2,
        ..Default::default()
    };
    let mut json_rows = Vec::new();
    for k in kernels(Scale::Tiny) {
        let c = match compile(&k.source, &CompileOptions::default()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        };
        let base_n = c.baseline.program.code_len();
        let prot_n = c.protected.program.code_len();
        let mut m = Machine::boot(std::sync::Arc::clone(&c.protected.program));
        let r = run(&mut m, 100_000_000);
        let rep = match run_campaign(&c.protected.program, &cfg) {
            Ok(rep) => rep,
            Err(e) => {
                eprintln!("error: {}: {e}", k.name);
                std::process::exit(1);
            }
        };
        println!(
            "| {} | {} | {} | {:.2}x | {} | {} | {:.1} | {} |",
            k.name,
            base_n,
            prot_n,
            prot_n as f64 / base_n as f64,
            r.steps,
            m.max_queue_depth(),
            rep.detection_latency.mean(),
            rep.detection_latency.max,
        );
        json_rows.push(Json::obj([
            ("name", Json::str(k.name)),
            ("base_instrs", Json::U64(base_n as u64)),
            ("prot_instrs", Json::U64(prot_n as u64)),
            ("growth", Json::F64(prot_n as f64 / base_n as f64)),
            ("dyn_steps", Json::U64(r.steps)),
            ("max_queue", Json::U64(m.max_queue_depth() as u64)),
            (
                "detection_latency",
                Json::obj([
                    ("mean", Json::F64(rep.detection_latency.mean())),
                    ("max", Json::U64(rep.detection_latency.max)),
                ]),
            ),
        ]));
    }
    report::emit(|| {
        Report::new("talft.stats.v1")
            .field("rows", Json::Array(json_rows))
            .build()
    });
}
