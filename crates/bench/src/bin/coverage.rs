//! E2–E4 / **Theorem validation table**: single-event-upset campaigns over
//! every benchmark. The protected binaries must show **zero** silent data
//! corruption (Theorem 4) and no stuck states (Theorem 1); the fault-free
//! runs never signal a fault (Corollary 3). The unprotected baselines show
//! real SDC under the identical campaign.
//!
//! Usage: `cargo run --release -p talft-bench --bin coverage
//!          [-- --stride N] [--stop-on-violation] [--json <path>]`
//!
//! `--stop-on-violation` short-circuits each campaign at its first
//! Theorem 4 violation (go/no-go mode; counts then cover only the
//! injections performed). `TALFT_STRIDE_SCALE` multiplies the stride.

use talft_bench::report::{self, coverage_json, Report};
use talft_bench::{coverage_row, render_coverage};
use talft_faultsim::CampaignConfig;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

fn main() {
    let stride: u64 = report::arg("--stride").unwrap_or(11);
    let stop = std::env::args().any(|a| a == "--stop-on-violation");
    let cfg = CampaignConfig {
        stride,
        mutations_per_site: 3,
        stop_on_first_violation: stop,
        ..CampaignConfig::default()
    };
    println!("# Fault-injection campaign (SEU model: reg-zap, Q-zap1, Q-zap2)");
    println!("# every dynamic step ≡ 0 mod {stride}, every site, 3 corrupted values/site");
    let mut rows = Vec::new();
    let mut all_ft = true;
    for k in kernels(Scale::Tiny) {
        match coverage_row(&k, &cfg) {
            Ok(row) => {
                all_ft &= row.protected.fault_tolerant();
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    print!("{}", render_coverage(&rows));
    println!();
    report::emit(|| {
        Report::new("talft.coverage.v1")
            .field("stride", Json::U64(stride))
            .field("fault_tolerant", Json::Bool(all_ft))
            .field("rows", coverage_json(&rows))
            .build()
    });
    if all_ft {
        println!("RESULT: all protected binaries fault-tolerant (0 SDC) — Theorem 4 holds.");
    } else {
        println!("RESULT: THEOREM 4 VIOLATION FOUND — see above.");
        std::process::exit(2);
    }
}
