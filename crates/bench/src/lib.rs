//! Shared harness code regenerating every table and figure of the paper's
//! evaluation (§5). See DESIGN.md's per-experiment index:
//!
//! * **E1 / Figure 10** — [`fig10_rows`]: per-benchmark execution time of
//!   TAL-FT (ordered) and TAL-FT-without-ordering, normalized to the
//!   unprotected baseline, plus the geometric mean (paper: 1.34× / 1.30×).
//! * **E2–E4 / Theorems** — [`coverage_row`]: exhaustive-in-sites,
//!   strided-in-time single-fault campaigns over protected and baseline
//!   binaries (protected must show zero SDC; baseline must not).
//! * **E6 / ablation** — [`width_sweep`]: the Figure 10 ratio as a function
//!   of issue width.
//! * **E14 / mutation oracle** — [`mutation_summary`]: per-operator
//!   mutation scores of the checker against the adversarial catalog, with
//!   the `k = 1` campaign as ground truth.

#![warn(missing_docs)]

pub mod report;

use talft_compiler::{compile, vir::interpret, CompileOptions, Compiled};
use talft_faultsim::{
    golden_run, multi_fault_plans, run_campaign, run_plan_campaign_batched,
    run_plan_campaign_scalar, CampaignConfig, CampaignReport,
};
use talft_oracle::{run_oracle, MutantOutcome, MutationOp, OpScore, OracleConfig};
use talft_sim::{simulate, BlockVisit, MachineModel};
use talft_suite::{Kernel, Scale};

/// Reference-run budget for timing replays.
pub const INTERP_BUDGET: u64 = 200_000_000;

/// One row of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (unprotected) cycles.
    pub base_cycles: u64,
    /// Protected cycles with the green≺blue ordering constraint.
    pub talft_cycles: u64,
    /// Protected cycles without the ordering constraint.
    pub talft_unordered_cycles: u64,
}

impl Fig10Row {
    /// `TAL-FT / baseline` (the paper's normalized execution time).
    #[must_use]
    pub fn ratio_ordered(&self) -> f64 {
        self.talft_cycles as f64 / self.base_cycles as f64
    }

    /// `TAL-FT-without-ordering / baseline`.
    #[must_use]
    pub fn ratio_unordered(&self) -> f64 {
        self.talft_unordered_cycles as f64 / self.base_cycles as f64
    }
}

/// Compile a kernel and replay its dynamic block sequence through the three
/// schedule variants.
pub fn fig10_row(kernel: &Kernel, model: &MachineModel) -> Result<Fig10Row, String> {
    let opts = CompileOptions {
        model: *model,
        ..CompileOptions::default()
    };
    let c = compile(&kernel.source, &opts).map_err(|e| format!("{}: {e}", kernel.name))?;
    let visits = reference_visits(&c)?;
    Ok(Fig10Row {
        name: kernel.name,
        base_cycles: simulate(&c.baseline.sched, &visits, model),
        talft_cycles: simulate(&c.protected.sched, &visits, model),
        talft_unordered_cycles: simulate(&c.protected_unordered_sched, &visits, model),
    })
}

/// The dynamic block-visit sequence of a compiled kernel's reference run.
pub fn reference_visits(c: &Compiled) -> Result<Vec<BlockVisit>, String> {
    let r = interpret(&c.vir, INTERP_BUDGET);
    if !r.halted {
        return Err("reference run did not halt".into());
    }
    Ok(r.visits)
}

/// All Figure 10 rows at a scale.
pub fn fig10_rows(scale: Scale, model: &MachineModel) -> Result<Vec<Fig10Row>, String> {
    talft_suite::kernels(scale)
        .iter()
        .map(|k| fig10_row(k, model))
        .collect()
}

/// Geometric mean of a ratio column.
#[must_use]
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// Render Figure 10 as a markdown table (the paper's bar chart, in rows).
#[must_use]
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "| benchmark | baseline cyc | TAL-FT cyc | TAL-FT (no order) cyc | TAL-FT | TAL-FT w/o ordering |"
    )
    .expect("write to string");
    writeln!(s, "|---|---:|---:|---:|---:|---:|").expect("write to string");
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {} | {:.3}x | {:.3}x |",
            r.name,
            r.base_cycles,
            r.talft_cycles,
            r.talft_unordered_cycles,
            r.ratio_ordered(),
            r.ratio_unordered()
        )
        .expect("write to string");
    }
    let go = geomean(&rows.iter().map(Fig10Row::ratio_ordered).collect::<Vec<_>>());
    let gu = geomean(
        &rows
            .iter()
            .map(Fig10Row::ratio_unordered)
            .collect::<Vec<_>>(),
    );
    writeln!(s, "| **geomean** | | | | **{go:.3}x** | **{gu:.3}x** |").expect("write to string");
    s
}

/// One row of the fault-coverage table (E2/E3/E4).
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Campaign over the protected binary.
    pub protected: CampaignReport,
    /// Campaign over the unprotected baseline.
    pub baseline: CampaignReport,
}

/// Run the injection campaigns for one kernel.
pub fn coverage_row(kernel: &Kernel, cfg: &CampaignConfig) -> Result<CoverageRow, String> {
    let c = compile(&kernel.source, &CompileOptions::default())
        .map_err(|e| format!("{}: {e}", kernel.name))?;
    Ok(CoverageRow {
        name: kernel.name,
        protected: run_campaign(&c.protected.program, cfg)
            .map_err(|e| format!("{} (protected): {e}", kernel.name))?,
        baseline: run_campaign(&c.baseline.program, cfg)
            .map_err(|e| format!("{} (baseline): {e}", kernel.name))?,
    })
}

/// Render the coverage table as markdown. The `CEs dropped` column counts
/// counterexamples beyond the 32-entry cap (`prot/base`), so a truncated
/// violation list is visible rather than silent.
#[must_use]
pub fn render_coverage(rows: &[CoverageRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "| benchmark | inj (prot) | masked | detected | SDC | inj (base) | SDC (base) | CEs dropped |"
    )
    .expect("write to string");
    writeln!(s, "|---|---:|---:|---:|---:|---:|---:|---:|").expect("write to string");
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {} | **{}** | {} | {} | {}/{} |",
            r.name,
            r.protected.total,
            r.protected.masked,
            r.protected.detected,
            r.protected.sdc + r.protected.other_violations,
            r.baseline.total,
            r.baseline.sdc,
            r.protected.violations_truncated,
            r.baseline.violations_truncated,
        )
        .expect("write to string");
    }
    s
}

/// One row of the k-fault boundary table (E13/E20): the protected binary
/// under a sampled `k`-fault campaign, where Theorem 4 makes no promise.
/// The same plan set is run through the batched *and* the scalar engine
/// ([`multifault_row`] fails on any report mismatch), so each row doubles
/// as an E20 timing sample of the `k ≥ 2` lane-admission path.
#[derive(Debug, Clone)]
pub struct MultifaultRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Fault multiplicity of the campaign.
    pub k: u32,
    /// Campaign over the protected binary (batched report; the scalar
    /// report is bit-identical by construction).
    pub protected: CampaignReport,
    /// Wall-clock seconds of the batched engine over the row's plan set.
    pub batched_secs: f64,
    /// Wall-clock seconds of the scalar engine over the same plans.
    pub scalar_secs: f64,
}

impl MultifaultRow {
    /// Batched-over-scalar speedup for this row's plan set.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.batched_secs <= 0.0 {
            return 1.0;
        }
        self.scalar_secs / self.batched_secs
    }
}

/// Run a sampled `k`-fault campaign over one kernel's protected binary
/// through both plan engines, timing each.
///
/// # Errors
///
/// Fails on compile/golden errors, and on a batched/scalar report
/// mismatch — verdict exactness is part of the row's contract, so a
/// disagreement poisons the whole table rather than one engine's numbers.
pub fn multifault_row(
    kernel: &Kernel,
    cfg: &CampaignConfig,
    k: u32,
) -> Result<MultifaultRow, String> {
    let c = compile(&kernel.source, &CompileOptions::default())
        .map_err(|e| format!("{}: {e}", kernel.name))?;
    let program = &c.protected.program;
    let golden = golden_run(program, cfg).map_err(|e| format!("{}: {e}", kernel.name))?;
    let plans = multi_fault_plans(program, cfg, &golden, k);
    let t0 = std::time::Instant::now();
    let batched = run_plan_campaign_batched(program, cfg, &golden, &plans);
    let batched_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let scalar = run_plan_campaign_scalar(program, cfg, &golden, &plans);
    let scalar_secs = t1.elapsed().as_secs_f64();
    if batched != scalar {
        return Err(format!(
            "{} (k={k}): batched and scalar reports diverged\nbatched: {batched:?}\nscalar:  {scalar:?}",
            kernel.name
        ));
    }
    Ok(MultifaultRow {
        name: kernel.name,
        k,
        protected: batched,
        batched_secs,
        scalar_secs,
    })
}

/// Render the k-fault boundary table as markdown. SDC here is *expected*
/// for `k ≥ 2` — it quantifies the edge of the single-event-upset model,
/// not a Theorem 4 violation — so the table leads with detection coverage.
/// The trailing columns are the E20 engine timings (plans/sec through the
/// batched and scalar engines over the identical plan set).
#[must_use]
pub fn render_multifault(rows: &[MultifaultRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "| benchmark | k | plans | masked | detected | SDC | other | coverage | batched/s | scalar/s | speedup |"
    )
    .expect("write to string");
    writeln!(s, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
        .expect("write to string");
    for r in rows {
        let rate = |secs: f64| {
            if secs > 0.0 {
                r.protected.total as f64 / secs
            } else {
                0.0
            }
        };
        writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} | {} | {:.1}% | {:.0} | {:.0} | {:.2}x |",
            r.name,
            r.k,
            r.protected.total,
            r.protected.masked,
            r.protected.detected,
            r.protected.sdc,
            r.protected.other_violations,
            100.0 * r.protected.coverage(),
            rate(r.batched_secs),
            rate(r.scalar_secs),
            r.speedup(),
        )
        .expect("write to string");
    }
    s
}

/// E14: aggregated result of the mutation-oracle sweep over a kernel set.
#[derive(Debug, Clone, Default)]
pub struct MutationSummary {
    /// Per-operator tallies, in catalog order.
    pub per_op: Vec<(MutationOp, OpScore)>,
    /// Surviving (equivalent) mutants: `(kernel, outcome)`.
    pub equivalents: Vec<(&'static str, MutantOutcome)>,
    /// Checker soundness gaps: `(kernel, outcome)` — must stay empty.
    pub campaign_only: Vec<(&'static str, MutantOutcome)>,
}

impl MutationSummary {
    /// Total mutants across all operators.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_op.iter().map(|(_, s)| s.total).sum()
    }

    /// Overall static mutation score — fraction of mutants killed by the
    /// checker or by an error-severity lint (1.0 when no mutants).
    #[must_use]
    pub fn score(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let killed: u64 = self
            .per_op
            .iter()
            .map(|(_, s)| s.killed_by_checker + s.killed_by_lint)
            .sum();
        killed as f64 / total as f64
    }
}

/// Run the E14 mutation oracle over each kernel's protected binary and
/// aggregate per operator.
pub fn mutation_summary(kernels: &[Kernel], cfg: &OracleConfig) -> Result<MutationSummary, String> {
    let mut agg: std::collections::BTreeMap<MutationOp, OpScore> =
        std::collections::BTreeMap::new();
    let mut summary = MutationSummary::default();
    for kernel in kernels {
        let mut c = compile(&kernel.source, &CompileOptions::default())
            .map_err(|e| format!("{}: {e}", kernel.name))?;
        for o in run_oracle(&c.protected.program, &mut c.protected.arena, cfg) {
            agg.entry(o.op).or_default().absorb(&o.verdict);
            if o.verdict.killed_by_campaign_only() {
                summary.campaign_only.push((kernel.name, o));
            } else if !o.verdict.killed_by_checker() && !o.verdict.killed_by_lint() {
                summary.equivalents.push((kernel.name, o));
            }
        }
    }
    // catalog order, not BTreeMap order, so the table reads like the docs
    summary.per_op = MutationOp::ALL
        .iter()
        .filter_map(|op| agg.get(op).map(|s| (*op, *s)))
        .collect();
    Ok(summary)
}

/// Render the E14 table as markdown, plus the equivalent-mutant appendix
/// (every survivor is listed — an undocumented survivor is a red flag).
#[must_use]
pub fn render_mutation(s: &MutationSummary) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "| operator | principle | mutants | killed by checker | killed by lint | campaign-only | equivalent | score |"
    )
    .expect("write to string");
    writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|").expect("write to string");
    for (op, sc) in &s.per_op {
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | **{}** | {} | {:.1}% |",
            op.name(),
            op.principle(),
            sc.total,
            sc.killed_by_checker,
            sc.killed_by_lint,
            sc.killed_by_campaign_only,
            sc.equivalent,
            100.0 * sc.score(),
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "| **overall** | | **{}** | | | **{}** | {} | **{:.1}%** |",
        s.total(),
        s.campaign_only.len(),
        s.equivalents.len(),
        100.0 * s.score(),
    )
    .expect("write to string");
    if !s.equivalents.is_empty() {
        writeln!(out, "\nEquivalent (surviving) mutants:").expect("write to string");
        for (kernel, o) in &s.equivalents {
            writeln!(
                out,
                "- `{}` @ {} on `{}`: {}",
                o.op.name(),
                o.addr,
                kernel,
                o.detail
            )
            .expect("write to string");
        }
    }
    out
}

/// E6: geomean overhead as a function of issue width.
pub fn width_sweep(scale: Scale, widths: &[u32]) -> Result<Vec<(u32, f64, f64)>, String> {
    let mut out = Vec::new();
    for &w in widths {
        let model = MachineModel {
            width: w,
            ..MachineModel::default()
        };
        let rows = fig10_rows(scale, &model)?;
        let go = geomean(&rows.iter().map(Fig10Row::ratio_ordered).collect::<Vec<_>>());
        let gu = geomean(
            &rows
                .iter()
                .map(Fig10Row::ratio_unordered)
                .collect::<Vec<_>>(),
        );
        out.push((w, go, gu));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig10_row_shape_on_one_kernel() {
        let ks = talft_suite::kernels(Scale::Tiny);
        let model = MachineModel::default();
        let row = fig10_row(&ks[0], &model).expect("row");
        // Protected code must not be faster than baseline, and the overhead
        // must be well under the naive 2×+ bound on a 6-wide machine.
        assert!(row.talft_cycles >= row.base_cycles);
        assert!(row.ratio_ordered() < 2.5, "ratio {}", row.ratio_ordered());
        assert!(row.ratio_unordered() <= row.ratio_ordered() + 1e-9);
    }

    #[test]
    fn render_includes_geomean() {
        let rows = vec![Fig10Row {
            name: "x",
            base_cycles: 100,
            talft_cycles: 130,
            talft_unordered_cycles: 125,
        }];
        let s = render_fig10(&rows);
        assert!(s.contains("geomean"));
        assert!(s.contains("1.300x"));
    }
}
