//! `talftc` exit-status contract: each failure class gets a distinct,
//! documented exit code (see the bin's module docs). These are asserted
//! end-to-end by running the real binary, since downstream scripts and the
//! CI smoke jobs branch on them.
//!
//! ```text
//!   0 success / 1 usage / 2 parse-assembly-compile / 3 type error /
//!   4 lint error / 5 Theorem 4 violation
//! ```

use std::path::PathBuf;
use std::process::{Command, Output};

fn talftc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_talftc"))
        .args(args)
        .output()
        .expect("talftc runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("talftc-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

/// A well-typed Wile program (the compiler protects it).
const OK_WILE: &str = "output out[8];\nfunc main() {\n  var i = 0;\n  \
                       while (i < 8) { out[i] = i * 3 + 1; i = i + 1; }\n}\n";

/// Unpaired blue store: assembles, but is both a lint error (TF002) and a
/// type error.
const UNPAIRED_TALFT: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, B 5
  mov r2, B 4096
  stB r2, r1
  halt
"#;

#[test]
fn exit_0_on_well_typed_program() {
    let p = write_temp("ok.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn exit_1_on_usage_error() {
    let out = talftc(&["--run"]); // no input file
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn exit_1_on_exhausted_golden_budget() {
    // A campaign whose fault-free run cannot finish is a setup failure
    // (class 1), not a campaign verdict.
    let p = write_temp("budget.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap(), "--campaign=5", "--max-steps=50"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("campaign aborted"),
        "{out:?}"
    );
}

#[test]
fn exit_2_on_assembly_error() {
    let p = write_temp("garbage.talft", ".code\nmain:\n  frobnicate r1\n");
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exit_2_on_compile_error() {
    let p = write_temp("garbage.wile", "func main( { oops");
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exit_3_on_type_error() {
    let p = write_temp("unpaired.talft", UNPAIRED_TALFT);
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("TYPE ERROR"),
        "{out:?}"
    );
}

#[test]
fn exit_4_on_lint_error_and_writes_lint_json() {
    let p = write_temp("unpaired-lint.talft", UNPAIRED_TALFT);
    let json = std::env::temp_dir().join(format!("talftc-cli-{}-lint.json", std::process::id()));
    let out = talftc(&[
        p.to_str().unwrap(),
        "--lint",
        "--no-check",
        &format!("--json={}", json.display()),
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[TF002]"), "{stderr}");
    let doc = std::fs::read_to_string(&json).expect("lint json written");
    assert!(doc.contains("\"talft.lint.v1\""), "{doc}");
    assert!(doc.contains("\"TF002\""), "{doc}");
}

#[test]
fn lint_is_quiet_on_protected_output() {
    let p = write_temp("ok-lint.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap(), "--lint"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("lint: 0 error(s)"),
        "{out:?}"
    );
}

#[test]
fn exit_5_on_theorem_4_violation() {
    // The unprotected baseline shows SDC under a k=1 campaign — the
    // single-upset model — which talftc reports as a Theorem 4 violation.
    let p = write_temp("baseline.wile", OK_WILE);
    let out = talftc(&[
        p.to_str().unwrap(),
        "--baseline",
        "--no-check",
        "--campaign=1",
    ]);
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("THEOREM 4 VIOLATION"),
        "{out:?}"
    );
}
