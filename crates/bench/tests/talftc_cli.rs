//! `talftc` exit-status contract: each failure class gets a distinct,
//! documented exit code (see the bin's module docs). These are asserted
//! end-to-end by running the real binary, since downstream scripts and the
//! CI smoke jobs branch on them.
//!
//! ```text
//!   0 success / 1 usage / 2 parse-assembly-compile / 3 type error /
//!   4 lint error / 5 Theorem 4 violation / 6 campaign interrupted
//! ```
//!
//! The `--shards` tests additionally assert the cross-process sharded
//! campaign contract: shard reports merge to the same summary line as a
//! plain whole-grid run, and an interrupted shard (SIGTERM mid-grid)
//! exits 6 with a durable checkpoint that `--resume` continues from.

use std::path::PathBuf;
use std::process::{Command, Output};

fn talftc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_talftc"))
        .args(args)
        .output()
        .expect("talftc runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("talftc-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write fixture");
    path
}

/// A well-typed Wile program (the compiler protects it).
const OK_WILE: &str = "output out[8];\nfunc main() {\n  var i = 0;\n  \
                       while (i < 8) { out[i] = i * 3 + 1; i = i + 1; }\n}\n";

/// Unpaired blue store: assembles, but is both a lint error (TF002) and a
/// type error.
const UNPAIRED_TALFT: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, B 5
  mov r2, B 4096
  stB r2, r1
  halt
"#;

#[test]
fn exit_0_on_well_typed_program() {
    let p = write_temp("ok.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn exit_1_on_usage_error() {
    let out = talftc(&["--run"]); // no input file
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn exit_6_on_exhausted_golden_budget() {
    // A campaign whose fault-free run cannot finish inside --max-steps was
    // *interrupted*, not failed: distinct class 6 with a clear remedy, so
    // callers don't conflate it with usage/I/O errors (class 1).
    let p = write_temp("budget.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap(), "--campaign=5", "--max-steps=50"]);
    assert_eq!(out.status.code(), Some(6), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("campaign interrupted"), "{out:?}");
    assert!(stderr.contains("raise --max-steps"), "{out:?}");
}

#[test]
fn exit_2_on_assembly_error() {
    let p = write_temp("garbage.talft", ".code\nmain:\n  frobnicate r1\n");
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exit_2_on_compile_error() {
    let p = write_temp("garbage.wile", "func main( { oops");
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn exit_3_on_type_error() {
    let p = write_temp("unpaired.talft", UNPAIRED_TALFT);
    let out = talftc(&[p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("TYPE ERROR"),
        "{out:?}"
    );
}

#[test]
fn exit_4_on_lint_error_and_writes_lint_json() {
    let p = write_temp("unpaired-lint.talft", UNPAIRED_TALFT);
    let json = std::env::temp_dir().join(format!("talftc-cli-{}-lint.json", std::process::id()));
    let out = talftc(&[
        p.to_str().unwrap(),
        "--lint",
        "--no-check",
        &format!("--json={}", json.display()),
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[TF002]"), "{stderr}");
    let doc = std::fs::read_to_string(&json).expect("lint json written");
    assert!(doc.contains("\"talft.lint.v1\""), "{doc}");
    assert!(doc.contains("\"TF002\""), "{doc}");
}

#[test]
fn zap_report_writes_k1_cells_and_k2_pair_summary() {
    let p = write_temp("zap.wile", OK_WILE);
    let json_path = std::env::temp_dir().join(format!("talftc-zap-{}.json", std::process::id()));
    let out = talftc(&[
        p.to_str().unwrap(),
        &format!("--zap-report={}", json_path.display()),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&json_path).expect("zap report written");
    let json = talft_obs::Json::parse(&text).expect("valid JSON");
    assert_eq!(
        json.get("schema").and_then(talft_obs::Json::as_str),
        Some("talft.zap.v1")
    );
    assert_eq!(json.get("bailed"), Some(&talft_obs::Json::Null));
    let k1 = json.get("k1").expect("k1 summary");
    let cells = k1.get("cells").and_then(talft_obs::Json::as_array);
    assert!(!cells.expect("cell array").is_empty(), "per-cell verdicts");
    let n = |j: &talft_obs::Json, key: &str| j.get(key).and_then(talft_obs::Json::as_u64).unwrap();
    assert_eq!(
        n(k1, "detected") + n(k1, "benign") + n(k1, "vulnerable"),
        cells.unwrap().len() as u64,
        "k=1 tally covers every cell"
    );
    let k2 = json.get("k2").expect("k2 pair summary");
    assert_eq!(
        n(k2, "detected") + n(k2, "benign") + n(k2, "vulnerable"),
        n(k2, "pairs"),
        "pair classes sum to the pair count"
    );
    assert!(n(k2, "pairs") > 0);
    assert!(
        n(k2, "single_vulnerable") + n(k2, "cooperative") <= n(k2, "vulnerable"),
        "the vulnerable tally covers the single-member and cooperative splits"
    );
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn lint_is_quiet_on_protected_output() {
    let p = write_temp("ok-lint.wile", OK_WILE);
    let out = talftc(&[p.to_str().unwrap(), "--lint"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("lint: 0 error(s)"),
        "{out:?}"
    );
}

/// The stderr line beginning `talftc: campaign (k=` — the verdict summary
/// both the plain and sharded paths must agree on byte for byte.
fn summary_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .find(|l| l.starts_with("talftc: campaign (k="))
        .unwrap_or_else(|| panic!("no campaign summary in {out:?}"))
        .to_owned()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("talftc-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_campaign_merges_to_the_plain_summary() {
    let p = write_temp("shards.wile", OK_WILE);
    let plain = talftc(&[
        p.to_str().unwrap(),
        "--no-check",
        "--campaign=31",
        "--threads=2",
    ]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");
    let dir = fresh_dir("shards-dir");
    let sharded = talftc(&[
        p.to_str().unwrap(),
        "--no-check",
        "--campaign=31",
        "--threads=2",
        "--shards=3",
        &format!("--checkpoint-dir={}", dir.display()),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{sharded:?}");
    assert_eq!(
        summary_line(&sharded),
        summary_line(&plain),
        "sharded merge diverged from the whole-grid campaign"
    );
    assert!(
        String::from_utf8_lossy(&sharded.stderr).contains("merged 3 shard(s)"),
        "{sharded:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_process_shards_merge_once_all_reports_exist() {
    let p = write_temp("xproc.wile", OK_WILE);
    let dir = fresh_dir("xproc-dir");
    let dir_flag = format!("--checkpoint-dir={}", dir.display());
    let base = [
        p.to_str().unwrap(),
        "--no-check",
        "--campaign=31",
        "--shards=2",
    ];
    // Shard 0 in one process: no merge yet, exit 0 with a progress note.
    let first = talftc(&[base[0], base[1], base[2], base[3], "--shard=0", &dir_flag]);
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("1/2 shard report(s)"), "{first:?}");
    assert!(!stderr.contains("campaign (k="), "must not summarize early");
    assert!(dir.join("shard-0.json").exists());
    // Shard 1 in a second process: the partition is complete, so it merges
    // and prints the same summary as a plain whole-grid run.
    let second = talftc(&[base[0], base[1], base[2], base[3], "--shard=1", &dir_flag]);
    assert_eq!(second.status.code(), Some(0), "{second:?}");
    let plain = talftc(&[p.to_str().unwrap(), "--no-check", "--campaign=31"]);
    assert_eq!(summary_line(&second), summary_line(&plain));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_6_on_sigterm_with_resumable_checkpoint() {
    use std::process::Stdio;
    let p = write_temp("interrupt.wile", OK_WILE);
    let dir = fresh_dir("interrupt-dir");
    let dir_flag = format!("--checkpoint-dir={}", dir.display());
    // stride 1 → a grid of thousands of plans; checkpoints every plan so a
    // checkpoint is durable almost immediately.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_talftc"))
        .args([
            p.to_str().unwrap(),
            "--no-check",
            "--campaign=1",
            "--shards=1",
            "--checkpoint-every=1",
            &dir_flag,
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("talftc spawns");
    let cp = dir.join("checkpoint-0.json");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let mut sent_sigterm = false;
    loop {
        if cp.exists() {
            let ok = std::process::Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("kill runs")
                .success();
            assert!(ok, "SIGTERM delivery failed");
            sent_sigterm = true;
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before the first checkpoint — nothing to interrupt
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint within 120s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let out = child.wait_with_output().expect("talftc exits");
    assert!(
        sent_sigterm,
        "grid too small to interrupt — test fixture broken"
    );
    assert_eq!(out.status.code(), Some(6), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("campaign interrupted"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");
    assert!(
        cp.exists(),
        "interrupt must leave a durable checkpoint behind"
    );
    // Resume: picks up from the checkpoint and completes with the same
    // summary as an uninterrupted whole-grid run.
    let resumed = talftc(&[
        p.to_str().unwrap(),
        "--no-check",
        "--campaign=1",
        "--shards=1",
        "--resume",
        &dir_flag,
    ]);
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("resuming shard 0/1"),
        "{resumed:?}"
    );
    let plain = talftc(&[p.to_str().unwrap(), "--no-check", "--campaign=1"]);
    assert_eq!(
        summary_line(&resumed),
        summary_line(&plain),
        "kill + --resume changed the campaign verdict"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_5_on_theorem_4_violation() {
    // The unprotected baseline shows SDC under a k=1 campaign — the
    // single-upset model — which talftc reports as a Theorem 4 violation.
    let p = write_temp("baseline.wile", OK_WILE);
    let out = talftc(&[
        p.to_str().unwrap(),
        "--baseline",
        "--no-check",
        "--campaign=1",
    ]);
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("THEOREM 4 VIOLATION"),
        "{out:?}"
    );
}
