//! Criterion bench: faulty-machine stepping throughput and fault-injection
//! campaign cost (the substrate of the E2 coverage experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{golden_run, run_campaign_against, CampaignConfig};
use talft_machine::run_program;
use talft_suite::{kernels, Scale};

fn bench_machine(c: &mut Criterion) {
    let ks = kernels(Scale::Tiny);
    let compiled = compile(&ks[0].source, &CompileOptions::default()).expect("compiles");
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    g.bench_function("run/protected", |b| {
        b.iter(|| run_program(&compiled.protected.program, 10_000_000));
    });
    let cfg = CampaignConfig { stride: 293, mutations_per_site: 1, threads: 1, ..Default::default() };
    let golden = golden_run(&compiled.protected.program, &cfg);
    g.bench_function("campaign/strided", |b| {
        b.iter(|| run_campaign_against(&compiled.protected.program, &cfg, &golden));
    });
    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
