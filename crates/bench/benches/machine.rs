//! Bench: faulty-machine stepping throughput and fault-injection campaign
//! cost (the substrate of the E2 coverage experiment). Plain `Instant`
//! harness (no registry deps).
//!
//! ```sh
//! cargo bench --bench machine
//! ```

use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{golden_run, run_campaign_against, CampaignConfig};
use talft_machine::run_program;
use talft_suite::{kernels, Scale};
use talft_testutil::{bench_ns, fmt_bench};

fn main() {
    let ks = kernels(Scale::Tiny);
    let compiled = compile(&ks[0].source, &CompileOptions::default()).expect("compiles");
    println!(
        "{}",
        fmt_bench(
            "machine/run/protected",
            bench_ns(20, || {
                run_program(&compiled.protected.program, 10_000_000);
            })
        )
    );
    let cfg = CampaignConfig {
        stride: 293,
        mutations_per_site: 1,
        threads: 1,
        ..Default::default()
    };
    let golden = golden_run(&compiled.protected.program, &cfg).expect("golden run halts");
    println!(
        "{}",
        fmt_bench(
            "machine/campaign/strided",
            bench_ns(20, || {
                let _ = run_campaign_against(&compiled.protected.program, &cfg, &golden);
            })
        )
    );
}
