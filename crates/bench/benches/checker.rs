//! Criterion bench for E7: type-checker throughput — supports the paper's
//! claim that the checker is usable "as a debugging aid within a compiler".

use criterion::{criterion_group, criterion_main, Criterion};
use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_suite::{kernels, Scale};

fn bench_checker(c: &mut Criterion) {
    let ks = kernels(Scale::Small);
    let mut g = c.benchmark_group("checker");
    g.sample_size(20);
    for k in ks.iter().take(4) {
        let compiled = compile(&k.source, &CompileOptions::default()).expect("compiles");
        g.bench_function(format!("check/{}", k.name), |b| {
            b.iter_batched(
                || (compiled.protected.program.clone(), clone_arena(&k.source)),
                |(prog, mut arena)| {
                    let _ = check_program(&prog, &mut arena);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// The checker mutates the arena (interning new normal forms), so each
/// iteration gets a fresh compile's arena.
fn clone_arena(src: &str) -> talft_logic::ExprArena {
    compile(src, &CompileOptions::default()).expect("compiles").protected.arena
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
