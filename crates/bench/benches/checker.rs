//! Bench for E7: type-checker throughput — supports the paper's claim that
//! the checker is usable "as a debugging aid within a compiler". Plain
//! `Instant` harness (no registry deps).
//!
//! ```sh
//! cargo bench --bench checker
//! ```

use talft_compiler::{compile, CompileOptions};
use talft_core::check_program;
use talft_suite::{kernels, Scale};
use talft_testutil::{bench_ns, fmt_bench};

fn main() {
    let ks = kernels(Scale::Small);
    for k in ks.iter().take(4) {
        let compiled = compile(&k.source, &CompileOptions::default()).expect("compiles");
        // The checker mutates the arena (interning new normal forms), so
        // each iteration recompiles for a fresh arena; the recompile cost is
        // reported in its own row so check time can be read by subtraction.
        let setup_ns = bench_ns(20, || {
            let _ = compile(&k.source, &CompileOptions::default()).expect("compiles");
        });
        let ns = bench_ns(20, || {
            let mut arena = compile(&k.source, &CompileOptions::default())
                .expect("compiles")
                .protected
                .arena;
            let _ = check_program(&compiled.protected.program, &mut arena);
        });
        println!(
            "{}",
            fmt_bench(&format!("checker/compile/{}", k.name), setup_ns)
        );
        println!(
            "{}",
            fmt_bench(&format!("checker/compile+check/{}", k.name), ns)
        );
    }
}
