//! Bench for E1 (Figure 10): times the full per-kernel pipeline
//! (compile → reference replay → three timing simulations) and the timing
//! simulator itself. Plain `Instant` harness (no registry deps).
//!
//! ```sh
//! cargo bench --bench fig10
//! ```

use talft_bench::{fig10_row, reference_visits};
use talft_compiler::{compile, CompileOptions};
use talft_sim::{simulate, MachineModel};
use talft_suite::{kernels, Scale};
use talft_testutil::{bench_ns, fmt_bench};

fn main() {
    let model = MachineModel::default();
    let ks = kernels(Scale::Tiny);
    println!(
        "{}",
        fmt_bench(
            "fig10/row/spec_gzip",
            bench_ns(10, || {
                fig10_row(&ks[0], &model).expect("row");
            })
        )
    );
    let compiled = compile(&ks[0].source, &CompileOptions::default()).expect("compiles");
    let visits = reference_visits(&compiled).expect("halts");
    println!(
        "{}",
        fmt_bench(
            "fig10/simulate/protected",
            bench_ns(50, || {
                let _ = simulate(&compiled.protected.sched, &visits, &model);
            })
        )
    );
    println!(
        "{}",
        fmt_bench(
            "fig10/simulate/baseline",
            bench_ns(50, || {
                let _ = simulate(&compiled.baseline.sched, &visits, &model);
            })
        )
    );
}
