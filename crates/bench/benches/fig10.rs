//! Criterion bench for E1 (Figure 10): times the full per-kernel pipeline
//! (compile → reference replay → three timing simulations) and the timing
//! simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use talft_bench::{fig10_row, reference_visits};
use talft_compiler::{compile, CompileOptions};
use talft_sim::{simulate, MachineModel};
use talft_suite::{kernels, Scale};

fn bench_fig10(c: &mut Criterion) {
    let model = MachineModel::default();
    let ks = kernels(Scale::Tiny);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("row/spec_gzip", |b| {
        b.iter(|| fig10_row(&ks[0], &model).expect("row"));
    });
    let compiled = compile(&ks[0].source, &CompileOptions::default()).expect("compiles");
    let visits = reference_visits(&compiled).expect("halts");
    g.bench_function("simulate/protected", |b| {
        b.iter(|| simulate(&compiled.protected.sched, &visits, &model));
    });
    g.bench_function("simulate/baseline", |b| {
        b.iter(|| simulate(&compiled.baseline.sched, &visits, &model));
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
