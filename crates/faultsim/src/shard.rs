//! Deterministic campaign **sharding** with durable, crash-tolerant
//! checkpoints — the multi-process execution layer under `talftd` and
//! `talftc --shards`.
//!
//! Three invariants, each load-bearing:
//!
//! 1. **Stable plan→shard mapping.** The grid is frozen in *sorted plan
//!    order* (stable sort by first-strike step — the same order
//!    [`run_plan_campaign`] reports in), and shard `i` of `N` owns the
//!    contiguous range `[i·P/N, (i+1)·P/N)` of that order. Any process that
//!    can reproduce the plan set (plans are a deterministic function of
//!    program + config + seed) reproduces the exact same partition.
//! 2. **Chunk-invariant accumulation.** A shard runs as a sequence of
//!    chunks of `checkpoint_every` plans; each chunk is a full
//!    [`run_plan_campaign`] (itself bit-identical at every thread count) and
//!    chunk reports are folded in order with the same cap-exact violation
//!    accounting the engine uses internally. The folded report is therefore
//!    **independent of chunk boundaries**: resuming from any checkpoint —
//!    even with a different `checkpoint_every` — reproduces the identical
//!    verdict stream and final report.
//! 3. **Merge proof.** [`merge_shard_reports`] recombines shard reports in
//!    shard order after checking that they cover *exactly* the partition
//!    (same grid fingerprint, same shard count, every index exactly once,
//!    every shard complete). Because shards are contiguous in sorted order,
//!    the in-order fold equals the whole-grid report **bit for bit** —
//!    the cross-process extension of the `campaignperf` differential,
//!    asserted by `tests/shard_resume.rs` on suite kernels.
//!
//! Checkpoints ([`CampaignCheckpoint`]) are schema-tagged JSON
//! (`talft.checkpoint.v1`, full-fidelity via [`crate::wire`]) written
//! atomically (temp file + rename), so a worker killed at *any* point —
//! SIGKILL included — leaves either the previous or the next checkpoint on
//! disk, never a torn one.

use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use talft_isa::Program;
use talft_machine::FaultSite;
use talft_obs::{Json, LazyCounter};

use crate::wire::{self, WireError};
use crate::{
    run_plan_campaign, CampaignConfig, CampaignReport, FaultPlan, Golden, VIOLATIONS_KEPT,
};

static SHARD_CHUNKS: LazyCounter = LazyCounter::new("faultsim.shard.chunks");
static SHARD_CHECKPOINTS: LazyCounter = LazyCounter::new("faultsim.shard.checkpoints");
static SHARD_RESUMED_PLANS: LazyCounter = LazyCounter::new("faultsim.shard.resumed_plans");

/// Default chunk size (plans between checkpoints) for shard runs.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 256;

/// One shard of an `N`-way partition of a campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Shard index, `0 ≤ index < count`.
    pub index: u32,
    /// Total shard count, `≥ 1`.
    pub count: u32,
}

impl ShardSpec {
    /// Build a spec; `None` unless `index < count` and `count ≥ 1`.
    #[must_use]
    pub fn new(index: u32, count: u32) -> Option<ShardSpec> {
        (count >= 1 && index < count).then_some(ShardSpec { index, count })
    }

    /// This shard's contiguous range of the sorted plan order: the balanced
    /// split `[i·P/N, (i+1)·P/N)` — disjoint, covering, and deterministic.
    #[must_use]
    pub fn range(&self, total_plans: usize) -> Range<usize> {
        let (i, n) = (self.index as usize, self.count as usize);
        (i * total_plans / n)..((i + 1) * total_plans / n)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// 64-bit FNV-1a, the repo's stable cross-process hash (std's `DefaultHasher`
/// is explicitly not stable across releases).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn i64(&mut self, v: i64) {
        self.u64(u64::from_le_bytes(v.to_le_bytes()));
    }

    fn site(&mut self, s: FaultSite) {
        match s {
            FaultSite::Reg(r) => {
                self.byte(1);
                for b in r.to_string().bytes() {
                    self.byte(b);
                }
            }
            FaultSite::QueueAddr(i) => {
                self.byte(2);
                self.u64(i as u64);
            }
            FaultSite::QueueVal(i) => {
                self.byte(3);
                self.u64(i as u64);
            }
        }
    }
}

/// Fingerprint of a campaign grid: golden run (steps + trace) and the full
/// plan set. Two processes agree on the fingerprint iff they derived the
/// same grid, which is what makes a checkpoint or shard report from another
/// process safe to combine with locally derived plans.
#[must_use]
pub fn grid_fingerprint(golden: &Golden, plans: &[FaultPlan]) -> u64 {
    let mut h = Fnv::new();
    h.u64(golden.steps);
    h.u64(golden.trace.len() as u64);
    for &(a, v) in &golden.trace {
        h.i64(a);
        h.i64(v);
    }
    h.u64(plans.len() as u64);
    for p in plans {
        h.u64(p.strikes.len() as u64);
        for s in &p.strikes {
            h.u64(s.at_step);
            h.site(s.site);
            h.i64(s.value);
        }
    }
    h.0
}

/// The sorted plan order shared by the engine, the shard partition, and the
/// report's violation stream: stable sort by first-strike step.
fn sorted_order(plans: &[FaultPlan]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    order
}

/// The plans of one shard, in execution (sorted) order.
#[must_use]
pub fn shard_plans(plans: &[FaultPlan], spec: ShardSpec) -> Vec<FaultPlan> {
    let order = sorted_order(plans);
    order[spec.range(plans.len())]
        .iter()
        .map(|&i| plans[i].clone())
        .collect()
}

/// A durable shard checkpoint: everything needed to resume the shard and
/// provably reproduce the identical verdict stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// [`grid_fingerprint`] of the grid this checkpoint belongs to.
    pub fingerprint: u64,
    /// Which shard of the partition.
    pub spec: ShardSpec,
    /// Total plans in this shard.
    pub shard_plans: u64,
    /// Plans completed — a *prefix* of the shard's sorted order.
    pub done: u64,
    /// The partial report over the completed prefix.
    pub report: CampaignReport,
}

impl CampaignCheckpoint {
    /// Encode as schema-tagged JSON (`talft.checkpoint.v1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("talft.checkpoint.v1")),
            ("fingerprint", Json::U64(self.fingerprint)),
            ("shard", Json::U64(u64::from(self.spec.index))),
            ("of", Json::U64(u64::from(self.spec.count))),
            ("shard_plans", Json::U64(self.shard_plans)),
            ("done", Json::U64(self.done)),
            ("report", wire::report_to_json(&self.report)),
        ])
    }

    /// Decode; inverse of [`CampaignCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the malformed key.
    pub fn from_json(j: &Json) -> Result<CampaignCheckpoint, WireError> {
        wire::expect_schema(j, "talft.checkpoint.v1")?;
        let index = u32::try_from(wire::need_u64(j, "shard")?)
            .map_err(|_| "shard index overflows u32".to_owned())?;
        let count = u32::try_from(wire::need_u64(j, "of")?)
            .map_err(|_| "shard count overflows u32".to_owned())?;
        let spec = ShardSpec::new(index, count)
            .ok_or_else(|| format!("invalid shard spec {index}/{count}"))?;
        Ok(CampaignCheckpoint {
            fingerprint: wire::need_u64(j, "fingerprint")?,
            spec,
            shard_plans: wire::need_u64(j, "shard_plans")?,
            done: wire::need_u64(j, "done")?,
            report: wire::report_from_json(wire::need(j, "report")?)?,
        })
    }

    /// Write atomically (temp file in the same directory + rename), so a
    /// crash mid-write can never leave a torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, &format!("{}\n", self.to_json()))
    }

    /// Load and decode a checkpoint file.
    ///
    /// # Errors
    ///
    /// I/O and decode failures, as a message.
    pub fn load(path: &Path) -> Result<CampaignCheckpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        CampaignCheckpoint::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Write `text` to `path` atomically: temp file in the same directory,
/// then rename (a POSIX rename replaces the target in one step).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// `observe` verdict after each checkpoint: keep going or stop gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardControl {
    /// Continue with the next chunk.
    Continue,
    /// Stop after this checkpoint (graceful interruption — SIGTERM, budget).
    Stop,
}

/// How a shard run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome {
    /// All plans of the shard executed; the shard's complete report.
    Complete(CampaignReport),
    /// Stopped at a checkpoint on `observe`'s request; resume from here.
    Interrupted(CampaignCheckpoint),
}

/// Why a shard run refused to start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `stop_on_first_violation` is inherently sequential-global; a gated
    /// campaign cannot be sharded without changing its semantics.
    GatedUnsupported,
    /// The resume checkpoint does not belong to this grid/shard.
    ResumeMismatch(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::GatedUnsupported => {
                write!(f, "stop_on_first_violation cannot be sharded")
            }
            ShardError::ResumeMismatch(why) => write!(f, "resume checkpoint rejected: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Run one shard of the grid, checkpointing every `checkpoint_every` plans
/// (0 = no intermediate checkpoints). `observe` is called with each fresh
/// checkpoint — the caller persists it and decides whether to continue —
/// and is *not* called once the shard is complete.
///
/// With `resume`, execution restarts at the checkpoint's watermark and the
/// final report is **bit-identical** to an uninterrupted run of the shard
/// (chunk-invariant accumulation; the resumed `checkpoint_every` need not
/// even match the original).
///
/// # Errors
///
/// [`ShardError::GatedUnsupported`] for gated configs;
/// [`ShardError::ResumeMismatch`] when `resume` belongs to a different
/// grid, shard, or claims an impossible watermark.
#[allow(clippy::too_many_arguments)] // the shard tuple (spec, every, resume, observe) is the API
pub fn run_shard_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    spec: ShardSpec,
    checkpoint_every: usize,
    resume: Option<&CampaignCheckpoint>,
    mut observe: impl FnMut(&CampaignCheckpoint) -> ShardControl,
) -> Result<ShardOutcome, ShardError> {
    if cfg.stop_on_first_violation {
        return Err(ShardError::GatedUnsupported);
    }
    let mine = shard_plans(plans, spec);
    let fingerprint = grid_fingerprint(golden, plans);
    let every = if checkpoint_every == 0 {
        mine.len().max(1)
    } else {
        checkpoint_every
    };
    let (mut done, mut report) = match resume {
        None => (0usize, CampaignReport::default()),
        Some(cp) => {
            if cp.fingerprint != fingerprint {
                return Err(ShardError::ResumeMismatch(format!(
                    "grid fingerprint {:016x} != checkpoint {:016x}",
                    fingerprint, cp.fingerprint
                )));
            }
            if cp.spec != spec {
                return Err(ShardError::ResumeMismatch(format!(
                    "checkpoint is for shard {}, not {spec}",
                    cp.spec
                )));
            }
            if cp.shard_plans != mine.len() as u64 || cp.done > cp.shard_plans {
                return Err(ShardError::ResumeMismatch(format!(
                    "watermark {}/{} does not fit a {}-plan shard",
                    cp.done,
                    cp.shard_plans,
                    mine.len()
                )));
            }
            if cp.report.total != cp.done {
                return Err(ShardError::ResumeMismatch(format!(
                    "partial report covers {} plans, watermark says {}",
                    cp.report.total, cp.done
                )));
            }
            SHARD_RESUMED_PLANS.add(cp.done);
            (
                usize::try_from(cp.done).expect("watermark fits usize"),
                cp.report.clone(),
            )
        }
    };
    while done < mine.len() {
        let hi = (done + every).min(mine.len());
        let chunk = run_plan_campaign(program, cfg, golden, &mine[done..hi]);
        report.merge(chunk);
        done = hi;
        SHARD_CHUNKS.inc();
        if done < mine.len() {
            let cp = CampaignCheckpoint {
                fingerprint,
                spec,
                shard_plans: mine.len() as u64,
                done: done as u64,
                report: report.clone(),
            };
            SHARD_CHECKPOINTS.inc();
            if observe(&cp) == ShardControl::Stop {
                return Ok(ShardOutcome::Interrupted(cp));
            }
        }
    }
    // An empty shard still carries the partition's fault order = 0; the
    // merge takes the max across shards, so nothing is lost.
    Ok(ShardOutcome::Complete(report))
}

/// One completed shard's report, as shipped between processes
/// (`talft.shard-report.v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPart {
    /// Which shard of the partition.
    pub spec: ShardSpec,
    /// [`grid_fingerprint`] of the grid the shard was cut from.
    pub fingerprint: u64,
    /// Plans this shard owns (must equal `report.total`).
    pub plans: u64,
    /// The shard's complete campaign report.
    pub report: CampaignReport,
}

impl ShardPart {
    /// Encode as schema-tagged JSON (`talft.shard-report.v1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("talft.shard-report.v1")),
            ("shard", Json::U64(u64::from(self.spec.index))),
            ("of", Json::U64(u64::from(self.spec.count))),
            ("fingerprint", Json::U64(self.fingerprint)),
            ("plans", Json::U64(self.plans)),
            ("report", wire::report_to_json(&self.report)),
        ])
    }

    /// Decode; inverse of [`ShardPart::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the malformed key.
    pub fn from_json(j: &Json) -> Result<ShardPart, WireError> {
        wire::expect_schema(j, "talft.shard-report.v1")?;
        let index = u32::try_from(wire::need_u64(j, "shard")?)
            .map_err(|_| "shard index overflows u32".to_owned())?;
        let count = u32::try_from(wire::need_u64(j, "of")?)
            .map_err(|_| "shard count overflows u32".to_owned())?;
        let spec = ShardSpec::new(index, count)
            .ok_or_else(|| format!("invalid shard spec {index}/{count}"))?;
        Ok(ShardPart {
            spec,
            fingerprint: wire::need_u64(j, "fingerprint")?,
            plans: wire::need_u64(j, "plans")?,
            report: wire::report_from_json(wire::need(j, "report")?)?,
        })
    }
}

/// Why a set of shard reports refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No parts given.
    Empty,
    /// Parts disagree on the shard count.
    MixedCounts,
    /// Parts disagree on the grid fingerprint — they are not shards of the
    /// same grid.
    MixedFingerprints,
    /// The same shard index appears twice.
    DuplicateShard(u32),
    /// A shard of the partition is missing (merge would silently undercount).
    MissingShard(u32),
    /// A part's report does not cover its whole shard — an unfinished
    /// checkpoint must never be merged as if complete.
    IncompleteShard {
        /// The offending shard index.
        index: u32,
        /// Plans the shard owns.
        plans: u64,
        /// Plans its report actually covers.
        covered: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::MixedCounts => write!(f, "shard reports disagree on the shard count"),
            MergeError::MixedFingerprints => {
                write!(f, "shard reports carry different grid fingerprints")
            }
            MergeError::DuplicateShard(i) => write!(f, "shard {i} reported twice"),
            MergeError::MissingShard(i) => write!(f, "shard {i} missing from the merge set"),
            MergeError::IncompleteShard {
                index,
                plans,
                covered,
            } => write!(
                f,
                "shard {index} report covers {covered} of its {plans} plans"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

fn validate_parts(parts: &[ShardPart], complete: bool) -> Result<(), MergeError> {
    let Some(first) = parts.first() else {
        return Err(MergeError::Empty);
    };
    let count = first.spec.count;
    let mut seen = vec![false; count as usize];
    for p in parts {
        if p.spec.count != count {
            return Err(MergeError::MixedCounts);
        }
        if p.fingerprint != first.fingerprint {
            return Err(MergeError::MixedFingerprints);
        }
        if std::mem::replace(&mut seen[p.spec.index as usize], true) {
            return Err(MergeError::DuplicateShard(p.spec.index));
        }
        if p.report.total != p.plans {
            return Err(MergeError::IncompleteShard {
                index: p.spec.index,
                plans: p.plans,
                covered: p.report.total,
            });
        }
    }
    if complete {
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(MergeError::MissingShard(
                u32::try_from(missing).unwrap_or(0),
            ));
        }
    }
    Ok(())
}

fn fold_in_shard_order(parts: &[ShardPart]) -> CampaignReport {
    let mut order: Vec<&ShardPart> = parts.iter().collect();
    order.sort_by_key(|p| p.spec.index);
    let mut merged = CampaignReport::default();
    for p in order {
        merged.merge(p.report.clone());
    }
    merged
}

/// Merge a **complete** partition of shard reports back into the whole-grid
/// report. Fails hard unless the parts are exactly the partition (same
/// fingerprint, same count, every shard present once and complete); the
/// result is then bit-identical to a single whole-grid
/// [`run_plan_campaign`] — the invariant `tests/shard_resume.rs` and the
/// `talftd` smoke gate assert differentially.
///
/// # Errors
///
/// [`MergeError`] describing the first partition defect found.
pub fn merge_shard_reports(parts: &[ShardPart]) -> Result<CampaignReport, MergeError> {
    validate_parts(parts, true)?;
    Ok(fold_in_shard_order(parts))
}

/// Merge the *surviving* shards of a degraded job: same checks as
/// [`merge_shard_reports`] minus completeness. Returns the partial report
/// and the number of plans it covers; the caller reports coverage as
/// `covered / total` instead of pretending the grid completed.
///
/// # Errors
///
/// [`MergeError`] on inconsistent survivors.
pub fn merge_surviving_shards(parts: &[ShardPart]) -> Result<(CampaignReport, u64), MergeError> {
    validate_parts(parts, false)?;
    let covered = parts.iter().map(|p| p.plans).sum();
    Ok((fold_in_shard_order(parts), covered))
}

/// Convenience: run every shard of an `N`-way partition in-process (no
/// checkpoints) and return the verified merge. Mostly a differential-test
/// harness; the real services drive [`run_shard_campaign`] per process.
///
/// # Errors
///
/// Propagates [`ShardError`]; merge defects are impossible by construction
/// and reported as `ResumeMismatch` if they somehow occur.
pub fn run_sharded_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    count: u32,
) -> Result<CampaignReport, ShardError> {
    let fingerprint = grid_fingerprint(golden, plans);
    let mut parts = Vec::new();
    for index in 0..count.max(1) {
        let spec = ShardSpec::new(index, count.max(1)).expect("index < count");
        let plans_in_shard = spec.range(plans.len()).len() as u64;
        match run_shard_campaign(program, cfg, golden, plans, spec, 0, None, |_| {
            ShardControl::Continue
        })? {
            ShardOutcome::Complete(report) => parts.push(ShardPart {
                spec,
                fingerprint,
                plans: plans_in_shard,
                report,
            }),
            ShardOutcome::Interrupted(_) => unreachable!("observe never stops"),
        }
    }
    merge_shard_reports(&parts)
        .map_err(|e| ShardError::ResumeMismatch(format!("internal merge failed: {e}")))
}

/// How many counterexamples a report retains before counting overflow —
/// re-exported so external validators can reason about cap-exact merges.
pub const fn violation_cap() -> usize {
    VIOLATIONS_KEPT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{golden_run, single_fault_plans, Injection, Verdict};
    use talft_isa::{assemble, Reg};

    fn arc(src: &str) -> Arc<Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    #[test]
    fn ranges_partition_exactly() {
        for total in [0usize, 1, 7, 64, 1000, 1001] {
            for count in [1u32, 2, 3, 8, 17] {
                let mut covered = 0usize;
                let mut next = 0usize;
                for i in 0..count {
                    let r = ShardSpec::new(i, count).unwrap().range(total);
                    assert_eq!(r.start, next, "gap at shard {i}/{count} of {total}");
                    next = r.end;
                    covered += r.len();
                }
                assert_eq!(next, total);
                assert_eq!(covered, total);
            }
        }
        assert!(ShardSpec::new(3, 3).is_none());
        assert!(ShardSpec::new(0, 0).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_grids() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let plans = single_fault_plans(&p, &cfg, &golden);
        let f1 = grid_fingerprint(&golden, &plans);
        assert_eq!(f1, grid_fingerprint(&golden, &plans), "deterministic");
        let fewer = &plans[..plans.len() - 1];
        assert_ne!(f1, grid_fingerprint(&golden, fewer));
    }

    #[test]
    fn checkpoint_json_roundtrips() {
        let mut report = CampaignReport::default();
        report.absorb(Injection {
            at_step: 3,
            site: FaultSite::Reg(Reg::r(1)),
            value: 9,
            followups: Vec::new(),
            verdict: Verdict::Sdc,
        });
        let cp = CampaignCheckpoint {
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            spec: ShardSpec::new(2, 4).unwrap(),
            shard_plans: 100,
            done: 1,
            report,
        };
        let text = cp.to_json().to_string();
        let back = CampaignCheckpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn checkpoint_save_load_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("talft-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint-0.json");
        let cp = CampaignCheckpoint {
            fingerprint: 7,
            spec: ShardSpec::new(0, 1).unwrap(),
            shard_plans: 10,
            done: 0,
            report: CampaignReport::default(),
        };
        cp.save(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        assert_eq!(CampaignCheckpoint::load(&path).unwrap(), cp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_run_equals_whole_grid() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let plans = single_fault_plans(&p, &cfg, &golden);
        let whole = run_plan_campaign(&p, &cfg, &golden, &plans);
        for count in [1u32, 2, 4, 8] {
            let merged = run_sharded_campaign(&p, &cfg, &golden, &plans, count).expect("runs");
            assert_eq!(merged, whole, "shard-union != whole grid at N={count}");
        }
    }

    #[test]
    fn gated_configs_are_rejected() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            stop_on_first_violation: true,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let plans = single_fault_plans(&p, &cfg, &golden);
        let err = run_shard_campaign(
            &p,
            &cfg,
            &golden,
            &plans,
            ShardSpec::new(0, 2).unwrap(),
            0,
            None,
            |_| ShardControl::Continue,
        )
        .expect_err("gated");
        assert_eq!(err, ShardError::GatedUnsupported);
    }

    #[test]
    fn resume_mismatches_are_rejected() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let plans = single_fault_plans(&p, &cfg, &golden);
        let spec = ShardSpec::new(0, 2).unwrap();
        let bogus = CampaignCheckpoint {
            fingerprint: 1234,
            spec,
            shard_plans: spec.range(plans.len()).len() as u64,
            done: 0,
            report: CampaignReport::default(),
        };
        let err = run_shard_campaign(&p, &cfg, &golden, &plans, spec, 0, Some(&bogus), |_| {
            ShardControl::Continue
        })
        .expect_err("wrong grid");
        assert!(matches!(err, ShardError::ResumeMismatch(_)));
        // Wrong shard.
        let mut wrong_shard = bogus.clone();
        wrong_shard.fingerprint = grid_fingerprint(&golden, &plans);
        wrong_shard.spec = ShardSpec::new(1, 2).unwrap();
        let err = run_shard_campaign(
            &p,
            &cfg,
            &golden,
            &plans,
            spec,
            0,
            Some(&wrong_shard),
            |_| ShardControl::Continue,
        )
        .expect_err("wrong shard");
        assert!(matches!(err, ShardError::ResumeMismatch(_)));
    }

    #[test]
    fn merge_rejects_defective_partitions() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let plans = single_fault_plans(&p, &cfg, &golden);
        let fingerprint = grid_fingerprint(&golden, &plans);
        let part = |index: u32| {
            let spec = ShardSpec::new(index, 2).unwrap();
            let ShardOutcome::Complete(report) =
                run_shard_campaign(&p, &cfg, &golden, &plans, spec, 0, None, |_| {
                    ShardControl::Continue
                })
                .unwrap()
            else {
                panic!("uninterrupted")
            };
            ShardPart {
                spec,
                fingerprint,
                plans: spec.range(plans.len()).len() as u64,
                report,
            }
        };
        let (a, b) = (part(0), part(1));
        assert!(merge_shard_reports(&[]).is_err());
        assert_eq!(
            merge_shard_reports(std::slice::from_ref(&a)),
            Err(MergeError::MissingShard(1))
        );
        assert_eq!(
            merge_shard_reports(&[a.clone(), a.clone()]),
            Err(MergeError::DuplicateShard(0))
        );
        let mut alien = b.clone();
        alien.fingerprint ^= 1;
        assert_eq!(
            merge_shard_reports(&[a.clone(), alien]),
            Err(MergeError::MixedFingerprints)
        );
        let mut short = b.clone();
        short.report.total -= 1;
        assert!(matches!(
            merge_shard_reports(&[a.clone(), short]),
            Err(MergeError::IncompleteShard { index: 1, .. })
        ));
        // Survivors merge: shard 0 alone is a valid degraded merge.
        let (partial, covered) = merge_surviving_shards(std::slice::from_ref(&a)).unwrap();
        assert_eq!(covered, a.plans);
        assert_eq!(partial.total, a.report.total);
        // And the intact partition still merges.
        assert!(merge_shard_reports(&[b, a]).is_ok());
    }
}
