//! Bit-parallel batched campaign execution (DESIGN.md §12).
//!
//! The E16 scalar engine simulates one faulty machine per plan. But on a
//! well-typed program almost every `k = 1` register fault is *masked*, and
//! register faults share a shape while masked: after `reg-zap` the faulty
//! state equals the golden state everywhere except some same-color GPR
//! payloads ([`talft_machine::inject`] preserves the color tag, and an ALU
//! result's color comes from `src2` — identical on both sides), and it
//! stays that shape — executing golden's exact action sequence — until the
//! divergence escapes the register file. The classic EDA bit-parallel
//! trick therefore applies: step **one** shared golden replay and carry up
//! to `LANES_PER_GROUP` fault lanes alongside it as a packed `Shadow`
//! of exact per-GPR deltas, paying O(affected lanes) per step instead of
//! one simulation per plan.
//!
//! Per step, `Shadow::advance` executes the replay's pending action
//! symbolically against every affected lane:
//!
//! * **ALU traffic propagates in place** — a lane reading a diverged
//!   operand recomputes the result with its own payloads (`BinOp::eval`
//!   is total, so this needs no isolation); equal results *heal* the
//!   destination, and a lane whose last delta heals is `Masked` on the
//!   spot (it re-equals golden and deterministically replays the rest);
//! * **blue compares detect instantly** — golden halted, so every blue
//!   compare-and-commit it executed succeeded; a lane bringing a diverged
//!   operand to `stB`/`jmpB`/taken-`bzB` provably faults: `Detected` at
//!   `steps + 1`, no simulation;
//! * **liveness settles the rest** — once none of a lane's diverged
//!   registers is live ([`Golden::reg_liveness`]), the remaining run
//!   replays golden verbatim and the verdict is decided by the colors of
//!   the persisting registers (`Masked`/`DissimilarState`), the same case
//!   split as the scalar engine's convergence exit. The settle scan is
//!   event-driven (dirty lanes plus holders of just-died registers), so
//!   wide groups cost O(events), not O(lanes), per step;
//! * only a divergence the packed form cannot express **demotes**: a
//!   diverged value entering the store queue (`stG`) or `d` (`jmpG`,
//!   taken/skipped `bzG`), a load from a diverged address, or an `op`
//!   writing a GPR ≥ 64. The lane's exact faulty state is reconstructed —
//!   clone the replay (CoW), re-apply the packed payloads under golden's
//!   color tags — and the scalar continuation (`resume_plan`) runs from
//!   there. Demotion at the escape boundary is exact, never lossy.
//!
//! Plans that don't fit the packed shape route to the scalar path whole:
//! multi-strike plans, non-GPR sites (`d`, the pcs, queue entries), GPR
//! indices ≥ 64 or outside the register file, strikes past golden
//! termination, and any campaign whose golden run did not halt (the scalar
//! engine's convergence exit is only exact against a halted golden).
//! Gated (`stop_on_first_violation`) campaigns never reach this module —
//! [`run_plan_campaign`](crate::run_plan_campaign) dispatches them to the
//! scalar engine.
//!
//! **Verdict exactness is the contract**: the report — counts, retained
//! violations, latency histogram, incomplete-plan accounting — is
//! bit-identical to [`run_plan_campaign_scalar`] and to
//! [`run_plan_campaign_reference`](crate::run_plan_campaign_reference) at
//! every thread count, and the batched-differential test layer
//! (`tests/batch_differential.rs`, `tests/batch_demotion.rs`) re-proves it
//! per release rather than assuming it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use talft_isa::{Color, Gpr, Instr, OpSrc, Program};
use talft_machine::{step, FaultSite, Machine, Status};
use talft_obs::{LazyCounter, LazyHistogram};

use crate::{
    advance_frontier, lead_injection, note_verdicts, resume_plan, run_isolated,
    run_plan_campaign_scalar, verdict_slot, CampaignConfig, CampaignReport, FaultPlan, Golden,
    Injection, Verdict, CAMPAIGN_NS, PLANS, WORKER_RATE,
};

static BATCH_LANES: LazyCounter = LazyCounter::new("faultsim.batch.lanes");
static BATCH_DEMOTIONS: LazyCounter = LazyCounter::new("faultsim.batch.demotions");
static BATCH_SCALAR_ROUTED: LazyCounter = LazyCounter::new("faultsim.batch.scalar_routed");
static BATCH_RATE: LazyHistogram = LazyHistogram::new("faultsim.batch.plans_per_sec");

/// Packed words per lockstep group. Wider groups amortize the shared
/// replay's *tail walk* — the stretch past the last strike where straggler
/// lanes (say, a struck loop counter reread every iteration) stay in
/// flight — over proportionally more plans, at constant per-step cost
/// (the settle scan is event-driven, not a full sweep).
const LANE_WORDS: usize = 16;
/// Lanes per lockstep group.
const LANES_PER_GROUP: usize = 64 * LANE_WORDS;
/// Positions a worker claims per fetch — one full lockstep group, so a
/// claim over adjacent strike steps shares a single replay walk.
const GROUP_CLAIM: usize = LANES_PER_GROUP;

/// A packed set of lanes within one group.
type LaneSet = [u64; LANE_WORDS];

const EMPTY_SET: LaneSet = [0; LANE_WORDS];

fn lane_set_any(s: &LaneSet) -> bool {
    s.iter().any(|&w| w != 0)
}

/// A plan admitted to the packed representation: single strike, GPR site.
struct Lane {
    /// Position in the frozen sorted order (report identity).
    pos: usize,
    /// Index into `plans`.
    idx: usize,
    /// Strike step (`≤ golden.steps`).
    at: u64,
    /// Struck GPR index (< 64, < `num_gprs`).
    gpr: u16,
    /// Corrupted payload the strike writes.
    value: i64,
}

/// One classified lane, in the same shape the scalar worker loop produces.
struct Outcome {
    pos: usize,
    idx: usize,
    verdict: Verdict,
    end_steps: u64,
    applied: usize,
}

/// Admit `plan` to the packed representation, returning its strike
/// parameters. `None` routes the whole plan to the scalar path.
fn lane_of(
    plan: &FaultPlan,
    pos: usize,
    idx: usize,
    golden: &Golden,
    num_gprs: u16,
) -> Option<Lane> {
    if golden.status != Status::Halted || golden.reg_liveness.is_empty() {
        return None;
    }
    let [strike] = plan.strikes.as_slice() else {
        return None;
    };
    let FaultSite::Reg(talft_isa::Reg::Gpr(g)) = strike.site else {
        return None;
    };
    if g.0 >= num_gprs || g.0 >= 64 || strike.at_step > golden.steps {
        return None;
    }
    Some(Lane {
        pos,
        idx,
        at: strike.at_step,
        gpr: g.0,
        value: strike.value,
    })
}

/// The bit-parallel batched campaign engine. Same contract as
/// [`run_plan_campaign_scalar`] — bit-identical reports at every thread
/// count — at a fraction of the simulated steps: `k = 1` register faults
/// ride one shared golden replay per worker as packed shadow deltas,
/// classifying at their heal, blue-compare, or liveness-settle point, and
/// only lanes whose divergence escapes the register file pay for a scalar
/// continuation. Gated configs delegate to the scalar engine.
#[must_use]
pub fn run_plan_campaign_batched(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    if cfg.stop_on_first_violation {
        return run_plan_campaign_scalar(program, cfg, golden, plans);
    }
    let _span = CAMPAIGN_NS.span();
    let num_gprs = program.num_gprs;
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let order = order; // frozen: positions in this order are the report order
    let threads = cfg.threads.max(1).min(plans.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut report = CampaignReport {
        fault_order: plans.iter().map(|p| p.order() as u32).max().unwrap_or(0),
        ..CampaignReport::default()
    };
    let mut counts: Vec<CampaignReport> = Vec::new();
    let mut violations: Vec<(usize, Injection)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let order = &order;
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut counts = CampaignReport::default();
                let mut viols: Vec<(usize, Injection)> = Vec::new();
                let worker_start = talft_obs::enabled().then(std::time::Instant::now);
                let mut executed = 0u64;
                let mut verdict_tally = [0u64; 7];
                let (mut lanes_n, mut demotions, mut scalar_n) = (0u64, 0u64, 0u64);
                let mut frontier: Option<Machine> = None;
                // One shadow per worker: `untrack` leaves it empty at group
                // end, so reuse avoids re-zeroing the payload plane.
                let mut sh = Shadow::new();
                let mut group: Vec<Lane> = Vec::with_capacity(GROUP_CLAIM);
                let mut outcomes: Vec<Outcome> = Vec::with_capacity(GROUP_CLAIM);
                loop {
                    let lo = cursor.fetch_add(GROUP_CLAIM, Ordering::Relaxed);
                    if lo >= order.len() {
                        break;
                    }
                    let hi = (lo + GROUP_CLAIM).min(order.len());
                    group.clear();
                    outcomes.clear();
                    let mut scalars: Vec<(usize, usize)> = Vec::new();
                    for (pos, &idx) in order.iter().enumerate().take(hi).skip(lo) {
                        match lane_of(&plans[idx], pos, idx, golden, num_gprs) {
                            Some(lane) => group.push(lane),
                            None => scalars.push((pos, idx)),
                        }
                    }
                    lanes_n += group.len() as u64;
                    scalar_n += scalars.len() as u64;
                    run_lockstep(
                        program,
                        cfg,
                        golden,
                        plans,
                        &group,
                        &mut frontier,
                        &mut sh,
                        &mut outcomes,
                        &mut demotions,
                    );
                    // Whole plans the packed shape cannot express run on the
                    // scalar path, same frontier, ascending strike step.
                    for (pos, idx) in scalars {
                        let plan = &plans[idx];
                        let first = plan.first_step();
                        advance_frontier(&mut frontier, first, program, cfg, golden);
                        let fr = frontier.as_ref().expect("advance_frontier populates");
                        let outcome = run_isolated(cfg.retry, || {
                            let mut faulty = fr.clone();
                            crate::execute_plan(
                                &mut faulty,
                                plan,
                                golden,
                                Some(&golden.checkpoints),
                            )
                        });
                        let (verdict, end_steps, applied) =
                            outcome.unwrap_or((Verdict::EngineError, first, 0));
                        outcomes.push(Outcome {
                            pos,
                            idx,
                            verdict,
                            end_steps,
                            applied,
                        });
                    }
                    for o in outcomes.drain(..) {
                        let plan = &plans[o.idx];
                        executed += 1;
                        verdict_tally[verdict_slot(o.verdict)] += 1;
                        if o.verdict == Verdict::Detected {
                            counts
                                .detection_latency
                                .record(o.end_steps.saturating_sub(plan.first_step()));
                        }
                        if o.verdict != Verdict::EngineError && o.applied < plan.order() {
                            counts.incomplete_plans += 1;
                        }
                        counts.absorb_counts(o.verdict);
                        if o.verdict.is_violation() {
                            viols.push((o.pos, lead_injection(plan, o.verdict)));
                        }
                    }
                }
                if let Some(start) = worker_start {
                    PLANS.add(executed);
                    note_verdicts(&verdict_tally);
                    BATCH_LANES.add(lanes_n);
                    BATCH_DEMOTIONS.add(demotions);
                    BATCH_SCALAR_ROUTED.add(scalar_n);
                    let secs = start.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let rate = (executed as f64 / secs) as u64;
                        WORKER_RATE.record(rate);
                        BATCH_RATE.record(rate);
                    }
                }
                (counts, viols)
            }));
        }
        for h in handles {
            match h.join() {
                Ok((c, v)) => {
                    counts.push(c);
                    violations.extend(v);
                }
                Err(_) => report.engine_errors += 1,
            }
        }
    });
    for c in counts {
        report.merge(c);
    }
    violations.sort_by_key(|(pos, _)| *pos);
    for (_, inj) in violations {
        report.keep(inj);
    }
    report
}

/// Packed divergence state for one lockstep group: the *exact* register
/// deltas of up to `LANES_PER_GROUP` in-flight faulty machines against
/// the shared golden replay. The invariant every transition preserves: a
/// tracked lane's faulty machine equals the replay everywhere — pcs, `d`,
/// `ir`, queue, memory, trace, status, step count — except the GPRs in
/// `by_lane[l]`, which hold the `vals` payloads under golden's color tags
/// (faults and ALU propagation never flip a color: `reg-zap` preserves the
/// tag, and an `op` result's color comes from `src2`, identical on both
/// sides).
struct Shadow {
    /// Bit `l` of `by_reg[g]`: lane `l` diverges from golden in GPR `g`.
    by_reg: [LaneSet; 64],
    /// Bit `g` of `by_lane[l]`: the same relation, transposed.
    by_lane: [u64; LANES_PER_GROUP],
    /// Faulty payload of lane `l` in GPR `g` at `l * 64 + g` (meaningful
    /// where the `by_lane` bit is set).
    vals: Vec<i64>,
    /// Lanes with a nonempty divergence set.
    tracking: LaneSet,
    /// Lanes whose divergence set changed since the last settle scan —
    /// the only lanes (beyond those holding a register that just went
    /// dead) whose settle condition can newly hold.
    dirty: LaneSet,
    /// Live mask at the previous settle scan, for dead-transition
    /// detection. `u64::MAX` conservatively marks every register as
    /// possibly-just-died.
    prev_live: u64,
}

impl Shadow {
    fn new() -> Self {
        Self {
            by_reg: [EMPTY_SET; 64],
            by_lane: [0; LANES_PER_GROUP],
            vals: vec![0; LANES_PER_GROUP * 64],
            tracking: EMPTY_SET,
            dirty: EMPTY_SET,
            prev_live: u64::MAX,
        }
    }

    /// Start tracking lane `l`, diverged in GPR `g` with payload `v`.
    fn track(&mut self, l: usize, g: u16, v: i64) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.by_reg[g as usize][w] |= b;
        self.by_lane[l] |= 1 << g;
        self.vals[l * 64 + g as usize] = v;
        self.tracking[w] |= b;
        self.dirty[w] |= b;
    }

    /// Lanes diverged in `g` (registers outside the packed window cannot
    /// diverge — strikes on them are never admitted).
    fn diverged_in(&self, g: Gpr) -> LaneSet {
        if g.0 < 64 {
            self.by_reg[g.0 as usize]
        } else {
            EMPTY_SET
        }
    }

    /// Lane `l`'s view of operand `g`, whose golden value is `golden_v`.
    fn operand(&self, l: usize, g: Gpr, golden_v: i64) -> i64 {
        if g.0 < 64 && self.by_lane[l] >> g.0 & 1 == 1 {
            self.vals[l * 64 + g.0 as usize]
        } else {
            golden_v
        }
    }

    /// Drop lane `l` from every index.
    fn untrack(&mut self, l: usize) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        let mut gs = self.by_lane[l];
        while gs != 0 {
            let g = gs.trailing_zeros() as usize;
            gs &= gs - 1;
            self.by_reg[g][w] &= !b;
        }
        self.by_lane[l] = 0;
        self.tracking[w] &= !b;
    }

    /// Record the pending action's write of GPR `g` into lane `l`: healed
    /// (both sides computed the same payload) or diverged with payload `v`.
    /// A lane whose last divergence heals re-equals golden: deterministic
    /// stepping replays golden's remainder, so it halts at `golden.steps`
    /// with golden's trace and final state — `Masked`, exactly where the
    /// scalar engine's convergence exit (`diff = 0`) or terminal
    /// `sim_some_color` lands.
    #[allow(clippy::too_many_arguments)]
    fn write(
        &mut self,
        l: usize,
        g: u16,
        diverged: bool,
        v: i64,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        let gi = g as usize;
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.dirty[w] |= b;
        if diverged {
            self.by_reg[gi][w] |= b;
            self.by_lane[l] |= 1 << gi;
            self.vals[l * 64 + gi] = v;
        } else {
            self.by_reg[gi][w] &= !b;
            self.by_lane[l] &= !(1 << gi);
            if self.by_lane[l] == 0 && self.tracking[w] & b != 0 {
                self.tracking[w] &= !b;
                out.push(Outcome {
                    pos: lanes[l].pos,
                    idx: lanes[l].idx,
                    verdict: Verdict::Masked,
                    end_steps: golden.steps,
                    applied: 1,
                });
            }
        }
    }

    /// Execute the replay's pending action symbolically against every
    /// affected lane. Returns `(detect, demote)` lane masks:
    ///
    /// * `detect` — the faulty machine provably faults executing this
    ///   action (golden halted, so its compare-and-commit succeeded; a
    ///   diverged operand fails it): `Detected` one step from now, no
    ///   simulation needed;
    /// * `demote` — the action pushes the divergence somewhere the packed
    ///   representation cannot express (store queue, `d`, a GPR ≥ 64, a
    ///   load from a diverged address) — reconstruct and run scalar;
    /// * everything else is propagated in place: ALU results diverge iff
    ///   the faulty operands evaluate differently, writes of equal values
    ///   heal, untouched lanes ride along for free.
    fn advance(
        &mut self,
        replay: &Machine,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) -> (LaneSet, LaneSet) {
        let mut detect = EMPTY_SET;
        let mut demote = EMPTY_SET;
        let Some(ins) = replay.ir().copied() else {
            // Fetch reads only the pcs, which never diverge while tracked.
            return (detect, demote);
        };
        match ins {
            Instr::Op { op, rd, rs, src2 } => {
                let a_g = replay.rval(rs.into());
                let (b_g, rt) = match src2 {
                    OpSrc::Reg(rt) => (replay.rval(rt.into()), Some(rt)),
                    OpSrc::Imm(v) => (v.val, None),
                };
                let mut readers = self.diverged_in(rs);
                if let Some(rt) = rt {
                    or_assign(&mut readers, &self.diverged_in(rt));
                }
                if rd.0 >= 64 {
                    // Result lands outside the packed register window.
                    or_assign(&mut demote, &readers);
                } else {
                    let r_g = op.eval(a_g, b_g);
                    // Lanes reading a diverged operand recompute; lanes
                    // diverged only in `rd` heal (clean operands produce
                    // golden's result on both sides).
                    or_assign(&mut readers, &self.by_reg[rd.0 as usize]);
                    for (w, &rw) in readers.iter().enumerate() {
                        let mut m = rw;
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            let a_f = self.operand(l, rs, a_g);
                            let b_f = match rt {
                                Some(rt) => self.operand(l, rt, b_g),
                                None => b_g,
                            };
                            let r_f = op.eval(a_f, b_f);
                            self.write(l, rd.0, r_f != r_g, r_f, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::Mov { rd, .. } => {
                // A colored constant overwrites both sides identically.
                if rd.0 < 64 {
                    let heals = self.by_reg[rd.0 as usize];
                    for (w, &hw) in heals.iter().enumerate() {
                        let mut m = hw;
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            self.write(l, rd.0, false, 0, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::St {
                color: Color::Green,
                rd,
                rs,
            } => {
                // A diverged address or payload enters the store queue —
                // the divergence escapes the register file.
                or_assign(&mut demote, &self.diverged_in(rd));
                or_assign(&mut demote, &self.diverged_in(rs));
            }
            Instr::St {
                color: Color::Blue,
                rd,
                rs,
            } => {
                // Golden's compare against the queued pair succeeded (it
                // halted); a diverged operand therefore mismatches:
                // `stB-mem-fail`, nothing committed, `Fault`.
                or_assign(&mut detect, &self.diverged_in(rd));
                or_assign(&mut detect, &self.diverged_in(rs));
            }
            Instr::Ld { rd, rs, .. } => {
                // A diverged address reads other memory (or the queue, or
                // trips the OOB policy) — demote. A clean address loads the
                // same value on both sides, healing `rd`.
                let bad_addr = self.diverged_in(rs);
                or_assign(&mut demote, &bad_addr);
                if rd.0 < 64 {
                    let heals = self.by_reg[rd.0 as usize];
                    for w in 0..LANE_WORDS {
                        let mut m = heals[w] & !bad_addr[w];
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            self.write(l, rd.0, false, 0, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::Jmp {
                color: Color::Green,
                rd,
            } => {
                // Golden saw `d = 0` and latches `reg(rd)`: the faulty side
                // latches its diverged target into `d` — not a GPR delta.
                or_assign(&mut demote, &self.diverged_in(rd));
            }
            Instr::Jmp {
                color: Color::Blue,
                rd,
            } => {
                // Golden committed (`d ≠ 0`, values equal); the diverged
                // target fails the compare: `jmpB-fail`.
                or_assign(&mut detect, &self.diverged_in(rd));
            }
            Instr::Bz { color, rz, rd } => {
                let z_g = replay.rval(rz.into());
                let zdiv = self.diverged_in(rz);
                if z_g != 0 {
                    // Golden falls through (with `d = 0` — it didn't
                    // fault). A lane whose condition diverged to zero takes
                    // the branch alone: bzG latches `d` (demote), bzB
                    // requires `d ≠ 0` (`bzB-taken-fail`, detect). A
                    // nonzero-but-diverged condition falls through with
                    // golden, and `rd` is unread on both sides.
                    for w in 0..LANE_WORDS {
                        let mut m = zdiv[w];
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            let b = m & m.wrapping_neg();
                            m &= m - 1;
                            if self.operand(l, rz, z_g) == 0 {
                                match color {
                                    Color::Green => demote[w] |= b,
                                    Color::Blue => detect[w] |= b,
                                }
                            }
                        }
                    }
                } else {
                    let sink = match color {
                        // Golden latches `reg(rd)` into `d`. A diverged
                        // condition (≠ 0, it differs from golden's 0) skips
                        // the latch; a diverged target latches another
                        // value — either way `d` diverges.
                        Color::Green => &mut demote,
                        // Golden commits the transfer. A diverged condition
                        // falls through against `d ≠ 0`
                        // (`bz-untaken-fail`); a diverged target fails the
                        // compare (`bzB-taken-fail`).
                        Color::Blue => &mut detect,
                    };
                    or_assign(sink, &zdiv);
                    or_assign(sink, &self.diverged_in(rd));
                }
            }
            Instr::Halt => {}
        }
        (detect, demote)
    }
}

fn or_assign(dst: &mut LaneSet, src: &LaneSet) {
    for w in 0..LANE_WORDS {
        dst[w] |= src[w];
    }
}

/// Classify a lane none of whose diverged registers golden ever reads
/// again (`by_lane & live == 0`): the faulty run replays golden's
/// remaining actions verbatim, halts at `golden.steps` with golden's
/// trace, registers golden overwrites heal, and `persist` (the rest)
/// survives to the final state. `Masked` if nothing survives or the
/// survivors are all one color (`sim-val-zap` under that color's tag),
/// `DissimilarState` otherwise — the identical case split, on the
/// identical masks and colors, as the scalar engine's
/// `convergence_verdict` and terminal `sim_some_color`.
fn settled_verdict(persist: u64, replay: &Machine) -> Verdict {
    let mut zap: Option<talft_isa::Color> = None;
    let mut bits = persist;
    while bits != 0 {
        #[allow(clippy::cast_possible_truncation)]
        let g = bits.trailing_zeros() as u16;
        bits &= bits - 1;
        let c = replay.reg(talft_isa::Reg::r(g)).color;
        if zap.is_some_and(|z| z != c) {
            return Verdict::DissimilarState;
        }
        zap = Some(c);
    }
    Verdict::Masked
}

/// Step the shared replay over a group of ≤ `LANES_PER_GROUP` lanes,
/// carrying each as an exact packed register delta: classified `Masked` at
/// its strike or settle point (O(1)), `Detected` at the blue compare its
/// divergence provably fails, healed/propagated through ALU traffic in
/// place — and demoted to the scalar continuation only when the divergence
/// escapes the register file (store queue, `d`, a diverged load address).
#[allow(clippy::too_many_arguments)]
fn run_lockstep(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    lanes: &[Lane],
    frontier: &mut Option<Machine>,
    sh: &mut Shadow,
    out: &mut Vec<Outcome>,
    demotions: &mut u64,
) {
    debug_assert!(lanes.len() <= LANES_PER_GROUP);
    debug_assert!(!lane_set_any(&sh.tracking));
    let mut i = 0usize;
    while i < lanes.len() || lane_set_any(&sh.tracking) {
        if !lane_set_any(&sh.tracking) {
            // Nothing in flight: jump the replay to the next strike through
            // the checkpoint ring instead of stepping across the gap.
            advance_frontier(frontier, lanes[i].at, program, cfg, golden);
        }
        let replay = frontier.as_mut().expect("advance_frontier populates");
        // Apply strikes due now — before the pending action executes,
        // exactly where the scalar loop injects them. An equal payload is
        // no divergence at all: the run *is* the golden run — Masked.
        while i < lanes.len() && lanes[i].at <= replay.steps() {
            let l = i;
            let lane = &lanes[i];
            i += 1;
            if lane.value == replay.reg(talft_isa::Reg::r(lane.gpr)).val {
                out.push(Outcome {
                    pos: lane.pos,
                    idx: lane.idx,
                    verdict: Verdict::Masked,
                    end_steps: golden.steps,
                    applied: 1,
                });
            } else {
                sh.track(l, lane.gpr, lane.value);
            }
        }
        if lane_set_any(&sh.tracking) {
            // Liveness settle: once none of a lane's diverged registers is
            // read before overwrite in golden's future, its verdict is
            // decided — see `settled_verdict`. This is also how strikes on
            // dead registers classify in O(1) at admission, and how the
            // stragglers classify when the replay halts (the final live
            // mask is empty). The scan is event-driven: a lane's settle
            // condition (`by_lane & live == 0`) can newly hold only if its
            // divergence set changed (`dirty`, set by `track`/`write`) or a
            // register it holds just left the live mask (`died`) — so only
            // those candidates are checked, keeping wide groups O(events)
            // per step rather than O(lanes).
            let s = usize::try_from(replay.steps()).unwrap_or(usize::MAX);
            let (live, deadwrite) = golden.reg_liveness.get(s).copied().unwrap_or((0, 0));
            let mut cand = std::mem::replace(&mut sh.dirty, EMPTY_SET);
            let mut died = sh.prev_live & !live;
            sh.prev_live = live;
            while died != 0 {
                let g = died.trailing_zeros() as usize;
                died &= died - 1;
                or_assign(&mut cand, &sh.by_reg[g]);
            }
            for (w, &cw) in cand.iter().enumerate() {
                let mut m = cw & sh.tracking[w];
                while m != 0 {
                    let l = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    if sh.by_lane[l] & live == 0 {
                        out.push(Outcome {
                            pos: lanes[l].pos,
                            idx: lanes[l].idx,
                            verdict: settled_verdict(sh.by_lane[l] & !deadwrite, replay),
                            end_steps: golden.steps,
                            applied: 1,
                        });
                        sh.untrack(l);
                    }
                }
            }
        }
        if !lane_set_any(&sh.tracking) {
            if i >= lanes.len() {
                break;
            }
            continue;
        }
        // A tracked lane has a live diverged register, so golden still
        // reads it — the replay cannot have halted.
        debug_assert!(replay.status().is_running());
        let (detect, demote) = sh.advance(replay, lanes, golden, out);
        for (w, &dw) in detect.iter().enumerate() {
            let mut hit = dw;
            while hit != 0 {
                let l = w * 64 + hit.trailing_zeros() as usize;
                hit &= hit - 1;
                // The faulting step still counts: the scalar run's fault
                // lands at `steps() + 1`, with the trace a verified golden
                // prefix.
                out.push(Outcome {
                    pos: lanes[l].pos,
                    idx: lanes[l].idx,
                    verdict: Verdict::Detected,
                    end_steps: replay.steps() + 1,
                    applied: 1,
                });
                sh.untrack(l);
            }
        }
        for (w, &dw) in demote.iter().enumerate() {
            let mut dm = dw;
            while dm != 0 {
                let l = w * 64 + dm.trailing_zeros() as usize;
                dm &= dm - 1;
                let lane = &lanes[l];
                *demotions += 1;
                // Reconstruct the exact faulty state the scalar run holds
                // here — the replay plus this lane's packed deltas, golden's
                // color tags intact — and run the scalar continuation.
                let fr: &Machine = replay;
                let sh_ref: &Shadow = &*sh;
                let outcome = run_isolated(cfg.retry, || {
                    let mut faulty = fr.clone();
                    let mut gs = sh_ref.by_lane[l];
                    while gs != 0 {
                        #[allow(clippy::cast_possible_truncation)]
                        let g = gs.trailing_zeros() as u16;
                        gs &= gs - 1;
                        let r = talft_isa::Reg::r(g);
                        let cur = faulty.reg(r);
                        faulty.set_reg(r, cur.with_val(sh_ref.vals[l * 64 + g as usize]));
                    }
                    resume_plan(
                        &mut faulty,
                        &plans[lane.idx],
                        golden,
                        Some(&golden.checkpoints),
                        1,
                        1,
                    )
                });
                let (verdict, end_steps, applied) =
                    outcome.unwrap_or((Verdict::EngineError, lane.at, 0));
                out.push(Outcome {
                    pos: lane.pos,
                    idx: lane.idx,
                    verdict,
                    end_steps,
                    applied,
                });
                sh.untrack(l);
            }
        }
        step(replay);
    }
}
