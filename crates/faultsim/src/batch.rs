//! Bit-parallel batched campaign execution (DESIGN.md §12).
//!
//! The E16 scalar engine simulates one faulty machine per plan. But on a
//! well-typed program almost every fault is *masked* or *detected*, and
//! faulty runs share a shape while undecided: after `reg-zap` / `Q-zap2`
//! the faulty state equals the golden state everywhere except a small set
//! of same-color payloads ([`talft_machine::inject`] preserves the color
//! tag, and an ALU result's color comes from `src2` — identical on both
//! sides), and it stays that shape — executing golden's exact action
//! sequence — until the divergence escapes the tracked components. The
//! classic EDA bit-parallel trick therefore applies: step **one** shared
//! golden replay and carry up to `LANES_PER_GROUP` fault lanes alongside
//! it as a packed `Shadow` of exact per-component deltas, paying
//! O(affected lanes) per step instead of one simulation per plan.
//!
//! The packed representation covers three machine components:
//!
//! * **GPR deltas** — per-lane faulty payloads under golden's color tags
//!   (`by_reg`/`by_lane`/`vals`);
//! * **the `d` latch** — a full per-lane `CVal` shadow (`ddiv`/`dvals`):
//!   a `bzG` that latched on one side only splits the *colors* while the
//!   values agree, and `sim_val` is color-aware;
//! * **store-queue entries** — per-lane `(seq, value)` and
//!   `(seq, address)` shadows over queue entries (`qdiv`/`qsh`/`qash`).
//!   Entries are named by an absolute sequence number (`qbase` = the
//!   back/oldest entry's seq) so shadows survive pushes and pops without
//!   reindexing; an `stG` reading diverged operands shadows the pushed
//!   pair componentwise, and the shadows resolve at the `stB` compare or
//!   a forwarding `ldG`.
//!
//! Per step, `Shadow::advance` executes the replay's pending action
//! symbolically against every affected lane:
//!
//! * **ALU traffic propagates in place** — a lane reading a diverged
//!   operand recomputes the result with its own payloads (`BinOp::eval`
//!   is total, so this needs no isolation); equal results *heal* the
//!   destination, and a lane whose last delta heals is `Masked` on the
//!   spot (it re-equals golden and deterministically replays the rest);
//! * **diverged values flow through the queue and `d`** — a diverged
//!   payload entering the queue via `stG`, a `bzG`/`jmpG` latching a
//!   diverged target into `d`, or a `ldG` forwarding from a shadowed
//!   queue slot just *moves* the divergence between tracked components.
//!   Even a load through a diverged *address* resolves in place: while a
//!   lane is packed its memory is bit-identical to the replay's and its
//!   queue differs only through its own shadows, so the lane's loaded
//!   value is computable exactly from the replay state (queue-forward on
//!   the shadow-corrected address/value pairs, then the replay memory at
//!   the diverged address, then the OOB policy — `Fault` detects,
//!   `Value(v)` loads the witness);
//! * **blue compares detect instantly** — golden halted, so every blue
//!   compare-and-commit it executed succeeded; a lane bringing a diverged
//!   operand, queue slot, or `d` to `stB`/`jmpB`/`bzB` provably faults:
//!   `Detected` at `steps + 1`, no simulation;
//! * **liveness settles the rest** — once none of a lane's diverged
//!   registers is live ([`Golden::reg_liveness`]), no strike is pending,
//!   and no `d`/queue shadow is held, the remaining run replays golden
//!   verbatim and the verdict is decided by the colors of the persisting
//!   registers (`Masked`/`DissimilarState`), the same case split as the
//!   scalar engine's convergence exit. The settle scan is event-driven
//!   (dirty lanes plus holders of just-died registers), so wide groups
//!   cost O(events), not O(lanes), per step;
//! * only a divergence the packed form cannot express **demotes**: the
//!   lane's exact faulty state is reconstructed — clone the replay (CoW),
//!   re-apply the packed payloads under golden's color tags, the `d`
//!   shadow, and the queue value/address shadows — and the scalar
//!   continuation (`resume_plan`) runs from there. Demotion at the
//!   escape boundary is exact, never lossy, and every demotion is
//!   attributed to a `DemoteCause` counter (`faultsim.batch.demote.*`)
//!   so the residual scalar tail stays observable:
//!   - `queue_addr` — retired: a diverged address entering the queue at
//!     `stG` is carried as an address shadow and resolved at the `stB`
//!     compare or a forwarding load; the counter stays at zero so the
//!     taxonomy and report schema remain stable;
//!   - `mem_commit` — an `stB` compare *passes* with a diverged value
//!     (the divergence escapes into memory and the output trace);
//!   - `gpr_hi` — a diverged result lands in a GPR ≥ 64, outside the
//!     packed register window;
//!   - `load_addr` — retired: diverged load addresses now resolve
//!     in-lane (see above); the counter stays at zero so the taxonomy
//!     and report schema remain stable;
//!   - `control_fork` — a lane's control transfer departs from golden's
//!     (a `jmpB`/`bzB` committing diverged pc values, or a `bz` taken on
//!     one side only);
//!   - `terminal` — the replay halted while the lane still holds a `d` or
//!     queue shadow; GPR liveness cannot classify those, so the halted
//!     faulty state is reconstructed and classified by the scalar
//!     terminal rules (no stepping — the run is already over).
//!
//! **Admission is per-strike, any `k`** (`admissible`): every strike of
//! the plan must hit a packed site — a GPR < 64 within the register file,
//! the `d` latch, or a queue slot (value *or* address) — at or before
//! golden's halt. Strikes are folded into the lane as timed events on the
//! shared replay walk, so the `k = 2` E13 grids ride the batched path
//! whenever both strikes hit packed sites. Only plans with a pc-register
//! strike (a diverged pc forks the action sequence itself) or a strike
//! past golden termination route to the scalar path whole, as does any
//! campaign whose golden run did not halt (the scalar engine's
//! convergence exit is only exact against a halted golden).
//! Gated (`stop_on_first_violation`) campaigns never reach this module —
//! [`run_plan_campaign`](crate::run_plan_campaign) dispatches them to the
//! scalar engine.
//!
//! **Verdict exactness is the contract**: the report — counts, retained
//! violations, latency histogram, incomplete-plan accounting — is
//! bit-identical to [`run_plan_campaign_scalar`] and to
//! [`run_plan_campaign_reference`](crate::run_plan_campaign_reference) at
//! every thread count, and the batched-differential test layer
//! (`tests/batch_differential.rs`, `tests/batch_demotion.rs`) re-proves it
//! per release rather than assuming it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use talft_isa::{CVal, Color, Gpr, Instr, OpSrc, Program, Reg};
use talft_machine::{step, FaultSite, Machine, OobLoadPolicy, Status};
use talft_obs::{LazyCounter, LazyHistogram};

use crate::{
    advance_frontier, lead_injection, note_verdicts, resume_plan, run_isolated,
    run_plan_campaign_scalar, verdict_slot, CampaignConfig, CampaignReport, FaultPlan, Golden,
    Injection, Verdict, CAMPAIGN_NS, PLANS, WORKER_RATE,
};

static BATCH_LANES: LazyCounter = LazyCounter::new("faultsim.batch.lanes");
static BATCH_MULTI_LANES: LazyCounter = LazyCounter::new("faultsim.batch.multi_lanes");
static BATCH_DEMOTIONS: LazyCounter = LazyCounter::new("faultsim.batch.demotions");
static BATCH_SCALAR_ROUTED: LazyCounter = LazyCounter::new("faultsim.batch.scalar_routed");
static BATCH_RATE: LazyHistogram = LazyHistogram::new("faultsim.batch.plans_per_sec");

/// Why a lane left the packed representation for the scalar continuation.
/// Indexes [`DEMOTE_COUNTERS`]; the taxonomy is documented in the module
/// doc and DESIGN.md §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum DemoteCause {
    /// Retired: a diverged *address* entering the store queue at `stG` is
    /// now carried as a per-lane address shadow and resolved at the `stB`
    /// compare (or a forwarding load) in place. Kept so the taxonomy,
    /// counter names, and report schema stay stable.
    #[allow(dead_code)]
    QueueAddr = 0,
    /// An `stB` compare passed with a diverged value — it escapes into
    /// memory and the output trace.
    MemCommit = 1,
    /// A diverged result landed in a GPR ≥ 64, outside the packed window.
    GprHi = 2,
    /// Retired: loads through diverged addresses resolve in-lane against
    /// the replay's memory/queue (bit-identical to the lane's while
    /// packed). Kept so the taxonomy, counter names, and report schema
    /// stay stable.
    #[allow(dead_code)]
    LoadAddr = 3,
    /// The lane's control transfer departed from golden's.
    ControlFork = 4,
    /// The replay halted while the lane still held a `d`/queue shadow.
    Terminal = 5,
}

const DEMOTE_CAUSES: usize = 6;

static DEMOTE_COUNTERS: [LazyCounter; DEMOTE_CAUSES] = [
    LazyCounter::new("faultsim.batch.demote.queue_addr"),
    LazyCounter::new("faultsim.batch.demote.mem_commit"),
    LazyCounter::new("faultsim.batch.demote.gpr_hi"),
    LazyCounter::new("faultsim.batch.demote.load_addr"),
    LazyCounter::new("faultsim.batch.demote.control_fork"),
    LazyCounter::new("faultsim.batch.demote.terminal"),
];

/// Packed words per lockstep group. Wider groups amortize the shared
/// replay's *tail walk* — the stretch past the last strike where straggler
/// lanes (say, a struck loop counter reread every iteration) stay in
/// flight — over proportionally more plans, at constant per-step cost
/// (the settle scan is event-driven, not a full sweep).
const LANE_WORDS: usize = 16;
/// Lanes per lockstep group.
const LANES_PER_GROUP: usize = 64 * LANE_WORDS;
/// Positions a worker claims per fetch — one full lockstep group, so a
/// claim over adjacent strike steps shares a single replay walk.
const GROUP_CLAIM: usize = LANES_PER_GROUP;

/// A packed set of lanes within one group.
type LaneSet = [u64; LANE_WORDS];

const EMPTY_SET: LaneSet = [0; LANE_WORDS];

fn lane_set_any(s: &LaneSet) -> bool {
    s.iter().any(|&w| w != 0)
}

/// A plan admitted to the packed representation. Its strikes become timed
/// [`Ev`]s on the group's shared replay walk.
struct Lane {
    /// Position in the frozen sorted order (report identity).
    pos: usize,
    /// Index into `plans`.
    idx: usize,
}

/// One strike of an admitted lane, scheduled on the shared replay walk.
/// Fired exactly when `replay.steps()` reaches `at` — the same point the
/// scalar loop injects it.
struct Ev {
    /// Strike step (`≤ golden.steps`).
    at: u64,
    /// Group-local lane index.
    l: u32,
    /// Index into the lane's `plan.strikes`.
    strike: u32,
}

/// One classified lane, in the same shape the scalar worker loop produces.
struct Outcome {
    pos: usize,
    idx: usize,
    verdict: Verdict,
    end_steps: u64,
    applied: usize,
}

/// Per-strike admission to the packed representation: every strike must
/// hit a packed site (GPR < 64 within the register file, the `d` latch, or
/// a queue slot — value *or* address) at or before golden's halt. Only pc
/// strikes route scalar: a diverged pc forks the action sequence itself,
/// which the lockstep walk cannot express. The golden-run preconditions
/// (`Halted`, liveness present) are checked once by the caller.
fn admissible(plan: &FaultPlan, golden: &Golden, num_gprs: u16) -> bool {
    !plan.strikes.is_empty()
        && plan.strikes.iter().all(|s| {
            s.at_step <= golden.steps
                && match s.site {
                    FaultSite::Reg(Reg::Gpr(g)) => g.0 < num_gprs && g.0 < 64,
                    FaultSite::Reg(Reg::Dst) => true,
                    FaultSite::QueueVal(_) | FaultSite::QueueAddr(_) => true,
                    FaultSite::Reg(Reg::Pc(_)) => false,
                }
        })
}

/// The bit-parallel batched campaign engine. Same contract as
/// [`run_plan_campaign_scalar`] — bit-identical reports at every thread
/// count — at a fraction of the simulated steps: faults on packed sites
/// (GPRs, `d`, queue values; any strike count) ride one shared golden
/// replay per worker as packed shadow deltas, classifying at their heal,
/// blue-compare, or liveness-settle point, and only lanes whose divergence
/// escapes the packed components pay for a scalar continuation. Gated
/// configs delegate to the scalar engine.
#[must_use]
pub fn run_plan_campaign_batched(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    if cfg.stop_on_first_violation
        || golden.status != Status::Halted
        || golden.reg_liveness.is_empty()
    {
        return run_plan_campaign_scalar(program, cfg, golden, plans);
    }
    let _span = CAMPAIGN_NS.span();
    let num_gprs = program.num_gprs;
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let order = order; // frozen: positions in this order are the report order
    let threads = cfg.threads.max(1).min(plans.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut report = CampaignReport {
        fault_order: plans.iter().map(|p| p.order() as u32).max().unwrap_or(0),
        ..CampaignReport::default()
    };
    let mut counts: Vec<CampaignReport> = Vec::new();
    let mut violations: Vec<(usize, Injection)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let order = &order;
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut counts = CampaignReport::default();
                let mut viols: Vec<(usize, Injection)> = Vec::new();
                let worker_start = talft_obs::enabled().then(std::time::Instant::now);
                let mut executed = 0u64;
                let mut verdict_tally = [0u64; 7];
                let (mut lanes_n, mut multi_n, mut scalar_n) = (0u64, 0u64, 0u64);
                let mut demote_tally = [0u64; DEMOTE_CAUSES];
                let mut frontier: Option<Machine> = None;
                // One shadow per worker: `untrack` leaves it empty at group
                // end, so reuse avoids re-zeroing the payload plane.
                let mut sh = Shadow::new();
                let mut group: Vec<Lane> = Vec::with_capacity(GROUP_CLAIM);
                let mut events: Vec<Ev> = Vec::with_capacity(GROUP_CLAIM);
                let mut outcomes: Vec<Outcome> = Vec::with_capacity(GROUP_CLAIM);
                loop {
                    let lo = cursor.fetch_add(GROUP_CLAIM, Ordering::Relaxed);
                    if lo >= order.len() {
                        break;
                    }
                    let hi = (lo + GROUP_CLAIM).min(order.len());
                    group.clear();
                    events.clear();
                    outcomes.clear();
                    let mut scalars: Vec<(usize, usize)> = Vec::new();
                    for (pos, &idx) in order.iter().enumerate().take(hi).skip(lo) {
                        let plan = &plans[idx];
                        if admissible(plan, golden, num_gprs) {
                            let l = group.len() as u32;
                            for (k, s) in plan.strikes.iter().enumerate() {
                                events.push(Ev {
                                    at: s.at_step,
                                    l,
                                    strike: k as u32,
                                });
                            }
                            if plan.order() >= 2 {
                                multi_n += 1;
                            }
                            group.push(Lane { pos, idx });
                        } else {
                            scalars.push((pos, idx));
                        }
                    }
                    // Stable by strike step: per-lane strike order (already
                    // ascending within a plan) is preserved at equal steps.
                    events.sort_by_key(|e| e.at);
                    lanes_n += group.len() as u64;
                    scalar_n += scalars.len() as u64;
                    run_lockstep(
                        program,
                        cfg,
                        golden,
                        plans,
                        &group,
                        &events,
                        &mut frontier,
                        &mut sh,
                        &mut outcomes,
                        &mut demote_tally,
                    );
                    // Whole plans the packed shape cannot express run on the
                    // scalar path, same frontier, ascending strike step.
                    for (pos, idx) in scalars {
                        let plan = &plans[idx];
                        let first = plan.first_step();
                        advance_frontier(&mut frontier, first, program, cfg, golden);
                        let fr = frontier.as_ref().expect("advance_frontier populates");
                        let outcome = run_isolated(cfg.retry, || {
                            let mut faulty = fr.clone();
                            crate::execute_plan(
                                &mut faulty,
                                plan,
                                golden,
                                Some(&golden.checkpoints),
                            )
                        });
                        let (verdict, end_steps, applied) =
                            outcome.unwrap_or((Verdict::EngineError, first, 0));
                        outcomes.push(Outcome {
                            pos,
                            idx,
                            verdict,
                            end_steps,
                            applied,
                        });
                    }
                    for o in outcomes.drain(..) {
                        let plan = &plans[o.idx];
                        executed += 1;
                        verdict_tally[verdict_slot(o.verdict)] += 1;
                        if o.verdict == Verdict::Detected {
                            counts
                                .detection_latency
                                .record(o.end_steps.saturating_sub(plan.first_step()));
                        }
                        if o.verdict != Verdict::EngineError && o.applied < plan.order() {
                            counts.incomplete_plans += 1;
                        }
                        counts.absorb_counts(o.verdict);
                        if o.verdict.is_violation() {
                            viols.push((o.pos, lead_injection(plan, o.verdict)));
                        }
                    }
                }
                if let Some(start) = worker_start {
                    PLANS.add(executed);
                    note_verdicts(&verdict_tally);
                    BATCH_LANES.add(lanes_n);
                    BATCH_MULTI_LANES.add(multi_n);
                    BATCH_DEMOTIONS.add(demote_tally.iter().sum());
                    for (c, &n) in DEMOTE_COUNTERS.iter().zip(&demote_tally) {
                        c.add(n);
                    }
                    BATCH_SCALAR_ROUTED.add(scalar_n);
                    let secs = start.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let rate = (executed as f64 / secs) as u64;
                        WORKER_RATE.record(rate);
                        BATCH_RATE.record(rate);
                    }
                }
                (counts, viols)
            }));
        }
        for h in handles {
            match h.join() {
                Ok((c, v)) => {
                    counts.push(c);
                    violations.extend(v);
                }
                Err(_) => report.engine_errors += 1,
            }
        }
    });
    for c in counts {
        report.merge(c);
    }
    violations.sort_by_key(|(pos, _)| *pos);
    for (_, inj) in violations {
        report.keep(inj);
    }
    report
}

/// Packed divergence state for one lockstep group: the *exact* deltas of up
/// to `LANES_PER_GROUP` in-flight faulty machines against the shared golden
/// replay. The invariant every transition preserves: a tracked lane's
/// faulty machine equals the replay everywhere — pcs, `ir`, memory, trace,
/// status, step count, queue *addresses* and depth — except:
///
/// * the GPRs in `by_lane[l]`, which hold the `vals` payloads under
///   golden's color tags (faults and ALU propagation never flip a GPR
///   color: `reg-zap` preserves the tag, and an `op` result's color comes
///   from `src2`, identical on both sides);
/// * `d`, iff bit `l` of `ddiv` is set, which holds the full `CVal` in
///   `dvals[l]` (latches *can* split the color: a `bzG` taken on one side
///   only latches a green target against a stale `d`);
/// * queue entry *values* at the `(seq, value)` pairs in `qsh[l]`
///   (addresses always agree — a diverged address demotes at `stG`).
struct Shadow {
    /// Bit `l` of `by_reg[g]`: lane `l` diverges from golden in GPR `g`.
    by_reg: [LaneSet; 64],
    /// Bit `g` of `by_lane[l]`: the same relation, transposed.
    by_lane: [u64; LANES_PER_GROUP],
    /// Faulty payload of lane `l` in GPR `g` at `l * 64 + g` (meaningful
    /// where the `by_lane` bit is set).
    vals: Vec<i64>,
    /// Lanes whose `d` latch diverges from the replay's.
    ddiv: LaneSet,
    /// Lane `l`'s faulty `d` (meaningful where the `ddiv` bit is set).
    dvals: Vec<CVal>,
    /// Lanes holding at least one queue shadow (value or address).
    qdiv: LaneSet,
    /// Lane `l`'s queue-value shadows as `(seq, faulty value)` pairs.
    /// `seq` is the absolute sequence number of the entry: the back
    /// (oldest) entry has seq `qbase`, the front `qbase + len - 1`; a
    /// `stG` push assigns `qbase + len` and an `stB` pop retires `qbase`.
    qsh: Vec<Vec<(u64, i64)>>,
    /// Lane `l`'s queue-*address* shadows, same `(seq, faulty address)`
    /// shape. A diverged address changes which entry a later `ldG`
    /// forwards from and what `stB` compares against — both are resolved
    /// per-lane against the replay queue, so the divergence stays packed.
    qash: Vec<Vec<(u64, i64)>>,
    /// Sequence number of the replay queue's back (oldest) entry.
    /// Maintained across pushes/pops while any lane is in flight; reset
    /// on frontier jumps (no shadows can be outstanding then).
    qbase: u64,
    /// Strikes of lane `l` not yet fired (`plan.order() - fired`).
    pending: Vec<u16>,
    /// Strikes of lane `l` whose injection took effect (`inject` returned
    /// true) — the scalar engine's `applied` count.
    eff: Vec<u16>,
    /// Lanes with an emitted [`Outcome`]; their remaining events are
    /// skipped.
    done: LaneSet,
    /// Demotion cause of lane `l`, recorded by `advance` when it marks the
    /// lane in the demote mask (meaningful only for those lanes).
    cause: Vec<DemoteCause>,
    /// Lanes with any live shadow (`by_lane ∪ ddiv ∪ qdiv` nonempty).
    tracking: LaneSet,
    /// Lanes whose divergence set changed since the last settle scan —
    /// the only lanes (beyond those holding a register that just went
    /// dead) whose settle condition can newly hold.
    dirty: LaneSet,
    /// Live mask at the previous settle scan, for dead-transition
    /// detection. `u64::MAX` conservatively marks every register as
    /// possibly-just-died.
    prev_live: u64,
}

impl Shadow {
    fn new() -> Self {
        Self {
            by_reg: [EMPTY_SET; 64],
            by_lane: [0; LANES_PER_GROUP],
            vals: vec![0; LANES_PER_GROUP * 64],
            ddiv: EMPTY_SET,
            dvals: vec![CVal::green(0); LANES_PER_GROUP],
            qdiv: EMPTY_SET,
            qsh: vec![Vec::new(); LANES_PER_GROUP],
            qash: vec![Vec::new(); LANES_PER_GROUP],
            qbase: 0,
            pending: vec![0; LANES_PER_GROUP],
            eff: vec![0; LANES_PER_GROUP],
            done: EMPTY_SET,
            cause: vec![DemoteCause::Terminal; LANES_PER_GROUP],
            tracking: EMPTY_SET,
            dirty: EMPTY_SET,
            prev_live: u64::MAX,
        }
    }

    fn is_done(&self, l: usize) -> bool {
        self.done[l >> 6] & (1 << (l & 63)) != 0
    }

    /// Re-derive lane `l`'s tracking bit after a shadow transition, and
    /// emit its `Masked` outcome if it just fully healed with no strike
    /// pending: the lane re-equals golden and deterministic stepping
    /// replays golden's remainder, so it halts at `golden.steps` with
    /// golden's trace and final state — exactly where the scalar engine's
    /// convergence exit (`diff = 0`) or terminal `sim_some_color` lands.
    fn resolve(&mut self, l: usize, lanes: &[Lane], golden: &Golden, out: &mut Vec<Outcome>) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        let tracked = self.by_lane[l] != 0 || self.ddiv[w] & b != 0 || self.qdiv[w] & b != 0;
        if tracked {
            self.tracking[w] |= b;
        } else {
            self.tracking[w] &= !b;
            if self.pending[l] == 0 && self.done[w] & b == 0 {
                self.done[w] |= b;
                out.push(Outcome {
                    pos: lanes[l].pos,
                    idx: lanes[l].idx,
                    verdict: Verdict::Masked,
                    end_steps: golden.steps,
                    applied: self.eff[l] as usize,
                });
            }
        }
    }

    /// Lanes diverged in `g` (registers outside the packed window cannot
    /// diverge — strikes on them are never admitted).
    fn diverged_in(&self, g: Gpr) -> LaneSet {
        if g.0 < 64 {
            self.by_reg[g.0 as usize]
        } else {
            EMPTY_SET
        }
    }

    /// Lane `l`'s view of operand `g`, whose golden value is `golden_v`.
    fn operand(&self, l: usize, g: Gpr, golden_v: i64) -> i64 {
        if g.0 < 64 && self.by_lane[l] >> g.0 & 1 == 1 {
            self.vals[l * 64 + g.0 as usize]
        } else {
            golden_v
        }
    }

    /// Lane `l`'s view of the `d` latch, whose golden value is `golden_d`.
    fn d_of(&self, l: usize, golden_d: CVal) -> CVal {
        if self.ddiv[l >> 6] & (1 << (l & 63)) != 0 {
            self.dvals[l]
        } else {
            golden_d
        }
    }

    /// Lane `l`'s view of the queue value at absolute sequence `seq`,
    /// whose golden value is `golden_v`.
    fn qval_of(&self, l: usize, seq: u64, golden_v: i64) -> i64 {
        if self.qdiv[l >> 6] & (1 << (l & 63)) != 0 {
            if let Some(&(_, v)) = self.qsh[l].iter().find(|&&(s, _)| s == seq) {
                return v;
            }
        }
        golden_v
    }

    /// Lane `l`'s view of the queue *address* at absolute sequence `seq`,
    /// whose golden address is `golden_a`.
    fn qaddr_of(&self, l: usize, seq: u64, golden_a: i64) -> i64 {
        if self.qdiv[l >> 6] & (1 << (l & 63)) != 0 {
            if let Some(&(_, a)) = self.qash[l].iter().find(|&&(s, _)| s == seq) {
                return a;
            }
        }
        golden_a
    }

    /// Whether lane `l` shadows the entry at `seq` in either component.
    fn queue_shadow_at(&self, l: usize, seq: u64) -> bool {
        self.qsh[l].iter().any(|&(s, _)| s == seq) || self.qash[l].iter().any(|&(s, _)| s == seq)
    }

    /// Drop lane `l` from every index and mark it done (an [`Outcome`]
    /// has been emitted for it; its remaining events are skipped).
    fn untrack(&mut self, l: usize) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        let mut gs = self.by_lane[l];
        while gs != 0 {
            let g = gs.trailing_zeros() as usize;
            gs &= gs - 1;
            self.by_reg[g][w] &= !b;
        }
        self.by_lane[l] = 0;
        self.ddiv[w] &= !b;
        self.qdiv[w] &= !b;
        self.qsh[l].clear();
        self.qash[l].clear();
        self.tracking[w] &= !b;
        self.done[w] |= b;
    }

    /// Record the pending action's write of GPR `g` into lane `l`: healed
    /// (both sides computed the same payload) or diverged with payload `v`.
    #[allow(clippy::too_many_arguments)]
    fn write(
        &mut self,
        l: usize,
        g: u16,
        diverged: bool,
        v: i64,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        let gi = g as usize;
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.dirty[w] |= b;
        if diverged {
            self.by_reg[gi][w] |= b;
            self.by_lane[l] |= 1 << gi;
            self.vals[l * 64 + gi] = v;
            self.tracking[w] |= b;
        } else {
            self.by_reg[gi][w] &= !b;
            self.by_lane[l] &= !(1 << gi);
            self.resolve(l, lanes, golden, out);
        }
    }

    /// Record lane `l`'s `d` latch as `lane_d` against golden's (post-
    /// action) `golden_d`: equal heals the shadow, different sets it.
    fn d_set(
        &mut self,
        l: usize,
        lane_d: CVal,
        golden_d: CVal,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.dirty[w] |= b;
        if lane_d == golden_d {
            self.ddiv[w] &= !b;
            self.resolve(l, lanes, golden, out);
        } else {
            self.ddiv[w] |= b;
            self.dvals[l] = lane_d;
            self.tracking[w] |= b;
        }
    }

    /// Record lane `l`'s queue value at `seq` as `v` against golden's
    /// `golden_v`: equal removes the shadow, different inserts/updates it.
    #[allow(clippy::too_many_arguments)]
    fn q_set(
        &mut self,
        l: usize,
        seq: u64,
        v: i64,
        golden_v: i64,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.dirty[w] |= b;
        if v == golden_v {
            self.qsh[l].retain(|&(s, _)| s != seq);
        } else {
            match self.qsh[l].iter_mut().find(|e| e.0 == seq) {
                Some(e) => e.1 = v,
                None => self.qsh[l].push((seq, v)),
            }
        }
        if self.qsh[l].is_empty() && self.qash[l].is_empty() {
            self.qdiv[w] &= !b;
            self.resolve(l, lanes, golden, out);
        } else {
            self.qdiv[w] |= b;
            self.tracking[w] |= b;
        }
    }

    /// Record lane `l`'s queue *address* at `seq` as `a` against golden's
    /// `golden_a`: equal removes the shadow, different inserts/updates it.
    #[allow(clippy::too_many_arguments)]
    fn q_addr_set(
        &mut self,
        l: usize,
        seq: u64,
        a: i64,
        golden_a: i64,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        let (w, b) = (l >> 6, 1u64 << (l & 63));
        self.dirty[w] |= b;
        if a == golden_a {
            self.qash[l].retain(|&(s, _)| s != seq);
        } else {
            match self.qash[l].iter_mut().find(|e| e.0 == seq) {
                Some(e) => e.1 = a,
                None => self.qash[l].push((seq, a)),
            }
        }
        if self.qsh[l].is_empty() && self.qash[l].is_empty() {
            self.qdiv[w] &= !b;
            self.resolve(l, lanes, golden, out);
        } else {
            self.qdiv[w] |= b;
            self.tracking[w] |= b;
        }
    }

    /// Fire one strike event on lane `l` — the exact point the scalar
    /// loop injects it. GPR and `d` strikes always take effect (`inject`
    /// on a register site is infallible and color-preserving); a queue
    /// value or address strike takes effect only if the slot exists,
    /// exactly like `inject` on a shrunken queue (the miss leaves `eff`
    /// short and the plan accounts as incomplete).
    #[allow(clippy::too_many_arguments)]
    fn apply_event(
        &mut self,
        l: usize,
        site: FaultSite,
        value: i64,
        replay: &Machine,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) {
        self.pending[l] -= 1;
        match site {
            FaultSite::Reg(Reg::Gpr(g)) => {
                self.eff[l] += 1;
                let golden_v = replay.reg(Reg::Gpr(g)).val;
                self.write(l, g.0, value != golden_v, value, lanes, golden, out);
            }
            FaultSite::Reg(Reg::Dst) => {
                self.eff[l] += 1;
                let golden_d = replay.reg(Reg::Dst);
                let lane_d = self.d_of(l, golden_d).with_val(value);
                self.d_set(l, lane_d, golden_d, lanes, golden, out);
            }
            FaultSite::QueueVal(qi) => {
                let q = replay.queue();
                if let Some(&(_, golden_v)) = q.get(qi) {
                    self.eff[l] += 1;
                    // Index 0 = front/newest; seq counts from the back.
                    let seq = self.qbase + (q.len() - 1 - qi) as u64;
                    self.q_set(l, seq, value, golden_v, lanes, golden, out);
                } else {
                    // Slot gone: `inject` would return false. The lane may
                    // have nothing else in flight — resolve it so a fully
                    // healed lane still emits its (incomplete) Masked.
                    self.resolve(l, lanes, golden, out);
                }
            }
            FaultSite::QueueAddr(qi) => {
                let q = replay.queue();
                if let Some(&(golden_a, _)) = q.get(qi) {
                    self.eff[l] += 1;
                    let seq = self.qbase + (q.len() - 1 - qi) as u64;
                    self.q_addr_set(l, seq, value, golden_a, lanes, golden, out);
                } else {
                    self.resolve(l, lanes, golden, out);
                }
            }
            FaultSite::Reg(Reg::Pc(_)) => {
                unreachable!("inadmissible site admitted to the packed path")
            }
        }
    }

    /// Execute the replay's pending action symbolically against every
    /// affected lane. Returns `(detect, demote)` lane masks:
    ///
    /// * `detect` — the faulty machine provably faults executing this
    ///   action (golden halted, so its compare-and-commit succeeded; a
    ///   diverged operand, queue slot, or `d` fails it): `Detected` one
    ///   step from now, no simulation needed;
    /// * `demote` — the action pushes the divergence somewhere the packed
    ///   representation cannot express; the lane's [`DemoteCause`] is
    ///   recorded in `cause` — reconstruct and run scalar;
    /// * everything else is propagated in place: ALU results diverge iff
    ///   the faulty operands evaluate differently, writes of equal values
    ///   heal, diverged values flow between GPRs, the queue, and `d`
    ///   without leaving the packed form, untouched lanes ride along for
    ///   free.
    ///
    /// Lanes marked in either mask are *not* otherwise mutated, so the
    /// demote reconstruction reads their exact pre-action shadows.
    fn advance(
        &mut self,
        replay: &Machine,
        oob: OobLoadPolicy,
        lanes: &[Lane],
        golden: &Golden,
        out: &mut Vec<Outcome>,
    ) -> (LaneSet, LaneSet) {
        let mut detect = EMPTY_SET;
        let mut demote = EMPTY_SET;
        let Some(ins) = replay.ir().copied() else {
            // Fetch reads only the pcs, which never diverge while tracked.
            return (detect, demote);
        };
        match ins {
            Instr::Op { op, rd, rs, src2 } => {
                let a_g = replay.rval(rs.into());
                let (b_g, rt) = match src2 {
                    OpSrc::Reg(rt) => (replay.rval(rt.into()), Some(rt)),
                    OpSrc::Imm(v) => (v.val, None),
                };
                let mut readers = self.diverged_in(rs);
                if let Some(rt) = rt {
                    or_assign(&mut readers, &self.diverged_in(rt));
                }
                if rd.0 >= 64 {
                    // Result lands outside the packed register window.
                    self.mark(&mut demote, &readers, DemoteCause::GprHi);
                } else {
                    let r_g = op.eval(a_g, b_g);
                    // Lanes reading a diverged operand recompute; lanes
                    // diverged only in `rd` heal (clean operands produce
                    // golden's result on both sides).
                    or_assign(&mut readers, &self.by_reg[rd.0 as usize]);
                    for (w, &rw) in readers.iter().enumerate() {
                        let mut m = rw;
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            let a_f = self.operand(l, rs, a_g);
                            let b_f = match rt {
                                Some(rt) => self.operand(l, rt, b_g),
                                None => b_g,
                            };
                            let r_f = op.eval(a_f, b_f);
                            self.write(l, rd.0, r_f != r_g, r_f, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::Mov { rd, .. } => {
                // A colored constant overwrites both sides identically.
                if rd.0 < 64 {
                    let heals = self.by_reg[rd.0 as usize];
                    for (w, &hw) in heals.iter().enumerate() {
                        let mut m = hw;
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            m &= m - 1;
                            self.write(l, rd.0, false, 0, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::St {
                color: Color::Green,
                rd,
                rs,
            } => {
                // The push just moves divergence into the queue: a
                // diverged *value* shadows the new front entry's value, a
                // diverged *address* its address (seq `qbase + len`), and
                // the lane rides on — later `ldG` forwarding and the `stB`
                // compare resolve both shadow components per lane.
                let a_g = replay.rval(rd.into());
                let v_g = replay.rval(rs.into());
                let seq = self.qbase + replay.queue().len() as u64;
                let mut affected = self.diverged_in(rd);
                or_assign(&mut affected, &self.diverged_in(rs));
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        m &= m - 1;
                        let a_f = self.operand(l, rd, a_g);
                        let v_f = self.operand(l, rs, v_g);
                        self.q_addr_set(l, seq, a_f, a_g, lanes, golden, out);
                        self.q_set(l, seq, v_f, v_g, lanes, golden, out);
                    }
                }
            }
            Instr::St {
                color: Color::Blue,
                rd,
                rs,
            } => {
                // Golden's compare against the back pair `(nl, nv)`
                // succeeded (it halted): `Rval(rd) = nl`, `Rval(rs) = nv`,
                // and it commits `(nl, nv)` to memory and the trace. A lane
                // sees its own `rd`/`rs` and its (possibly shadowed) back
                // pair `(nl_f, nv_f)`:
                //
                // * `rd` vs `nl_f` mismatch → the address compare fails
                //   (`stB-mem-fail`): detect;
                // * `rs` vs `nv_f` mismatch → the value compare fails:
                //   detect;
                // * both match with `(nl_f, nv_f) ≠ (nl, nv)` → the
                //   compare *passes* and commits a diverged word (or the
                //   right word at a diverged address) into memory and the
                //   output trace: demote (`mem_commit`) — the scalar
                //   continuation classifies the Sdc/detected tail exactly.
                let &(nl, nv) = replay.queue().back().expect("golden stB popped");
                let mut affected = self.diverged_in(rd);
                or_assign(&mut affected, &self.diverged_in(rs));
                // Lanes shadowing the back entry (seq = qbase).
                for (w, &qw) in self.qdiv.iter().enumerate() {
                    let mut m = qw & !affected[w];
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        if self.queue_shadow_at(l, self.qbase) {
                            affected[w] |= b;
                        }
                    }
                }
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        let rd_f = self.operand(l, rd, nl);
                        let rs_f = self.operand(l, rs, nv);
                        let nl_f = self.qaddr_of(l, self.qbase, nl);
                        let nv_f = self.qval_of(l, self.qbase, nv);
                        if rd_f == nl_f && rs_f == nv_f {
                            // Compare passes. An affected lane passing with
                            // the golden pair is contradictory (it would
                            // not be affected); the commit is diverged.
                            debug_assert!((nl_f, nv_f) != (nl, nv));
                            self.cause[l] = DemoteCause::MemCommit;
                            demote[w] |= b;
                        } else {
                            detect[w] |= b;
                        }
                    }
                }
            }
            Instr::Ld { color, rd, rs } => {
                // A load never escapes the packed form through its source:
                // while a lane is packed its memory is bit-identical to the
                // replay's (diverged commits demote at the stB), and its
                // queue differs from the replay's only through the lane's
                // own shadows — so even a diverged address resolves in
                // place. The lane's loaded value is the machine's own
                // lookup order evaluated against replay state: green
                // queue-forwards on the shadow-corrected (address, value)
                // pairs, then the replay memory at the lane's address, then
                // the OOB policy (`Fault` is an instant in-lane detect;
                // `Value(v)` loads the witness). A clean address with no
                // address shadows loads the same *source* on both sides:
                // golden's value heals `rd`, except where a green load
                // forwards from a queue slot whose value the lane shadows
                // (blue loads ignore the queue). A lane holding *address*
                // shadows takes the full per-slot scan even on a clean
                // source — its forwarding outcome may differ from golden's
                // in either direction.
                let addr_g = replay.rval(rs.into());
                let fwd_seq = match color {
                    Color::Green => replay
                        .queue_find_index(addr_g)
                        .map(|i| self.qbase + (replay.queue().len() - 1 - i) as u64),
                    Color::Blue => None,
                };
                // Golden's loaded value. Golden halted cleanly, so its own
                // lookup cannot have hit the `Fault` OOB policy.
                let v_g = if fwd_seq.is_some() {
                    replay.queue_find(addr_g).expect("forwarded slot exists").1
                } else if let Some(v) = replay.mem(addr_g) {
                    v
                } else {
                    match oob {
                        OobLoadPolicy::Value(v) => v,
                        OobLoadPolicy::Fault => unreachable!("golden halted through this load"),
                    }
                };
                let bad_addr = self.diverged_in(rs);
                let mut affected = if rd.0 < 64 {
                    self.by_reg[rd.0 as usize]
                } else {
                    EMPTY_SET
                };
                or_assign(&mut affected, &bad_addr);
                if matches!(color, Color::Green) {
                    // Value shadows matter only on the slot golden forwards
                    // from; address shadows matter on *any* slot — they can
                    // redirect the lane's forwarding hit.
                    for (w, &qw) in self.qdiv.iter().enumerate() {
                        let mut m = qw & !affected[w];
                        while m != 0 {
                            let l = w * 64 + m.trailing_zeros() as usize;
                            let b = m & m.wrapping_neg();
                            m &= m - 1;
                            let hit = !self.qash[l].is_empty()
                                || fwd_seq
                                    .is_some_and(|s| self.qsh[l].iter().any(|&(q, _)| q == s));
                            if hit {
                                affected[w] |= b;
                            }
                        }
                    }
                }
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        let a_f = self.operand(l, rs, addr_g);
                        let fast = a_f == addr_g
                            && (matches!(color, Color::Blue) || self.qash[l].is_empty());
                        let v_f = if fast {
                            match fwd_seq {
                                Some(seq) => self.qval_of(l, seq, v_g),
                                None => v_g,
                            }
                        } else {
                            // Diverged address or address-shadowed queue:
                            // the lane's own lookup, over state provably
                            // shared with the replay up to its shadows.
                            // Newest-first (front = index 0), each slot
                            // read through the lane's shadow pair.
                            let lane_fwd =
                                match color {
                                    Color::Green => {
                                        let len = replay.queue().len();
                                        replay.queue().iter().enumerate().find_map(
                                            |(i, &(qa, qv))| {
                                                let seq = self.qbase + (len - 1 - i) as u64;
                                                (self.qaddr_of(l, seq, qa) == a_f)
                                                    .then(|| self.qval_of(l, seq, qv))
                                            },
                                        )
                                    }
                                    Color::Blue => None,
                                };
                            if let Some(v) = lane_fwd {
                                v
                            } else if let Some(v) = replay.mem(a_f) {
                                v
                            } else {
                                match oob {
                                    OobLoadPolicy::Fault => {
                                        // `ld*-fail`: the lane faults here.
                                        detect[w] |= b;
                                        continue;
                                    }
                                    OobLoadPolicy::Value(v) => v,
                                }
                            }
                        };
                        let diverged = v_f != v_g;
                        if diverged && rd.0 >= 64 {
                            self.cause[l] = DemoteCause::GprHi;
                            demote[w] |= b;
                        } else if rd.0 < 64 {
                            self.write(l, rd.0, diverged, v_f, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::Jmp {
                color: Color::Green,
                rd,
            } => {
                // Golden saw `Dval = 0` and latches `reg(rd)` into `d`. A
                // lane with a nonzero `d` value faults (`jmpG-fail`);
                // otherwise it latches its own view of `reg(rd)` — the
                // divergence moves from the GPR into the `d` shadow (and
                // heals if `rd` is clean and only `d`'s color had split).
                let golden_d = replay.reg(Reg::Dst);
                let golden_new = replay.reg(rd.into());
                let mut affected = self.diverged_in(rd);
                or_assign(&mut affected, &self.ddiv);
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        if self.d_of(l, golden_d).val != 0 {
                            detect[w] |= b;
                        } else {
                            let lane_new = golden_new.with_val(self.operand(l, rd, golden_new.val));
                            self.d_set(l, lane_new, golden_new, lanes, golden, out);
                        }
                    }
                }
            }
            Instr::Jmp {
                color: Color::Blue,
                rd,
            } => {
                // Golden committed (`Dval ≠ 0`, `Rval(rd) = Dval`) and
                // moved `d`/`reg(rd)` into the pcs. A lane failing its own
                // compare faults (`jmpB-fail`): detect. A lane *passing*
                // with any divergence left commits diverged pc `CVal`s —
                // control forks (an affected lane cannot pass with
                // golden's exact values): demote.
                let golden_d = replay.reg(Reg::Dst);
                let mut affected = self.diverged_in(rd);
                or_assign(&mut affected, &self.ddiv);
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        let d_f = self.d_of(l, golden_d);
                        let rd_f = self.operand(l, rd, replay.rval(rd.into()));
                        if d_f.val != 0 && rd_f == d_f.val {
                            self.cause[l] = DemoteCause::ControlFork;
                            demote[w] |= b;
                        } else {
                            detect[w] |= b;
                        }
                    }
                }
            }
            Instr::Bz { color, rz, rd } => {
                let z_g = replay.rval(rz.into());
                let golden_d = replay.reg(Reg::Dst);
                let mut affected = self.diverged_in(rz);
                or_assign(&mut affected, &self.ddiv);
                // `rd` is read only on the taken path; golden reads it iff
                // `z_g = 0`, and a lane with clean `z` follows golden.
                if z_g == 0 {
                    or_assign(&mut affected, &self.diverged_in(rd));
                }
                for (w, &aw) in affected.iter().enumerate() {
                    let mut m = aw;
                    while m != 0 {
                        let l = w * 64 + m.trailing_zeros() as usize;
                        let b = m & m.wrapping_neg();
                        m &= m - 1;
                        let z_f = self.operand(l, rz, z_g);
                        let d_f = self.d_of(l, golden_d);
                        if z_f != 0 {
                            // Lane falls through (`bz-untaken`), needing
                            // `Dval = 0`.
                            if d_f.val != 0 {
                                detect[w] |= b;
                            } else if z_g == 0 {
                                match color {
                                    // Golden latches `reg(rd)`; the lane
                                    // keeps its `d`. No control transfer
                                    // on either side — the divergence
                                    // lands in the `d` shadow.
                                    Color::Green => {
                                        let golden_new = replay.reg(rd.into());
                                        self.d_set(l, d_f, golden_new, lanes, golden, out);
                                    }
                                    // Golden transfers; the lane falls
                                    // through alone.
                                    Color::Blue => {
                                        self.cause[l] = DemoteCause::ControlFork;
                                        demote[w] |= b;
                                    }
                                }
                            }
                            // Both untaken: no-op, shadows persist.
                        } else {
                            // Lane takes the branch.
                            match color {
                                Color::Green => {
                                    // `bzG-taken` needs `Dval = 0`, then
                                    // latches `reg(rd)` into `d`; no
                                    // transfer on either side.
                                    if d_f.val != 0 {
                                        detect[w] |= b;
                                    } else {
                                        let rd_g = replay.reg(rd.into());
                                        let lane_new = rd_g.with_val(self.operand(l, rd, rd_g.val));
                                        let golden_new = if z_g == 0 { rd_g } else { golden_d };
                                        self.d_set(l, lane_new, golden_new, lanes, golden, out);
                                    }
                                }
                                Color::Blue => {
                                    // `bzB-taken` compares and commits the
                                    // transfer. Passing with any
                                    // divergence left (or taking when
                                    // golden fell through) forks control.
                                    let rd_f = self.operand(l, rd, replay.rval(rd.into()));
                                    if d_f.val != 0 && rd_f == d_f.val {
                                        self.cause[l] = DemoteCause::ControlFork;
                                        demote[w] |= b;
                                    } else {
                                        detect[w] |= b;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Instr::Halt => {}
        }
        (detect, demote)
    }

    /// Add `src` lanes to the `dst` demote mask with `cause` recorded.
    fn mark(&mut self, dst: &mut LaneSet, src: &LaneSet, cause: DemoteCause) {
        for (w, &sw) in src.iter().enumerate() {
            let mut m = sw;
            while m != 0 {
                let l = w * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                self.cause[l] = cause;
            }
            dst[w] |= sw;
        }
    }
}

fn or_assign(dst: &mut LaneSet, src: &LaneSet) {
    for w in 0..LANE_WORDS {
        dst[w] |= src[w];
    }
}

/// Classify a lane none of whose diverged registers golden ever reads
/// again (`by_lane & live == 0`, no `d`/queue shadow, no strike pending):
/// the faulty run replays golden's remaining actions verbatim, halts at
/// `golden.steps` with golden's trace, registers golden overwrites heal,
/// and `persist` (the rest) survives to the final state. `Masked` if
/// nothing survives or the survivors are all one color (`sim-val-zap`
/// under that color's tag), `DissimilarState` otherwise — the identical
/// case split, on the identical masks and colors, as the scalar engine's
/// `convergence_verdict` and terminal `sim_some_color`.
fn settled_verdict(persist: u64, replay: &Machine) -> Verdict {
    let mut zap: Option<talft_isa::Color> = None;
    let mut bits = persist;
    while bits != 0 {
        #[allow(clippy::cast_possible_truncation)]
        let g = bits.trailing_zeros() as u16;
        bits &= bits - 1;
        let c = replay.reg(talft_isa::Reg::r(g)).color;
        if zap.is_some_and(|z| z != c) {
            return Verdict::DissimilarState;
        }
        zap = Some(c);
    }
    Verdict::Masked
}

/// Reconstruct lane `l`'s exact faulty machine — the replay plus its
/// packed GPR payloads (golden's color tags intact), `d` shadow, and
/// queue value/address shadows — and run the scalar continuation from the
/// next unfired strike. This is the state the scalar engine holds at this step,
/// so the continuation is exact.
fn demote_lane(
    replay: &Machine,
    sh: &Shadow,
    l: usize,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> (Verdict, u64, usize) {
    let outcome = run_isolated(cfg.retry, || {
        let mut faulty = replay.clone();
        let mut gs = sh.by_lane[l];
        while gs != 0 {
            #[allow(clippy::cast_possible_truncation)]
            let g = gs.trailing_zeros() as u16;
            gs &= gs - 1;
            let r = talft_isa::Reg::r(g);
            let cur = faulty.reg(r);
            faulty.set_reg(r, cur.with_val(sh.vals[l * 64 + g as usize]));
        }
        if sh.ddiv[l >> 6] & (1 << (l & 63)) != 0 {
            faulty.set_reg(Reg::Dst, sh.dvals[l]);
        }
        for &(seq, v) in &sh.qsh[l] {
            let len = faulty.queue().len() as u64;
            debug_assert!(seq >= sh.qbase && seq < sh.qbase + len);
            let i = (sh.qbase + len - 1 - seq) as usize;
            faulty.queue_mut()[i].1 = v;
        }
        for &(seq, a) in &sh.qash[l] {
            let len = faulty.queue().len() as u64;
            debug_assert!(seq >= sh.qbase && seq < sh.qbase + len);
            let i = (sh.qbase + len - 1 - seq) as usize;
            faulty.queue_mut()[i].0 = a;
        }
        let next = plan.order() - sh.pending[l] as usize;
        resume_plan(
            &mut faulty,
            plan,
            golden,
            Some(&golden.checkpoints),
            next,
            sh.eff[l] as usize,
        )
    });
    outcome.unwrap_or((Verdict::EngineError, plan.first_step(), 0))
}

/// Step the shared replay over a group of ≤ `LANES_PER_GROUP` lanes,
/// carrying each as an exact packed delta over GPRs, `d`, and queue
/// values: classified `Masked` at its strike or settle point (O(1)),
/// `Detected` at the blue compare its divergence provably fails,
/// healed/propagated through ALU, queue, and latch traffic in place — and
/// demoted to the scalar continuation only when the divergence escapes the
/// packed components (with the cause tallied into `demote_tally`).
#[allow(clippy::too_many_arguments)]
fn run_lockstep(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    lanes: &[Lane],
    events: &[Ev],
    frontier: &mut Option<Machine>,
    sh: &mut Shadow,
    out: &mut Vec<Outcome>,
    demote_tally: &mut [u64; DEMOTE_CAUSES],
) {
    debug_assert!(lanes.len() <= LANES_PER_GROUP);
    debug_assert!(!lane_set_any(&sh.tracking));
    for (l, lane) in lanes.iter().enumerate() {
        sh.pending[l] = plans[lane.idx].order() as u16;
        sh.eff[l] = 0;
    }
    sh.done = EMPTY_SET;
    sh.qbase = 0;
    let mut i = 0usize;
    while i < events.len() || lane_set_any(&sh.tracking) {
        if !lane_set_any(&sh.tracking) {
            // Nothing in flight: jump the replay to the next strike through
            // the checkpoint ring instead of stepping across the gap. No
            // queue shadow is outstanding, so the seq origin can reset.
            advance_frontier(frontier, events[i].at, program, cfg, golden);
            sh.qbase = 0;
        }
        let replay = frontier.as_mut().expect("advance_frontier populates");
        // Fire strikes due now — before the pending action executes,
        // exactly where the scalar loop injects them.
        while i < events.len() && events[i].at <= replay.steps() {
            let ev = &events[i];
            i += 1;
            let l = ev.l as usize;
            if sh.is_done(l) {
                continue;
            }
            let s = &plans[lanes[l].idx].strikes[ev.strike as usize];
            sh.apply_event(l, s.site, s.value, replay, lanes, golden, out);
        }
        if lane_set_any(&sh.tracking) {
            // Liveness settle: once none of a lane's diverged registers is
            // read before overwrite in golden's future, no strike is
            // pending, and no `d`/queue shadow is held, its verdict is
            // decided — see `settled_verdict`. This is also how strikes on
            // dead registers classify in O(1) at admission. The scan is
            // event-driven: a lane's settle condition can newly hold only
            // if its divergence set changed (`dirty`, set by every shadow
            // transition) or a register it holds just left the live mask
            // (`died`) — so only those candidates are checked, keeping
            // wide groups O(events) per step rather than O(lanes).
            let s = usize::try_from(replay.steps()).unwrap_or(usize::MAX);
            let (live, deadwrite) = golden.reg_liveness.get(s).copied().unwrap_or((0, 0));
            let mut cand = std::mem::replace(&mut sh.dirty, EMPTY_SET);
            let mut died = sh.prev_live & !live;
            sh.prev_live = live;
            while died != 0 {
                let g = died.trailing_zeros() as usize;
                died &= died - 1;
                or_assign(&mut cand, &sh.by_reg[g]);
            }
            for (w, &cw) in cand.iter().enumerate() {
                let mut m = cw & sh.tracking[w] & !sh.ddiv[w] & !sh.qdiv[w];
                while m != 0 {
                    let l = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    if sh.by_lane[l] & live == 0 && sh.pending[l] == 0 {
                        out.push(Outcome {
                            pos: lanes[l].pos,
                            idx: lanes[l].idx,
                            verdict: settled_verdict(sh.by_lane[l] & !deadwrite, replay),
                            end_steps: golden.steps,
                            applied: sh.eff[l] as usize,
                        });
                        sh.untrack(l);
                    }
                }
            }
        }
        if !lane_set_any(&sh.tracking) {
            if i >= events.len() {
                break;
            }
            continue;
        }
        if !replay.status().is_running() {
            // The replay halted (at `golden.steps`, so every strike has
            // fired) with lanes still holding `d`/queue shadows — GPR
            // liveness cannot classify those. The run is over: demote to
            // the terminal scalar rules (no stepping — reconstruct the
            // halted faulty state and classify it).
            let tracked = sh.tracking;
            for (w, &tw) in tracked.iter().enumerate() {
                let mut m = tw;
                while m != 0 {
                    let l = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    demote_tally[DemoteCause::Terminal as usize] += 1;
                    let lane = &lanes[l];
                    let (verdict, end_steps, applied) =
                        demote_lane(replay, sh, l, &plans[lane.idx], cfg, golden);
                    out.push(Outcome {
                        pos: lane.pos,
                        idx: lane.idx,
                        verdict,
                        end_steps,
                        applied,
                    });
                    sh.untrack(l);
                }
            }
            continue;
        }
        let ins = replay.ir().copied();
        let (detect, demote) = sh.advance(replay, cfg.oob, lanes, golden, out);
        for (w, &dw) in detect.iter().enumerate() {
            let mut hit = dw;
            while hit != 0 {
                let l = w * 64 + hit.trailing_zeros() as usize;
                hit &= hit - 1;
                // The faulting step still counts: the scalar run's fault
                // lands at `steps() + 1`, with the trace a verified golden
                // prefix.
                let end_steps = replay.steps() + 1;
                let plan = &plans[lanes[l].idx];
                let mut applied = sh.eff[l] as usize;
                if sh.pending[l] > 0 {
                    // The scalar loop drains strikes due at or before the
                    // fault step into the already-faulted machine before
                    // breaking: register injections always take effect;
                    // a queue injection (value or address) only if the
                    // slot survived (an `stB` fault has already popped the
                    // back entry).
                    let qlen = replay.queue().len()
                        - usize::from(matches!(
                            ins,
                            Some(Instr::St {
                                color: Color::Blue,
                                ..
                            })
                        ));
                    let consumed = plan.order() - sh.pending[l] as usize;
                    for s in &plan.strikes[consumed..] {
                        if s.at_step > end_steps {
                            break;
                        }
                        match s.site {
                            FaultSite::Reg(_) => applied += 1,
                            FaultSite::QueueVal(qi) | FaultSite::QueueAddr(qi) => {
                                if qi < qlen {
                                    applied += 1;
                                }
                            }
                        }
                    }
                }
                out.push(Outcome {
                    pos: lanes[l].pos,
                    idx: lanes[l].idx,
                    verdict: Verdict::Detected,
                    end_steps,
                    applied,
                });
                sh.untrack(l);
            }
        }
        for (w, &dw) in demote.iter().enumerate() {
            let mut dm = dw;
            while dm != 0 {
                let l = w * 64 + dm.trailing_zeros() as usize;
                dm &= dm - 1;
                let lane = &lanes[l];
                demote_tally[sh.cause[l] as usize] += 1;
                let (verdict, end_steps, applied) =
                    demote_lane(replay, sh, l, &plans[lane.idx], cfg, golden);
                out.push(Outcome {
                    pos: lane.pos,
                    idx: lane.idx,
                    verdict,
                    end_steps,
                    applied,
                });
                sh.untrack(l);
            }
        }
        step(replay);
        if matches!(
            ins,
            Some(Instr::St {
                color: Color::Blue,
                ..
            })
        ) {
            // The back (oldest) entry retired; the new back is `qbase + 1`.
            sh.qbase += 1;
        }
    }
}
