//! The per-plan **injection grid** of an exhaustive k=1 campaign.
//!
//! [`run_campaign`](crate::run_campaign) aggregates plan outcomes into
//! counters; the static zap-vulnerability analysis (`talft-analysis`) needs
//! the opposite view — *every* plan's individual verdict, keyed by the
//! dynamic injection point, plus the golden `pcG` trace that maps a dynamic
//! step back to the static code address about to execute. A state's `pcG`
//! value is the address of the instruction being fetched or executed at
//! that step (the fetch/exec split leaves `pcG` on the in-flight
//! instruction), so `(at_step, site)` ↦ `(pc_by_step[at_step], site)` is
//! exactly the dynamic-to-static cell mapping the differential oracle
//! cross-validates.

use std::sync::Arc;

use talft_isa::{Color, Program, Reg};
use talft_machine::{step, FaultSite, Machine};

use crate::plan::{single_fault_plans, FaultPlan, Strike};
use crate::{execute_plan, golden_run, CampaignConfig, Golden, GoldenError, Verdict};

/// One executed single-fault plan: injection point, corrupt value, verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridOutcome {
    /// Golden step count at which the strike lands.
    pub at_step: u64,
    /// The corrupted site.
    pub site: FaultSite,
    /// The corrupt value written.
    pub value: i64,
    /// The campaign verdict for this plan.
    pub verdict: Verdict,
}

/// Every plan outcome of an exhaustive k=1 campaign, plus the golden-run
/// observables that map dynamic steps to static code addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultGrid {
    /// `pc_by_step[s]` = the golden `pcG` value after `s` steps
    /// (`pc_by_step[0]` is the boot state; length `golden_steps + 1`).
    pub pc_by_step: Vec<i64>,
    /// `queue_len_by_step[s]` = golden store-queue occupancy after `s`
    /// steps (same indexing), for mapping queue-slot sites.
    pub queue_len_by_step: Vec<usize>,
    /// Steps in the golden run.
    pub golden_steps: u64,
    /// Per-plan outcomes, in plan (step-sorted) order.
    pub outcomes: Vec<GridOutcome>,
}

impl FaultGrid {
    /// Outcomes scored [`Verdict::Sdc`].
    pub fn sdc(&self) -> impl Iterator<Item = &GridOutcome> {
        self.outcomes.iter().filter(|o| o.verdict == Verdict::Sdc)
    }

    /// Tally of a verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.outcomes.iter().filter(|o| o.verdict == v).count()
    }
}

/// One executed multi-strike plan: the strikes as scheduled, the verdict,
/// and how many strikes were actually injected (a run detected before a
/// later strike's step never receives it — `applied < strikes.len()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutcome {
    /// The plan's strikes, step-sorted.
    pub strikes: Vec<Strike>,
    /// The campaign verdict for this plan.
    pub verdict: Verdict,
    /// Strikes actually injected before the run ended.
    pub applied: usize,
}

/// Golden-run observables mapping dynamic steps to static code addresses
/// — shared by the grids and by static-guided plan prioritization (which
/// needs the mapping *before* any plan runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    /// `pc_by_step[s]` = the golden `pcG` value after `s` steps
    /// (`pc_by_step[0]` is the boot state; length `golden_steps + 1`).
    pub pc_by_step: Vec<i64>,
    /// `queue_len_by_step[s]` = golden store-queue occupancy after `s`
    /// steps (same indexing), for mapping queue-slot sites.
    pub queue_len_by_step: Vec<usize>,
    /// Steps in the golden run.
    pub golden_steps: u64,
}

/// Replay the golden prefix once, recording pcG and queue occupancy.
#[must_use]
pub fn golden_trace(program: &Arc<Program>, cfg: &CampaignConfig, golden: &Golden) -> GoldenTrace {
    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    let mut pc_by_step = vec![m.rval(Reg::Pc(Color::Green))];
    let mut queue_len_by_step = vec![m.queue().len()];
    while m.status().is_running() && m.steps() < golden.steps {
        step(&mut m);
        pc_by_step.push(m.rval(Reg::Pc(Color::Green)));
        queue_len_by_step.push(m.queue().len());
    }
    GoldenTrace {
        pc_by_step,
        queue_len_by_step,
        golden_steps: golden.steps,
    }
}

/// Every plan outcome of a k≥2 campaign, plus the golden-run observables
/// that map dynamic strikes to static cells — the multi-strike analogue of
/// [`FaultGrid`], consumed by the pair-fault differential oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanGrid {
    /// The golden observables for the dynamic-to-static cell mapping.
    pub trace: GoldenTrace,
    /// Per-plan outcomes, in the caller's plan order.
    pub outcomes: Vec<PlanOutcome>,
}

impl PlanGrid {
    /// Outcomes scored [`Verdict::Sdc`].
    pub fn sdc(&self) -> impl Iterator<Item = &PlanOutcome> {
        self.outcomes.iter().filter(|o| o.verdict == Verdict::Sdc)
    }

    /// Tally of a verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.outcomes.iter().filter(|o| o.verdict == v).count()
    }
}

/// Run an arbitrary plan set as a grid (golden run included).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn plan_fault_grid(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    plans: &[FaultPlan],
) -> Result<PlanGrid, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(plan_fault_grid_against(program, cfg, &golden, plans))
}

/// Run an arbitrary plan set as a grid against a precomputed golden run.
///
/// Sequential and deterministic, like [`single_fault_grid_against`]: the
/// plans are executed in first-strike order against one monotone frontier,
/// but outcomes are returned in the *caller's* plan order. Verdicts agree
/// plan by plan with [`run_plan_campaign`](crate::run_plan_campaign).
#[must_use]
pub fn plan_fault_grid_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> PlanGrid {
    let trace = golden_trace(program, cfg, golden);
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let mut outcomes: Vec<Option<PlanOutcome>> = vec![None; plans.len()];
    let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    for i in order {
        let plan = &plans[i];
        let target = plan.first_step();
        while frontier.steps() < target && frontier.status().is_running() {
            step(&mut frontier);
        }
        let mut run = frontier.clone();
        let (verdict, _steps, applied) =
            execute_plan(&mut run, plan, golden, Some(&golden.checkpoints));
        outcomes[i] = Some(PlanOutcome {
            strikes: plan.strikes.clone(),
            verdict,
            applied,
        });
    }
    PlanGrid {
        trace,
        outcomes: outcomes.into_iter().map(Option::unwrap).collect(),
    }
}

/// Run the exhaustive k=1 grid (golden run included).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn single_fault_grid(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
) -> Result<FaultGrid, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(single_fault_grid_against(program, cfg, &golden))
}

/// Run the exhaustive k=1 grid against a precomputed golden run.
///
/// Sequential by construction: the grid is consumed by differential tests
/// that want deterministic, step-ordered outcomes, not throughput. Verdicts
/// agree with [`run_plan_campaign`](crate::run_plan_campaign) plan by plan
/// (both call the same continuation executor).
#[must_use]
pub fn single_fault_grid_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> FaultGrid {
    let trace = golden_trace(program, cfg, golden);
    let plans = single_fault_plans(program, cfg, golden);
    let mut outcomes = Vec::with_capacity(plans.len());
    // Plans arrive step-sorted; keep one frontier advancing monotonically.
    let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    for plan in &plans {
        let target = plan.first_step();
        while frontier.steps() < target && frontier.status().is_running() {
            step(&mut frontier);
        }
        let mut run = frontier.clone();
        let (verdict, _steps, _applied) =
            execute_plan(&mut run, plan, golden, Some(&golden.checkpoints));
        let lead = plan.strikes.first().expect("k=1 plans have one strike");
        outcomes.push(GridOutcome {
            at_step: lead.at_step,
            site: lead.site,
            value: lead.value,
            verdict,
        });
    }
    FaultGrid {
        pc_by_step: trace.pc_by_step,
        queue_len_by_step: trace.queue_len_by_step,
        golden_steps: trace.golden_steps,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_plan_campaign;
    use talft_isa::assemble;

    const STORE: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            stride: 1,
            mutations_per_site: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn grid_matches_campaign_tallies() {
        let asm = assemble(STORE).expect("assembles");
        let program = Arc::new(asm.program);
        let cfg = cfg();
        let golden = golden_run(&program, &cfg).expect("golden halts");
        let grid = single_fault_grid_against(&program, &cfg, &golden);
        let plans = single_fault_plans(&program, &cfg, &golden);
        let rep = run_plan_campaign(&program, &cfg, &golden, &plans);
        assert_eq!(grid.outcomes.len() as u64, rep.total);
        assert_eq!(grid.count(Verdict::Masked) as u64, rep.masked);
        assert_eq!(grid.count(Verdict::Detected) as u64, rep.detected);
        assert_eq!(grid.count(Verdict::Sdc) as u64, rep.sdc);
    }

    #[test]
    fn pc_trace_covers_every_step_and_starts_at_entry() {
        let asm = assemble(STORE).expect("assembles");
        let program = Arc::new(asm.program);
        let cfg = cfg();
        let grid = single_fault_grid(&program, &cfg).expect("golden halts");
        assert_eq!(grid.pc_by_step.len() as u64, grid.golden_steps + 1);
        assert_eq!(grid.pc_by_step[0], program.entry);
        // Every instruction occupies two steps (fetch + exec), so each code
        // address appears at least twice in the trace.
        assert!(grid.pc_by_step.iter().filter(|&&a| a == 3).count() >= 2);
        // The queue holds one entry between stG's exec and stB's exec.
        assert!(grid.queue_len_by_step.contains(&1));
    }
}
