//! Detect-and-restart **recovery**, grown into a supervisor — the paper's
//! declared non-goal ("since recovery is largely orthogonal to detection,
//! we omit the former"), built here as the natural extension on top of
//! detection.
//!
//! The design is justified *by* Theorem 4: when the hardware signals
//! `fault`, the outputs already committed are a **prefix** of the correct
//! trace. Restarting the (deterministic) program from boot therefore
//! re-emits exactly that prefix before producing new outputs, so a
//! device-side deduplicator that verifies the replayed prefix and suppresses
//! it makes restart transparent: the logical output stream is precisely the
//! fault-free trace, no matter where the fault struck. Without the prefix
//! property (i.e. with SDC-prone unprotected code) this scheme would
//! silently emit corrupt data or fail to reconcile the replay — and under
//! `k ≥ 2` fault storms, **outside** the single-upset model, replay
//! mismatches are exactly the supervisor-level shadow of campaign SDC
//! (tested below).
//!
//! The [`run_supervised`] supervisor adds operational policy on top of the
//! device model: a restart budget, a per-attempt step budget that
//! *escalates* (an attempt that overran its budget restarts with a larger
//! one, so transient overruns don't strand the device), and a three-way
//! outcome — [`SupervisorOutcome::Completed`] (clean first attempt),
//! [`SupervisorOutcome::Degraded`] (completed, but only after restarts),
//! [`SupervisorOutcome::GaveUp`] (budgets exhausted). Fault storms for
//! stress tests come from the campaign samplers via [`storm_from_plan`].

use std::sync::Arc;

use talft_isa::Program;
use talft_machine::{inject, step, FaultSite, Machine, OobLoadPolicy, Status};
use talft_obs::LazyCounter;

use crate::FaultPlan;

static SUPERVISED_RUNS: LazyCounter = LazyCounter::new("recovery.supervised_runs");
static RESTARTS: LazyCounter = LazyCounter::new("recovery.restarts");
static REPLAY_MISMATCHES: LazyCounter = LazyCounter::new("recovery.replay_mismatches");

/// A fault plan for one logical execution: inject `value` at `site` when
/// the (per-attempt) step counter reaches `at_step` of attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Which restart attempt to strike (0 = first run).
    pub attempt: u32,
    /// Steps into that attempt.
    pub at_step: u64,
    /// Where.
    pub site: FaultSite,
    /// Corrupted value.
    pub value: i64,
}

/// Turn a campaign [`FaultPlan`] into a fault storm striking the given
/// restart attempt — the bridge from the `k`-fault samplers to
/// supervisor-level stress tests.
#[must_use]
pub fn storm_from_plan(plan: &FaultPlan, attempt: u32) -> Vec<PlannedFault> {
    plan.strikes
        .iter()
        .map(|s| PlannedFault {
            attempt,
            at_step: s.at_step,
            site: s.site,
            value: s.value,
        })
        .collect()
}

/// Supervisor policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Restarts allowed after the first attempt.
    pub max_restarts: u32,
    /// Step budget for the first attempt.
    pub base_step_budget: u64,
    /// Budget escalation per restart, in percent of the base: attempt `i`
    /// gets `base × (100 + i × escalation_percent) / 100` steps. 0 keeps a
    /// flat budget.
    pub escalation_percent: u64,
    /// Out-of-bounds-load policy for all attempts.
    pub oob: OobLoadPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            base_step_budget: 1_000_000,
            escalation_percent: 50,
            oob: OobLoadPolicy::Value(0x7EC0_4EE7),
        }
    }
}

impl SupervisorConfig {
    /// The step budget for (0-based) attempt `i`.
    #[must_use]
    pub fn budget_for_attempt(&self, i: u32) -> u64 {
        let bonus = self
            .base_step_budget
            .saturating_mul(self.escalation_percent)
            .saturating_mul(u64::from(i))
            / 100;
        self.base_step_budget.saturating_add(bonus)
    }
}

/// How a supervised execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorOutcome {
    /// The first attempt halted — no restart was needed.
    Completed,
    /// The run halted, but only after one or more restarts (service was
    /// delivered, with degraded latency).
    Degraded,
    /// The restart budget ran out without a halting attempt.
    GaveUp,
}

/// One attempt's record in the supervisor log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Step budget this attempt was given.
    pub budget: u64,
    /// Steps it actually took.
    pub steps: u64,
    /// How it ended (`Running` = budget exhausted).
    pub status: Status,
    /// Planned faults injected during this attempt.
    pub strikes: u32,
}

/// Full supervisor report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Three-way outcome.
    pub outcome: SupervisorOutcome,
    /// The deduplicated (logical) output stream the device accepted.
    pub logical_trace: Vec<(i64, i64)>,
    /// Restarts taken.
    pub restarts: u32,
    /// Total machine steps across attempts.
    pub total_steps: u64,
    /// Replayed outputs that did not match the committed log. Zero for
    /// well-typed programs under single faults (the prefix property);
    /// under `k ≥ 2` storms a nonzero count is the supervisor-level
    /// manifestation of campaign SDC.
    pub replay_mismatches: u64,
    /// Per-attempt log, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Run under the supervisor, injecting the planned faults.
///
/// The device model: it keeps the committed output log; after a restart it
/// expects the program to re-emit the committed prefix verbatim (verified
/// pair by pair) and only then appends new outputs.
#[must_use]
pub fn run_supervised(
    program: &Arc<Program>,
    faults: &[PlannedFault],
    cfg: &SupervisorConfig,
) -> SupervisorReport {
    let report = run_supervised_inner(program, faults, cfg);
    if talft_obs::enabled() {
        SUPERVISED_RUNS.inc();
        RESTARTS.add(u64::from(report.restarts));
        REPLAY_MISMATCHES.add(report.replay_mismatches);
    }
    report
}

fn run_supervised_inner(
    program: &Arc<Program>,
    faults: &[PlannedFault],
    cfg: &SupervisorConfig,
) -> SupervisorReport {
    let mut committed: Vec<(i64, i64)> = Vec::new();
    let mut restarts = 0u32;
    let mut total_steps = 0u64;
    let mut replay_mismatches = 0u64;
    let mut attempts = Vec::new();

    loop {
        let budget = cfg.budget_for_attempt(restarts);
        let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
        let mut emitted = 0usize; // outputs produced by this attempt
        let mut strikes = 0u32;
        while m.status().is_running() && m.steps() < budget {
            for f in faults {
                if f.attempt == restarts
                    && f.at_step == m.steps()
                    && inject(&mut m, f.site, f.value)
                {
                    strikes += 1;
                }
            }
            let ev = step(&mut m);
            if let Some(out) = ev.output {
                if emitted < committed.len() {
                    // replay of the committed prefix: verify, don't re-commit
                    if committed[emitted] != out {
                        replay_mismatches += 1;
                    }
                } else {
                    committed.push(out);
                }
                emitted += 1;
            }
        }
        total_steps += m.steps();
        attempts.push(AttemptRecord {
            budget,
            steps: m.steps(),
            status: m.status(),
            strikes,
        });
        match m.status() {
            Status::Halted => {
                return SupervisorReport {
                    outcome: if restarts == 0 {
                        SupervisorOutcome::Completed
                    } else {
                        SupervisorOutcome::Degraded
                    },
                    logical_trace: committed,
                    restarts,
                    total_steps,
                    replay_mismatches,
                    attempts,
                };
            }
            _ => {
                if restarts >= cfg.max_restarts {
                    return SupervisorReport {
                        outcome: SupervisorOutcome::GaveUp,
                        logical_trace: committed,
                        restarts,
                        total_steps,
                        replay_mismatches,
                        attempts,
                    };
                }
                restarts += 1;
            }
        }
    }
}

/// Outcome of a recovering execution (legacy surface of
/// [`run_with_recovery`]; the supervisor's [`SupervisorReport`] supersedes
/// it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryResult {
    /// The deduplicated (logical) output stream the device accepted.
    pub logical_trace: Vec<(i64, i64)>,
    /// Restarts taken.
    pub restarts: u32,
    /// Total machine steps across attempts.
    pub total_steps: u64,
    /// Whether the run completed (vs. exhausting restarts).
    pub completed: bool,
    /// Whether the device ever saw a replay mismatch (must never happen for
    /// well-typed programs — it would mean the prefix property failed).
    pub replay_mismatch: bool,
}

/// Run with detect-and-restart recovery, injecting the planned faults — the
/// flat-budget special case of [`run_supervised`].
#[must_use]
pub fn run_with_recovery(
    program: &Arc<Program>,
    faults: &[PlannedFault],
    max_restarts: u32,
    max_steps_per_attempt: u64,
) -> RecoveryResult {
    let cfg = SupervisorConfig {
        max_restarts,
        base_step_budget: max_steps_per_attempt,
        escalation_percent: 0,
        ..SupervisorConfig::default()
    };
    let rep = run_supervised(program, faults, &cfg);
    RecoveryResult {
        logical_trace: rep.logical_trace,
        restarts: rep.restarts,
        total_steps: rep.total_steps,
        completed: rep.outcome != SupervisorOutcome::GaveUp,
        replay_mismatch: rep.replay_mismatches > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{golden_run, multi_fault_plans, run_plan_campaign, CampaignConfig, Verdict};
    use talft_isa::{assemble, Color, Reg};

    fn protected() -> Arc<Program> {
        let src = r#"
.data
region out at 4096 len 8 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, B 5
loop:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  and r5, r1, G 7
  add r5, r5, G 4096
  and r6, r2, B 7
  add r6, r6, B 4096
  stG r5, r1
  stB r6, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  mov r7, G @loop
  mov r8, B @loop
  jmpG r7
  jmpB r8
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        Arc::new(assemble(src).expect("assembles").program)
    }

    fn golden(p: &Arc<Program>) -> Vec<(i64, i64)> {
        talft_machine::run_program(p, 100_000).trace
    }

    #[test]
    fn no_faults_no_restarts() {
        let p = protected();
        let r = run_with_recovery(&p, &[], 3, 100_000);
        assert!(r.completed);
        assert_eq!(r.restarts, 0);
        assert!(!r.replay_mismatch);
        assert_eq!(r.logical_trace, golden(&p));
    }

    #[test]
    fn detected_fault_recovers_transparently() {
        let p = protected();
        let expected = golden(&p);
        // strike a live green register mid-loop on the first attempt
        let fault = PlannedFault {
            attempt: 0,
            at_step: 40,
            site: FaultSite::Reg(Reg::r(1)),
            value: 9999,
        };
        let r = run_with_recovery(&p, &[fault], 3, 100_000);
        assert!(r.completed);
        assert!(r.restarts <= 1);
        assert!(!r.replay_mismatch, "prefix property violated");
        assert_eq!(r.logical_trace, expected);
    }

    #[test]
    fn every_injection_point_recovers_to_the_golden_trace() {
        let p = protected();
        let expected = golden(&p);
        let steps = talft_machine::run_program(&p, 100_000).steps;
        for at in (0..steps).step_by(3) {
            for site in [
                FaultSite::Reg(Reg::r(1)),
                FaultSite::Reg(Reg::r(6)),
                FaultSite::Reg(Reg::Dst),
            ] {
                let fault = PlannedFault {
                    attempt: 0,
                    at_step: at,
                    site,
                    value: -7,
                };
                let r = run_with_recovery(&p, &[fault], 3, 100_000);
                assert!(r.completed, "at={at} site={site}");
                assert!(!r.replay_mismatch, "at={at} site={site}: prefix violated");
                assert_eq!(r.logical_trace, expected, "at={at} site={site}");
            }
        }
    }

    #[test]
    fn restart_budget_exhaustion_reported() {
        let p = protected();
        // a fault on every attempt, early enough to always trip detection…
        let faults: Vec<PlannedFault> = (0..4)
            .map(|a| PlannedFault {
                attempt: a,
                at_step: 46,
                site: FaultSite::Reg(Reg::r(1)),
                value: 4242,
            })
            .collect();
        let r = run_with_recovery(&p, &faults, 2, 100_000);
        // (r1 at step 46 may be masked or detected depending on phase; only
        // assert the accounting is coherent)
        assert!(r.restarts <= 2);
        if !r.completed {
            assert_eq!(r.restarts, 2);
        }
        assert!(!r.replay_mismatch);
    }

    /// A pc-zap on every attempt detects immediately every time: the
    /// supervisor burns its whole restart budget and reports `GaveUp`, with
    /// an untouched (empty-prefix) logical trace and a full attempt log.
    #[test]
    fn persistent_storm_gives_up() {
        let p = protected();
        let cfg = SupervisorConfig {
            max_restarts: 2,
            base_step_budget: 100_000,
            ..SupervisorConfig::default()
        };
        let faults: Vec<PlannedFault> = (0..=cfg.max_restarts)
            .map(|a| PlannedFault {
                attempt: a,
                at_step: 2,
                site: FaultSite::Reg(Reg::Pc(Color::Green)),
                value: 999_999,
            })
            .collect();
        let rep = run_supervised(&p, &faults, &cfg);
        assert_eq!(rep.outcome, SupervisorOutcome::GaveUp);
        assert_eq!(rep.restarts, 2);
        assert_eq!(rep.attempts.len(), 3);
        assert!(rep
            .attempts
            .iter()
            .all(|a| a.status == Status::Fault && a.strikes == 1));
        assert_eq!(rep.replay_mismatches, 0);
    }

    /// Budget escalation rescues an attempt that overran a too-small
    /// budget: attempt 0 is cut off `Running`, the escalated attempt 1
    /// completes, and the outcome is `Degraded` with the golden trace.
    #[test]
    fn budget_escalation_rescues_overrun() {
        let p = protected();
        let need = talft_machine::run_program(&p, 100_000).steps;
        let cfg = SupervisorConfig {
            max_restarts: 3,
            base_step_budget: need / 2,
            escalation_percent: 100, // attempt i gets base × (1 + i)
            ..SupervisorConfig::default()
        };
        let rep = run_supervised(&p, &[], &cfg);
        assert_eq!(rep.outcome, SupervisorOutcome::Degraded);
        assert_eq!(rep.restarts, 1);
        assert_eq!(rep.attempts[0].status, Status::Running, "budget cut-off");
        assert_eq!(rep.attempts[0].budget, need / 2);
        assert_eq!(rep.attempts[1].budget, need / 2 * 2);
        assert_eq!(rep.attempts[1].status, Status::Halted);
        assert_eq!(rep.logical_trace, golden(&p));
        assert_eq!(rep.replay_mismatches, 0);
    }

    /// A restart budget of zero means the first failing attempt is final:
    /// one attempt in the log, `GaveUp`, no retry.
    #[test]
    fn restart_budget_zero_gives_up_immediately() {
        let p = protected();
        let cfg = SupervisorConfig {
            max_restarts: 0,
            base_step_budget: 100_000,
            ..SupervisorConfig::default()
        };
        let fault = PlannedFault {
            attempt: 0,
            at_step: 2,
            site: FaultSite::Reg(Reg::Pc(Color::Green)),
            value: 999_999,
        };
        let rep = run_supervised(&p, &[fault], &cfg);
        assert_eq!(rep.outcome, SupervisorOutcome::GaveUp);
        assert_eq!(rep.restarts, 0);
        assert_eq!(rep.attempts.len(), 1, "no second attempt may be made");
        assert_eq!(rep.attempts[0].status, Status::Fault);
        // …but a clean program under the same zero budget still completes.
        let clean = run_supervised(&p, &[], &cfg);
        assert_eq!(clean.outcome, SupervisorOutcome::Completed);
        assert_eq!(clean.logical_trace, golden(&p));
    }

    /// Escalation arithmetic must saturate, not wrap: enormous budgets and
    /// percentages pin at `u64::MAX` and stay monotone in the attempt index.
    #[test]
    fn step_budget_escalation_saturates() {
        let cfg = SupervisorConfig {
            base_step_budget: u64::MAX,
            escalation_percent: u64::MAX,
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.budget_for_attempt(0), u64::MAX);
        assert_eq!(cfg.budget_for_attempt(1), u64::MAX);
        assert_eq!(cfg.budget_for_attempt(u32::MAX), u64::MAX);
        // near the edge: base × percent overflows; the saturating multiply
        // caps the bonus, so the budget never *wraps* below the base and
        // stays monotone (it plateaus rather than pinning at MAX because of
        // the final /100)
        let near = SupervisorConfig {
            base_step_budget: u64::MAX / 2,
            escalation_percent: 300,
            ..SupervisorConfig::default()
        };
        let budgets: Vec<u64> = (0..5).map(|i| near.budget_for_attempt(i)).collect();
        assert!(budgets.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert!(
            budgets.iter().all(|&b| b >= near.base_step_budget),
            "never wraps below the base"
        );
        assert_eq!(
            budgets[3], budgets[4],
            "plateau once the multiply saturates"
        );
        // sanity on the documented formula where nothing saturates
        let plain = SupervisorConfig {
            base_step_budget: 1_000,
            escalation_percent: 50,
            ..SupervisorConfig::default()
        };
        assert_eq!(plain.budget_for_attempt(0), 1_000);
        assert_eq!(plain.budget_for_attempt(1), 1_500);
        assert_eq!(plain.budget_for_attempt(4), 3_000);
    }

    /// An empty campaign plan yields an empty storm, and an empty storm is
    /// a clean supervised run: first attempt completes, zero strikes.
    #[test]
    fn storm_on_empty_plan_is_a_clean_run() {
        let empty = FaultPlan::new(vec![]);
        assert_eq!(empty.order(), 0);
        let storm = storm_from_plan(&empty, 7);
        assert!(storm.is_empty());
        let p = protected();
        let rep = run_supervised(&p, &storm, &SupervisorConfig::default());
        assert_eq!(rep.outcome, SupervisorOutcome::Completed);
        assert_eq!(rep.restarts, 0);
        assert!(rep.attempts.iter().all(|a| a.strikes == 0));
        assert_eq!(rep.logical_trace, golden(&p));
        assert_eq!(rep.replay_mismatches, 0);
    }

    /// Under k=2 storms (outside the single-upset model) the supervisor's
    /// replay mismatches must *track* campaign SDC: a mismatch can only
    /// happen when the campaign classifies that same plan as SDC, and plans
    /// the campaign proves Masked/Detected always recover to the golden
    /// trace with zero mismatches.
    #[test]
    fn k2_storm_replay_mismatches_track_campaign_sdc() {
        let p = protected();
        let cam = CampaignConfig {
            threads: 1,
            pair_samples: 64,
            max_steps: 100_000,
            ..CampaignConfig::default()
        };
        let golden_ref = golden_run(&p, &cam).expect("halts");
        let plans = multi_fault_plans(&p, &cam, &golden_ref, 2);
        assert!(!plans.is_empty());
        let sup_cfg = SupervisorConfig {
            max_restarts: 3,
            base_step_budget: 100_000,
            oob: cam.oob, // identical machine semantics for both harnesses
            ..SupervisorConfig::default()
        };
        let mut benign = 0u32;
        for plan in &plans {
            let rep = run_plan_campaign(&p, &cam, &golden_ref, std::slice::from_ref(plan));
            let verdict = rep.violations.first().map_or(
                if rep.masked == 1 {
                    Verdict::Masked
                } else {
                    Verdict::Detected
                },
                |v| v.verdict,
            );
            let storm = storm_from_plan(plan, 0);
            let sup = run_supervised(&p, &storm, &sup_cfg);
            if sup.replay_mismatches > 0 {
                assert_eq!(
                    verdict,
                    Verdict::Sdc,
                    "replay mismatch without campaign SDC for {plan:?}"
                );
            }
            if !verdict.is_violation() {
                benign += 1;
                assert_eq!(sup.replay_mismatches, 0, "{plan:?}");
                assert_ne!(sup.outcome, SupervisorOutcome::GaveUp, "{plan:?}");
                assert_eq!(sup.logical_trace, golden_ref.trace, "{plan:?}");
            }
        }
        assert!(benign > 0, "sample must contain masked/detected plans");
    }
}
