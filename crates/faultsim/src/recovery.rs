//! Detect-and-restart **recovery** — the paper's declared non-goal ("since
//! recovery is largely orthogonal to detection, we omit the former"), built
//! here as the natural extension on top of detection.
//!
//! The design is justified *by* Theorem 4: when the hardware signals
//! `fault`, the outputs already committed are a **prefix** of the correct
//! trace. Restarting the (deterministic) program from boot therefore
//! re-emits exactly that prefix before producing new outputs, so a
//! device-side deduplicator that verifies the replayed prefix and suppresses
//! it makes restart transparent: the logical output stream is precisely the
//! fault-free trace, no matter where the fault struck. Without the prefix
//! property (i.e. with SDC-prone unprotected code) this scheme would
//! silently emit corrupt data or fail to reconcile the replay.

use std::sync::Arc;

use talft_isa::Program;
use talft_machine::{inject, step, FaultSite, Machine, OobLoadPolicy, Status};

/// A fault plan for one logical execution: inject `value` at `site` when
/// the (per-attempt) step counter reaches `at_step` of attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Which restart attempt to strike (0 = first run).
    pub attempt: u32,
    /// Steps into that attempt.
    pub at_step: u64,
    /// Where.
    pub site: FaultSite,
    /// Corrupted value.
    pub value: i64,
}

/// Outcome of a recovering execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryResult {
    /// The deduplicated (logical) output stream the device accepted.
    pub logical_trace: Vec<(i64, i64)>,
    /// Restarts taken.
    pub restarts: u32,
    /// Total machine steps across attempts.
    pub total_steps: u64,
    /// Whether the run completed (vs. exhausting restarts).
    pub completed: bool,
    /// Whether the device ever saw a replay mismatch (must never happen for
    /// well-typed programs — it would mean the prefix property failed).
    pub replay_mismatch: bool,
}

/// Run with detect-and-restart recovery, injecting the planned faults.
///
/// The device model: it keeps the committed output log; after a restart it
/// expects the program to re-emit the committed prefix verbatim (verified
/// pair by pair) and only then appends new outputs.
#[must_use]
pub fn run_with_recovery(
    program: &Arc<Program>,
    faults: &[PlannedFault],
    max_restarts: u32,
    max_steps_per_attempt: u64,
) -> RecoveryResult {
    let mut committed: Vec<(i64, i64)> = Vec::new();
    let mut restarts = 0u32;
    let mut total_steps = 0u64;
    let mut replay_mismatch = false;

    loop {
        let mut m = Machine::boot(Arc::clone(program))
            .with_oob_policy(OobLoadPolicy::Value(0x7EC0_4EE7));
        let mut emitted = 0usize; // outputs produced by this attempt
        while m.status().is_running() && m.steps() < max_steps_per_attempt {
            for f in faults {
                if f.attempt == restarts && f.at_step == m.steps() {
                    inject(&mut m, f.site, f.value);
                }
            }
            let ev = step(&mut m);
            if let Some(out) = ev.output {
                if emitted < committed.len() {
                    // replay of the committed prefix: verify, don't re-commit
                    if committed[emitted] != out {
                        replay_mismatch = true;
                    }
                } else {
                    committed.push(out);
                }
                emitted += 1;
            }
        }
        total_steps += m.steps();
        match m.status() {
            Status::Halted => {
                return RecoveryResult {
                    logical_trace: committed,
                    restarts,
                    total_steps,
                    completed: true,
                    replay_mismatch,
                };
            }
            _ => {
                if restarts >= max_restarts {
                    return RecoveryResult {
                        logical_trace: committed,
                        restarts,
                        total_steps,
                        completed: false,
                        replay_mismatch,
                    };
                }
                restarts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::{assemble, Reg};

    fn protected() -> Arc<Program> {
        let src = r#"
.data
region out at 4096 len 8 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, B 5
loop:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  and r5, r1, G 7
  add r5, r5, G 4096
  and r6, r2, B 7
  add r6, r6, B 4096
  stG r5, r1
  stB r6, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  mov r7, G @loop
  mov r8, B @loop
  jmpG r7
  jmpB r8
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;
        Arc::new(assemble(src).expect("assembles").program)
    }

    fn golden(p: &Arc<Program>) -> Vec<(i64, i64)> {
        talft_machine::run_program(p, 100_000).trace
    }

    #[test]
    fn no_faults_no_restarts() {
        let p = protected();
        let r = run_with_recovery(&p, &[], 3, 100_000);
        assert!(r.completed);
        assert_eq!(r.restarts, 0);
        assert!(!r.replay_mismatch);
        assert_eq!(r.logical_trace, golden(&p));
    }

    #[test]
    fn detected_fault_recovers_transparently() {
        let p = protected();
        let expected = golden(&p);
        // strike a live green register mid-loop on the first attempt
        let fault = PlannedFault {
            attempt: 0,
            at_step: 40,
            site: FaultSite::Reg(Reg::r(1)),
            value: 9999,
        };
        let r = run_with_recovery(&p, &[fault], 3, 100_000);
        assert!(r.completed);
        assert!(r.restarts <= 1);
        assert!(!r.replay_mismatch, "prefix property violated");
        assert_eq!(r.logical_trace, expected);
    }

    #[test]
    fn every_injection_point_recovers_to_the_golden_trace() {
        let p = protected();
        let expected = golden(&p);
        let steps = talft_machine::run_program(&p, 100_000).steps;
        for at in (0..steps).step_by(3) {
            for site in [FaultSite::Reg(Reg::r(1)), FaultSite::Reg(Reg::r(6)), FaultSite::Reg(Reg::Dst)]
            {
                let fault = PlannedFault { attempt: 0, at_step: at, site, value: -7 };
                let r = run_with_recovery(&p, &[fault], 3, 100_000);
                assert!(r.completed, "at={at} site={site}");
                assert!(!r.replay_mismatch, "at={at} site={site}: prefix violated");
                assert_eq!(r.logical_trace, expected, "at={at} site={site}");
            }
        }
    }

    #[test]
    fn restart_budget_exhaustion_reported() {
        let p = protected();
        // a fault on every attempt, early enough to always trip detection…
        let faults: Vec<PlannedFault> = (0..4)
            .map(|a| PlannedFault {
                attempt: a,
                at_step: 46,
                site: FaultSite::Reg(Reg::r(1)),
                value: 4242,
            })
            .collect();
        let r = run_with_recovery(&p, &faults, 2, 100_000);
        // (r1 at step 46 may be masked or detected depending on phase; only
        // assert the accounting is coherent)
        assert!(r.restarts <= 2);
        if !r.completed {
            assert_eq!(r.restarts, 2);
        }
        assert!(!r.replay_mismatch);
    }
}
