//! Fault-injection campaigns — the dynamic validation of the paper's
//! metatheory (§4) on concrete programs, generalized from single upsets to
//! ordered **k-fault plans**.
//!
//! **Theorem 4 (Fault Tolerance)**, restated operationally: take a fault-free
//! run of `n` steps with output trace `s`. Inject *one* fault (any
//! `reg-zap`/`Q-zap` transition) at any point. Then the faulty run, within
//! `n + 1` steps, either
//!
//! * completes with output trace **equal** to `s` and a final state similar
//!   (`sim_c`) to the fault-free one — the fault was *masked*; or
//! * reaches the hardware `fault` state with a trace that is a **prefix** of
//!   `s` — the fault was *detected* before corrupt data escaped.
//!
//! Anything else — a deviating trace (**silent data corruption**), a stuck
//! state (Progress violation), or an over-long run — is a counterexample.
//!
//! The engine is *plan-driven*: [`run_plan_campaign`] executes any set of
//! [`FaultPlan`]s (ordered `{at_step, site, value}` strikes) and classifies
//! each continuation **as the trace streams out** — the first divergent
//! committed output condemns the run immediately, instead of simulating to
//! the `n + k` bound and diffing afterwards. The classic exhaustive
//! single-fault sweep ([`run_campaign`]) is the `k = 1` instantiation
//! ([`single_fault_plans`]); [`run_multi_campaign`] samples the `k ≥ 2`
//! space ([`multi_fault_plans`]), where Theorem 4 makes **no promise** —
//! its SDC counts quantify the boundary of the single-event-upset model
//! rather than falsify the theorem ([`CampaignReport::within_fault_model`]).
//!
//! The runtime is hardened for long campaigns: each injection runs under
//! `catch_unwind` so a harness panic becomes a recorded
//! [`Verdict::EngineError`] instead of poisoning the worker; a
//! [`CampaignConfig::stop_on_first_violation`] knob short-circuits sweeps
//! used as go/no-go gates; and [`golden_run`] returns a hard
//! [`GoldenError`] when the reference run exhausts its step budget —
//! campaigning against a truncated golden trace would silently misclassify
//! every injection.
//!
//! For *well-typed* programs the `k = 1` campaign must report zero
//! violations; for the unprotected baseline it measurably reports SDC — the
//! contrast the paper's evaluation is built on. Corollary 3 (**No False
//! Positives**) is checked by [`golden_run`]: the fault-free run of a
//! well-typed program never signals `fault`.

#![warn(missing_docs)]

pub mod plan;
pub mod recovery;

pub use plan::{multi_fault_plans, single_fault_plans, FaultPlan, Strike};
pub use recovery::{
    run_supervised, run_with_recovery, storm_from_plan, AttemptRecord, PlannedFault,
    RecoveryResult, SupervisorConfig, SupervisorOutcome, SupervisorReport,
};

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use talft_isa::Program;
use talft_machine::{inject, sim_some_color, step, FaultSite, Machine, OobLoadPolicy, Status};
use talft_obs::{LazyCounter, LazyHistogram};

static GOLDEN_NS: LazyHistogram = LazyHistogram::new("campaign.golden.ns");
static CAMPAIGN_NS: LazyHistogram = LazyHistogram::new("campaign.run.ns");
static PLANS: LazyCounter = LazyCounter::new("campaign.plans");
static WORKER_RATE: LazyHistogram = LazyHistogram::new("campaign.worker.plans_per_sec");
static V_MASKED: LazyCounter = LazyCounter::new("campaign.verdict.masked");
static V_DETECTED: LazyCounter = LazyCounter::new("campaign.verdict.detected");
static V_SDC: LazyCounter = LazyCounter::new("campaign.verdict.sdc");
static V_STUCK: LazyCounter = LazyCounter::new("campaign.verdict.stuck");
static V_OVERRUN: LazyCounter = LazyCounter::new("campaign.verdict.overrun");
static V_DISSIMILAR: LazyCounter = LazyCounter::new("campaign.verdict.dissimilar_state");
static V_ENGINE_ERROR: LazyCounter = LazyCounter::new("campaign.verdict.engine_error");

/// Count one classified continuation under its verdict's counter.
fn note_verdict(v: Verdict) {
    match v {
        Verdict::Masked => V_MASKED.inc(),
        Verdict::Detected => V_DETECTED.inc(),
        Verdict::Sdc => V_SDC.inc(),
        Verdict::Stuck => V_STUCK.inc(),
        Verdict::Overrun => V_OVERRUN.inc(),
        Verdict::DissimilarState => V_DISSIMILAR.inc(),
        Verdict::EngineError => V_ENGINE_ERROR.inc(),
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden run.
    pub max_steps: u64,
    /// Cap on corrupted values tried per site (from
    /// [`talft_machine::mutations`]).
    pub mutations_per_site: usize,
    /// Inject before every `stride`-th step (1 = exhaustive in time). The
    /// `TALFT_STRIDE_SCALE` environment variable multiplies this globally
    /// (CI time-tuning); see [`CampaignConfig::effective_stride`].
    pub stride: u64,
    /// Worker threads.
    pub threads: usize,
    /// Out-of-bounds-load policy for all runs.
    pub oob: OobLoadPolicy,
    /// Seed for the `k ≥ 2` plan samplers (plans are a deterministic
    /// function of seed + config + program).
    pub seed: u64,
    /// Target number of sampled plans per `k ≥ 2` campaign.
    pub pair_samples: usize,
    /// Window (in steps) for correlated cross-color pair search.
    pub pair_window: u64,
    /// Abort the campaign at the first Theorem 4 violation (go/no-go mode).
    /// Counts in the report then cover only the injections performed.
    pub stop_on_first_violation: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            max_steps: 2_000_000,
            mutations_per_site: 3,
            stride: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            oob: OobLoadPolicy::Value(0x6EAD_BEEF),
            seed: 0x7A1F_F00D,
            pair_samples: 4096,
            pair_window: 24,
            stop_on_first_violation: false,
        }
    }
}

fn stride_scale() -> u64 {
    static SCALE: OnceLock<u64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("TALFT_STRIDE_SCALE")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    })
}

impl CampaignConfig {
    /// The stride actually used: `stride × TALFT_STRIDE_SCALE` (environment
    /// variable, default 1). Lets CI thin exhaustive campaigns uniformly
    /// without touching per-test configs.
    #[must_use]
    pub fn effective_stride(&self) -> u64 {
        self.stride.max(1).saturating_mul(stride_scale())
    }
}

/// The golden (fault-free) run failed to produce a usable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenError {
    /// The step budget ran out while the machine was still `Running`.
    /// Campaigning against a truncated reference trace would misclassify
    /// every injection (a faulty run matching the truncated prefix is not
    /// evidence of masking), so this is a hard error, not a warning.
    BudgetExhausted {
        /// Steps taken when the budget ran out.
        steps: u64,
        /// The configured budget.
        max_steps: u64,
    },
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::BudgetExhausted { steps, max_steps } => write!(
                f,
                "golden run still running after {steps} steps (budget {max_steps}); \
                 raise max_steps — a truncated reference would misclassify injections"
            ),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Classification of one injection, per Theorem 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Run completed with the identical trace and a `sim_c`-similar state.
    Masked,
    /// Hardware signalled `fault`; the emitted trace is a prefix of golden.
    Detected,
    /// **Silent data corruption**: a committed output deviated from golden
    /// (flagged at the first divergent output by the streaming comparator).
    Sdc,
    /// The machine got stuck (Progress violation).
    Stuck,
    /// Ran past the `n + k` bound without terminating.
    Overrun,
    /// Completed with the right trace but a dissimilar final state
    /// (similarity clause of Theorem 4 violated).
    DissimilarState,
    /// The injection harness itself panicked (isolated by `catch_unwind`).
    /// Not a Theorem 4 verdict — but the run is unclassified, so it is
    /// treated as a violation for certification purposes.
    EngineError,
}

impl Verdict {
    /// Whether this verdict violates Theorem 4 (or, for
    /// [`Verdict::EngineError`], leaves it unestablished).
    #[must_use]
    pub fn is_violation(self) -> bool {
        !matches!(self, Verdict::Masked | Verdict::Detected)
    }
}

/// One classified injection (the first strike of its plan; any further
/// strikes of a multi-fault plan are in `followups`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Steps taken before the first fault transition.
    pub at_step: u64,
    /// Where the first fault struck.
    pub site: FaultSite,
    /// The corrupted value written by the first strike.
    pub value: i64,
    /// The remaining strikes of the plan (empty for `k = 1`).
    pub followups: Vec<Strike>,
    /// Classification.
    pub verdict: Verdict,
}

/// Histogram of steps from injection to hardware detection (log₂ buckets:
/// bucket `k` counts latencies in `[2ᵏ, 2ᵏ⁺¹)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 24],
    /// Largest observed detection latency.
    pub max: u64,
    sum: u64,
    count: u64,
}

impl LatencyHistogram {
    /// Record one detection latency (in machine steps).
    pub fn record(&mut self, latency: u64) {
        let k = (64 - latency.max(1).leading_zeros() as usize - 1).min(23);
        self.buckets[k] += 1;
        self.max = self.max.max(latency);
        self.sum += latency;
        self.count += 1;
    }

    /// Mean detection latency.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate non-empty `(bucket_lo, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }

    fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total injections performed.
    pub total: u64,
    /// Masked count.
    pub masked: u64,
    /// Detected count.
    pub detected: u64,
    /// SDC count.
    pub sdc: u64,
    /// Other violations (stuck/overrun/dissimilar).
    pub other_violations: u64,
    /// Injections whose harness panicked (isolated, see
    /// [`Verdict::EngineError`]) plus workers lost entirely.
    pub engine_errors: u64,
    /// Up to 32 concrete counterexamples.
    pub violations: Vec<Injection>,
    /// Counterexamples dropped once [`CampaignReport::violations`] was full.
    pub violations_truncated: u64,
    /// Plans where some strike could not be applied (site vanished or the
    /// machine terminated before the strike's step).
    pub incomplete_plans: u64,
    /// Largest fault multiplicity `k` among the executed plans (1 for the
    /// classic sweep; 0 for an empty campaign).
    pub fault_order: u32,
    /// Whether the campaign aborted early on
    /// [`CampaignConfig::stop_on_first_violation`].
    pub stopped_early: bool,
    /// Steps from injection to hardware detection, over detected faults.
    pub detection_latency: LatencyHistogram,
}

impl CampaignReport {
    /// Whether the program passed (no Theorem 4 violations and no
    /// unclassified injections).
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.sdc == 0 && self.other_violations == 0 && self.engine_errors == 0
    }

    /// Detection coverage among non-masked faults (1.0 when fault tolerant).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let exposed = self.detected + self.sdc + self.other_violations;
        if exposed == 0 {
            1.0
        } else {
            self.detected as f64 / exposed as f64
        }
    }

    /// Whether this campaign stayed inside the paper's single-event-upset
    /// model. SDC at `k = 1` falsifies Theorem 4; SDC at `k ≥ 2` is
    /// *outside the model* and quantifies its boundary instead.
    #[must_use]
    pub fn within_fault_model(&self) -> bool {
        self.fault_order <= 1
    }

    fn absorb(&mut self, inj: Injection) {
        self.total += 1;
        match inj.verdict {
            Verdict::Masked => self.masked += 1,
            Verdict::Detected => self.detected += 1,
            Verdict::Sdc => {
                self.sdc += 1;
                self.keep(inj);
            }
            Verdict::EngineError => {
                self.engine_errors += 1;
                self.keep(inj);
            }
            _ => {
                self.other_violations += 1;
                self.keep(inj);
            }
        }
    }

    fn keep(&mut self, inj: Injection) {
        if self.violations.len() < 32 {
            self.violations.push(inj);
        } else {
            self.violations_truncated += 1;
        }
    }

    fn merge(&mut self, other: CampaignReport) {
        self.total += other.total;
        self.masked += other.masked;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.other_violations += other.other_violations;
        self.engine_errors += other.engine_errors;
        self.violations_truncated += other.violations_truncated;
        self.incomplete_plans += other.incomplete_plans;
        self.fault_order = self.fault_order.max(other.fault_order);
        self.stopped_early |= other.stopped_early;
        self.detection_latency.merge(&other.detection_latency);
        for v in other.violations {
            self.keep(v);
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Final machine state.
    pub machine: Machine,
    /// Output trace.
    pub trace: Vec<(i64, i64)>,
    /// Steps to termination.
    pub steps: u64,
    /// Terminal status.
    pub status: Status,
}

/// Run the fault-free execution (also the Corollary 3 check: a well-typed
/// program must end `Halted`, never `Fault`).
///
/// # Errors
///
/// [`GoldenError::BudgetExhausted`] if the run is still `Running` when
/// `cfg.max_steps` is reached — a truncated reference is unusable as a
/// campaign baseline. A run that ends `Fault` or `Stuck` is returned `Ok`
/// (callers checking Corollary 3 inspect [`Golden::status`] themselves).
pub fn golden_run(program: &Arc<Program>, cfg: &CampaignConfig) -> Result<Golden, GoldenError> {
    let _span = GOLDEN_NS.span();
    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    while m.status().is_running() && m.steps() < cfg.max_steps {
        step(&mut m);
    }
    if m.status().is_running() {
        return Err(GoldenError::BudgetExhausted {
            steps: m.steps(),
            max_steps: cfg.max_steps,
        });
    }
    Ok(Golden {
        trace: m.trace().to_vec(),
        steps: m.steps(),
        status: m.status(),
        machine: m,
    })
}

/// Run the full exhaustive single-fault campaign (the `k = 1`
/// instantiation of the plan engine).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn run_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(run_campaign_against(program, cfg, &golden))
}

/// Run the single-fault campaign against a precomputed golden run.
#[must_use]
pub fn run_campaign_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> CampaignReport {
    let plans = single_fault_plans(program, cfg, golden);
    run_plan_campaign(program, cfg, golden, &plans)
}

/// Run a sampled `k`-fault campaign (`k = 1` delegates to the exhaustive
/// sweep; `k ≥ 2` uses the stratified + correlated sampler).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn run_multi_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    k: u32,
) -> Result<CampaignReport, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(run_multi_campaign_against(program, cfg, &golden, k))
}

/// Run a sampled `k`-fault campaign against a precomputed golden run.
#[must_use]
pub fn run_multi_campaign_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    k: u32,
) -> CampaignReport {
    let plans = multi_fault_plans(program, cfg, golden, k);
    run_plan_campaign(program, cfg, golden, &plans)
}

/// Execute an arbitrary set of fault plans and classify every continuation.
///
/// The engine sorts plans by first-strike step (stable), splits them into
/// contiguous chunks, and gives each worker a *frontier* machine it
/// advances monotonically — each plan's continuation is a clone of the
/// frontier at its first strike, so the fault-free prefix is simulated once
/// per worker, not once per plan. Each continuation runs under
/// `catch_unwind`: a panic in the harness is recorded as
/// [`Verdict::EngineError`] and the worker carries on.
#[must_use]
pub fn run_plan_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    let _span = CAMPAIGN_NS.span();
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let threads = cfg.threads.max(1).min(plans.len().max(1));
    let chunk = plans.len().div_ceil(threads);
    let stop = AtomicBool::new(false);
    let mut report = CampaignReport {
        fault_order: plans.iter().map(|p| p.order() as u32).max().unwrap_or(0),
        ..CampaignReport::default()
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(plans.len());
            if lo >= hi {
                continue;
            }
            let idxs = &order[lo..hi];
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let mut rep = CampaignReport::default();
                let worker_start = talft_obs::enabled().then(std::time::Instant::now);
                let mut executed = 0u64;
                let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
                for &i in idxs {
                    if cfg.stop_on_first_violation && stop.load(Ordering::Relaxed) {
                        rep.stopped_early = true;
                        break;
                    }
                    let plan = &plans[i];
                    let first = plan.first_step();
                    while frontier.steps() < first && frontier.status().is_running() {
                        step(&mut frontier);
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut faulty = frontier.clone();
                        execute_plan(&mut faulty, plan, golden)
                    }));
                    let (verdict, end_steps, applied) = match outcome {
                        Ok(r) => r,
                        Err(_) => (Verdict::EngineError, first, 0),
                    };
                    executed += 1;
                    if talft_obs::enabled() {
                        PLANS.inc();
                        note_verdict(verdict);
                    }
                    if verdict == Verdict::Detected {
                        rep.detection_latency
                            .record(end_steps.saturating_sub(first));
                    }
                    if verdict != Verdict::EngineError && applied < plan.order() {
                        rep.incomplete_plans += 1;
                    }
                    let lead = plan.strikes.first().copied().unwrap_or(Strike {
                        at_step: 0,
                        site: FaultSite::QueueAddr(usize::MAX),
                        value: 0,
                    });
                    rep.absorb(Injection {
                        at_step: lead.at_step,
                        site: lead.site,
                        value: lead.value,
                        followups: plan.strikes.get(1..).unwrap_or(&[]).to_vec(),
                        verdict,
                    });
                    if cfg.stop_on_first_violation && verdict.is_violation() {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                if let Some(start) = worker_start {
                    let secs = start.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        WORKER_RATE.record((executed as f64 / secs) as u64);
                    }
                }
                rep
            }));
        }
        for h in handles {
            match h.join() {
                Ok(rep) => report.merge(rep),
                // A worker dying outside the per-plan catch_unwind (should
                // not happen) still must not poison the whole campaign.
                Err(_) => report.engine_errors += 1,
            }
        }
    });
    report
}

/// Run one plan's continuation to termination with streaming trace
/// comparison, returning `(verdict, final_steps, strikes_applied)`.
///
/// The machine must be the golden prefix at the plan's first strike step.
/// Outputs are verified against the golden trace *as they commit*: the
/// first divergent committed output returns [`Verdict::Sdc`] immediately —
/// no need to simulate to the bound and diff afterwards. (Refinement over
/// the batch classifier: a run that diverges and then spins is reported as
/// the `Sdc` it provably is, rather than `Overrun`.)
fn execute_plan(m: &mut Machine, plan: &FaultPlan, golden: &Golden) -> (Verdict, u64, usize) {
    let bound = golden.steps + plan.order() as u64;
    let mut next = 0usize;
    let mut applied = 0usize;
    // The pre-strike prefix replays the golden run deterministically; start
    // verification at the watermark instead of re-checking it.
    let mut verified = m.trace().len();
    loop {
        while next < plan.strikes.len() && plan.strikes[next].at_step <= m.steps() {
            if inject(m, plan.strikes[next].site, plan.strikes[next].value) {
                applied += 1;
            }
            next += 1;
        }
        if !m.status().is_running() || m.steps() >= bound {
            break;
        }
        step(m);
        for &out in m.trace_since(verified) {
            if golden.trace.get(verified) != Some(&out) {
                return (Verdict::Sdc, m.steps(), applied);
            }
            verified += 1;
        }
    }
    let verdict = match m.status() {
        Status::Running => Verdict::Overrun,
        Status::Stuck(_) => Verdict::Stuck,
        // Every committed output was verified against golden, so the trace
        // is a prefix — exactly the Detected clause.
        Status::Fault => Verdict::Detected,
        Status::Halted => {
            if verified != golden.trace.len() {
                Verdict::Sdc
            } else if sim_some_color(&golden.machine, m) {
                Verdict::Masked
            } else {
                Verdict::DissimilarState
            }
        }
    };
    (verdict, m.steps(), applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    fn arc(src: &str) -> Arc<Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    const UNPROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;

    /// The paper's protected store sequence: every injected fault is masked
    /// or detected — never SDC.
    #[test]
    fn protected_store_sequence_is_fault_tolerant() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        };
        let rep = run_campaign(&p, &cfg).expect("golden halts");
        assert!(rep.total > 100, "campaign too small: {}", rep.total);
        assert!(rep.fault_tolerant(), "violations: {:?}", rep.violations);
        assert!(rep.detected > 0, "some faults must be detected");
        assert!(rep.masked > 0, "some faults must be masked");
        assert_eq!(rep.fault_order, 1);
        assert!(rep.within_fault_model());
    }

    /// The §2.2 CSE miscompilation: same-register store pair. The checker
    /// rejects it, and the campaign finds real SDC — the two tools agree.
    #[test]
    fn unprotected_store_exhibits_sdc() {
        let p = arc(UNPROTECTED);
        let cfg = CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        };
        let rep = run_campaign(&p, &cfg).expect("golden halts");
        assert!(
            rep.sdc > 0,
            "expected SDC in the unprotected idiom: {rep:?}"
        );
    }

    #[test]
    fn golden_run_has_no_false_positives() {
        let p = arc(PROTECTED);
        let g = golden_run(&p, &CampaignConfig::default()).expect("halts in budget");
        assert_eq!(g.status, Status::Halted);
        assert_eq!(g.trace, vec![(4096, 5)]);
    }

    /// Satellite (a): a golden run that exhausts its budget while `Running`
    /// is a hard error, not a silently truncated baseline.
    #[test]
    fn golden_budget_exhaustion_is_an_error() {
        let p = arc(r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G @main
  mov r2, B @main
  jmpG r1
  jmpB r2
"#);
        let cfg = CampaignConfig {
            max_steps: 100,
            ..CampaignConfig::default()
        };
        let err = golden_run(&p, &cfg).expect_err("diverging program must not yield a golden");
        assert_eq!(
            err,
            GoldenError::BudgetExhausted {
                steps: 100,
                max_steps: 100
            }
        );
        assert!(err.to_string().contains("budget 100"));
        assert_eq!(run_campaign(&p, &cfg).expect_err("propagates"), err);
    }

    #[test]
    fn stride_reduces_campaign_size() {
        let p = arc(PROTECTED);
        let full = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("ok");
        let strided = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                stride: 4,
                ..Default::default()
            },
        )
        .expect("ok");
        assert!(strided.total < full.total);
        assert!(strided.total > 0);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let p = arc(PROTECTED);
        let one = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("ok");
        let many = run_campaign(
            &p,
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .expect("ok");
        assert_eq!(one.total, many.total);
        assert_eq!(one.masked, many.masked);
        assert_eq!(one.detected, many.detected);
        assert_eq!(one.sdc, many.sdc);
    }

    /// The pre-refactor single-fault sweep, kept verbatim as a reference
    /// implementation: batch (non-streaming) classification, single thread.
    fn reference_sweep(program: &Arc<Program>, cfg: &CampaignConfig) -> CampaignReport {
        fn classify_batch(
            faulty: &mut Machine,
            golden_trace: &[(i64, i64)],
            golden_steps: u64,
            golden_final: &Machine,
        ) -> Verdict {
            let bound = golden_steps + 1;
            while faulty.status().is_running() && faulty.steps() < bound {
                step(faulty);
            }
            match faulty.status() {
                Status::Running => Verdict::Overrun,
                Status::Stuck(_) => Verdict::Stuck,
                Status::Fault => {
                    if golden_trace.starts_with(faulty.trace()) {
                        Verdict::Detected
                    } else {
                        Verdict::Sdc
                    }
                }
                Status::Halted => {
                    if faulty.trace() != golden_trace {
                        Verdict::Sdc
                    } else if sim_some_color(golden_final, faulty) {
                        Verdict::Masked
                    } else {
                        Verdict::DissimilarState
                    }
                }
            }
        }
        use talft_machine::{mutations, read_site, sites};
        let golden = golden_run(program, cfg).expect("golden halts");
        let n = golden.steps;
        let mut rep = CampaignReport {
            fault_order: 1,
            ..CampaignReport::default()
        };
        let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
        let mut at = frontier.steps();
        loop {
            if at.is_multiple_of(cfg.effective_stride()) {
                for site in sites(&frontier) {
                    let Some(old) = read_site(&frontier, site) else {
                        continue;
                    };
                    for value in mutations(old).into_iter().take(cfg.mutations_per_site) {
                        let mut faulty = frontier.clone();
                        assert!(inject(&mut faulty, site, value));
                        let verdict =
                            classify_batch(&mut faulty, &golden.trace, n, &golden.machine);
                        if verdict == Verdict::Detected {
                            rep.detection_latency
                                .record(faulty.steps().saturating_sub(at));
                        }
                        rep.absorb(Injection {
                            at_step: at,
                            site,
                            value,
                            followups: Vec::new(),
                            verdict,
                        });
                    }
                }
            }
            if at >= n || !frontier.status().is_running() {
                break;
            }
            step(&mut frontier);
            at = frontier.steps();
        }
        rep
    }

    /// Satellite (d): the plan-driven engine at `k = 1` reproduces the
    /// pre-refactor sweep exactly — same totals and same verdict counts —
    /// on both the protected and the unprotected store sequence.
    #[test]
    fn plan_engine_matches_reference_sweep_at_k1() {
        for src in [PROTECTED, UNPROTECTED] {
            let p = arc(src);
            let cfg = CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            };
            let reference = reference_sweep(&p, &cfg);
            let planned = run_campaign(&p, &cfg).expect("golden halts");
            assert_eq!(planned.total, reference.total);
            assert_eq!(planned.masked, reference.masked);
            assert_eq!(planned.detected, reference.detected);
            assert_eq!(planned.sdc, reference.sdc);
            assert_eq!(planned.other_violations, reference.other_violations);
            assert_eq!(planned.detection_latency, reference.detection_latency);
        }
    }

    /// Same seed, same program ⇒ bit-identical k=2 report; campaigns are
    /// reproducible end to end.
    #[test]
    fn k2_campaign_is_deterministic() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 3,
            pair_samples: 128,
            ..CampaignConfig::default()
        };
        let a = run_multi_campaign(&p, &cfg, 2).expect("ok");
        let b = run_multi_campaign(&p, &cfg, 2).expect("ok");
        assert_eq!(a, b);
        assert!(a.total > 0);
        assert_eq!(a.fault_order, 2);
        assert!(!a.within_fault_model());
    }

    /// A panicking injection is isolated per-plan and recorded as an
    /// `EngineError` instead of taking down the campaign.
    #[test]
    fn harness_panic_is_isolated_as_engine_error() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("ok");
        // Reg::r(200) is out of the register file — injecting it panics.
        let plans = vec![
            FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(200)), 7),
            FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(1)), 7),
        ];
        let rep = run_plan_campaign(&p, &cfg, &golden, &plans);
        assert_eq!(rep.total, 2, "the campaign survives the panic");
        assert_eq!(rep.engine_errors, 1);
        assert!(!rep.fault_tolerant());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.verdict == Verdict::EngineError));
    }

    #[test]
    fn stop_on_first_violation_short_circuits() {
        let p = arc(UNPROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            stop_on_first_violation: true,
            ..CampaignConfig::default()
        };
        let full = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .expect("ok");
        let gated = run_campaign(&p, &cfg).expect("ok");
        assert!(!gated.fault_tolerant());
        assert!(
            gated.total < full.total,
            "gated: {} full: {}",
            gated.total,
            full.total
        );
    }

    #[test]
    fn report_merge_and_coverage() {
        let mut a = CampaignReport::default();
        a.absorb(Injection {
            at_step: 0,
            site: FaultSite::Reg(talft_isa::Reg::r(0)),
            value: 1,
            followups: Vec::new(),
            verdict: Verdict::Detected,
        });
        let mut b = CampaignReport::default();
        b.absorb(Injection {
            at_step: 1,
            site: FaultSite::Reg(talft_isa::Reg::r(1)),
            value: 2,
            followups: Vec::new(),
            verdict: Verdict::Sdc,
        });
        a.merge(b);
        assert_eq!(a.total, 2);
        assert_eq!(a.detected, 1);
        assert_eq!(a.sdc, 1);
        assert!(!a.fault_tolerant());
        assert!((a.coverage() - 0.5).abs() < 1e-9);
        assert_eq!(a.violations.len(), 1);
    }

    /// Satellite (b): the 32-counterexample cap is accounted, not silent.
    #[test]
    fn violation_overflow_is_counted() {
        let mut rep = CampaignReport::default();
        for i in 0..40 {
            rep.absorb(Injection {
                at_step: i,
                site: FaultSite::Reg(talft_isa::Reg::r(0)),
                value: 1,
                followups: Vec::new(),
                verdict: Verdict::Sdc,
            });
        }
        assert_eq!(rep.sdc, 40);
        assert_eq!(rep.violations.len(), 32);
        assert_eq!(rep.violations_truncated, 8);
        let mut merged = CampaignReport::default();
        merged.merge(rep.clone());
        merged.merge(rep);
        assert_eq!(merged.violations.len(), 32);
        // 8 carried per merge, plus 32 dropped when the second batch found
        // the list already full
        assert_eq!(merged.violations_truncated, 8 + 8 + 32);
    }

    #[test]
    fn verdict_violation_classification() {
        assert!(!Verdict::Masked.is_violation());
        assert!(!Verdict::Detected.is_violation());
        assert!(Verdict::Sdc.is_violation());
        assert!(Verdict::Stuck.is_violation());
        assert!(Verdict::Overrun.is_violation());
        assert!(Verdict::DissimilarState.is_violation());
        assert!(Verdict::EngineError.is_violation());
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LatencyHistogram::default();
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(9);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 3.75).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 2), (8, 1)]);
    }

    #[test]
    fn detected_faults_have_bounded_latency() {
        // Theorem 4's bound: a detected fault fires within n+1 steps.
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = std::sync::Arc::new(assemble(src).expect("ok").program);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let rep = run_campaign_against(&p, &cfg, &golden);
        assert!(rep.detected > 0);
        assert!(rep.detection_latency.max <= golden.steps + 1);
        assert!(rep.detection_latency.mean() > 0.0);
    }
}
