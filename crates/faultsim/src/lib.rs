//! Fault-injection campaigns — the dynamic validation of the paper's
//! metatheory (§4) on concrete programs, generalized from single upsets to
//! ordered **k-fault plans**.
//!
//! **Theorem 4 (Fault Tolerance)**, restated operationally: take a fault-free
//! run of `n` steps with output trace `s`. Inject *one* fault (any
//! `reg-zap`/`Q-zap` transition) at any point. Then the faulty run, within
//! `n + 1` steps, either
//!
//! * completes with output trace **equal** to `s` and a final state similar
//!   (`sim_c`) to the fault-free one — the fault was *masked*; or
//! * reaches the hardware `fault` state with a trace that is a **prefix** of
//!   `s` — the fault was *detected* before corrupt data escaped.
//!
//! Anything else — a deviating trace (**silent data corruption**), a stuck
//! state (Progress violation), or an over-long run — is a counterexample.
//!
//! The engine is *plan-driven*: [`run_plan_campaign`] executes any set of
//! [`FaultPlan`]s (ordered `{at_step, site, value}` strikes) and classifies
//! each continuation **as the trace streams out** — the first divergent
//! committed output condemns the run immediately, instead of simulating to
//! the `n + k` bound and diffing afterwards. The classic exhaustive
//! single-fault sweep ([`run_campaign`]) is the `k = 1` instantiation
//! ([`single_fault_plans`]); [`run_multi_campaign`] samples the `k ≥ 2`
//! space ([`multi_fault_plans`]), where Theorem 4 makes **no promise** —
//! its SDC counts quantify the boundary of the single-event-upset model
//! rather than falsify the theorem ([`CampaignReport::within_fault_model`]).
//!
//! The runtime is hardened for long campaigns: each injection runs under
//! `catch_unwind` so a harness panic becomes a recorded
//! [`Verdict::EngineError`] instead of poisoning the worker; a
//! [`CampaignConfig::stop_on_first_violation`] knob short-circuits sweeps
//! used as go/no-go gates; and [`golden_run`] returns a hard
//! [`GoldenError`] when the reference run exhausts its step budget —
//! campaigning against a truncated golden trace would silently misclassify
//! every injection.
//!
//! For *well-typed* programs the `k = 1` campaign must report zero
//! violations; for the unprotected baseline it measurably reports SDC — the
//! contrast the paper's evaluation is built on. Corollary 3 (**No False
//! Positives**) is checked by [`golden_run`]: the fault-free run of a
//! well-typed program never signals `fault`.

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod grid;
pub mod plan;
pub mod recovery;
pub mod shard;
pub mod wire;

pub use batch::run_plan_campaign_batched;
pub use checkpoint::CheckpointRing;
pub use grid::{
    golden_trace, plan_fault_grid, plan_fault_grid_against, single_fault_grid,
    single_fault_grid_against, FaultGrid, GoldenTrace, GridOutcome, PlanGrid, PlanOutcome,
};
pub use plan::{exhaustive_pair_plans, multi_fault_plans, single_fault_plans, FaultPlan, Strike};
pub use recovery::{
    run_supervised, run_with_recovery, storm_from_plan, AttemptRecord, PlannedFault,
    RecoveryResult, SupervisorConfig, SupervisorOutcome, SupervisorReport,
};
pub use shard::{
    grid_fingerprint, merge_shard_reports, merge_surviving_shards, run_shard_campaign,
    run_sharded_campaign, shard_plans, CampaignCheckpoint, MergeError, ShardControl, ShardError,
    ShardOutcome, ShardPart, ShardSpec, DEFAULT_CHECKPOINT_EVERY,
};

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use talft_isa::Program;
use talft_machine::{
    action_gpr_masks, inject, sim_some_color, step, FaultSite, Machine, OobLoadPolicy, Status,
};
use talft_obs::{LazyCounter, LazyHistogram};

static GOLDEN_NS: LazyHistogram = LazyHistogram::new("campaign.golden.ns");
static CAMPAIGN_NS: LazyHistogram = LazyHistogram::new("campaign.run.ns");
static PLANS: LazyCounter = LazyCounter::new("campaign.plans");
static WORKER_RATE: LazyHistogram = LazyHistogram::new("campaign.worker.plans_per_sec");
static CP_SEEKS: LazyCounter = LazyCounter::new("campaign.checkpoint.seeks");
static CP_STEPS_SAVED: LazyCounter = LazyCounter::new("campaign.checkpoint.steps_saved");
static CONVERGED: LazyCounter = LazyCounter::new("campaign.converged_early");
static CONVERGED_STEPS_SAVED: LazyCounter = LazyCounter::new("campaign.converged.steps_saved");
static V_MASKED: LazyCounter = LazyCounter::new("campaign.verdict.masked");
static V_DETECTED: LazyCounter = LazyCounter::new("campaign.verdict.detected");
static V_SDC: LazyCounter = LazyCounter::new("campaign.verdict.sdc");
static V_STUCK: LazyCounter = LazyCounter::new("campaign.verdict.stuck");
static V_OVERRUN: LazyCounter = LazyCounter::new("campaign.verdict.overrun");
static V_DISSIMILAR: LazyCounter = LazyCounter::new("campaign.verdict.dissimilar_state");
static V_ENGINE_ERROR: LazyCounter = LazyCounter::new("campaign.verdict.engine_error");
static RETRY_ATTEMPTS: LazyCounter = LazyCounter::new("faultsim.retry.attempts");
static RETRY_RECOVERED: LazyCounter = LazyCounter::new("faultsim.retry.recovered");
static RETRY_EXHAUSTED: LazyCounter = LazyCounter::new("faultsim.retry.exhausted");
static RETRY_GOLDEN: LazyCounter = LazyCounter::new("faultsim.retry.golden");

/// Counterexamples a [`CampaignReport`] retains before counting overflow in
/// [`CampaignReport::violations_truncated`]. Shared by the engine, the
/// shard merge, and external validators — cap-exact accounting is what makes
/// the in-order shard merge equal the whole-grid report bit for bit.
pub const VIOLATIONS_KEPT: usize = 32;

/// Capped exponential backoff for *transient* engine failures — harness
/// panics isolated by `catch_unwind` and golden-runner panics. Jitterless
/// and deterministic by design: retries only change *when* an attempt runs,
/// never which verdict a deterministic failure converges to, so reports stay
/// bit-identical at every thread count and retry budget. Permanent errors
/// ([`GoldenError::BudgetExhausted`]) are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast, the old behavior).
    pub max_retries: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on the backoff delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_delay_ms: 1,
            max_delay_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retry `attempt` (0-based):
    /// `min(base · 2^attempt, max)`. No jitter — campaign reproducibility
    /// outranks thundering-herd concerns on an in-process engine.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let mult = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_delay_ms
            .saturating_mul(mult)
            .min(self.max_delay_ms)
    }
}

/// Run `f` under `catch_unwind`, retrying panics per `policy`. `None` when
/// every attempt panicked — the caller records the terminal failure
/// (`EngineError` verdict / [`GoldenError::Panicked`]).
fn run_isolated<T>(policy: RetryPolicy, f: impl Fn() -> T) -> Option<T> {
    let mut attempt = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(v) => {
                if attempt > 0 {
                    RETRY_RECOVERED.inc();
                }
                return Some(v);
            }
            Err(_) => {
                if attempt >= policy.max_retries {
                    if policy.max_retries > 0 {
                        RETRY_EXHAUSTED.inc();
                    }
                    return None;
                }
                RETRY_ATTEMPTS.inc();
                let delay = policy.delay_ms(attempt);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                attempt += 1;
            }
        }
    }
}

/// Slot of a verdict in a worker-local tally array (flushed to the shared
/// counters once per worker by [`note_verdicts`]).
fn verdict_slot(v: Verdict) -> usize {
    match v {
        Verdict::Masked => 0,
        Verdict::Detected => 1,
        Verdict::Sdc => 2,
        Verdict::Stuck => 3,
        Verdict::Overrun => 4,
        Verdict::DissimilarState => 5,
        Verdict::EngineError => 6,
    }
}

/// Flush a [`verdict_slot`]-indexed tally into the per-verdict counters.
fn note_verdicts(tally: &[u64; 7]) {
    for (slot, counter) in [
        &V_MASKED,
        &V_DETECTED,
        &V_SDC,
        &V_STUCK,
        &V_OVERRUN,
        &V_DISSIMILAR,
        &V_ENGINE_ERROR,
    ]
    .into_iter()
    .enumerate()
    {
        counter.add(tally[slot]);
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden run.
    pub max_steps: u64,
    /// Cap on corrupted values tried per site (from
    /// [`talft_machine::mutations`]).
    pub mutations_per_site: usize,
    /// Inject before every `stride`-th step (1 = exhaustive in time). The
    /// `TALFT_STRIDE_SCALE` environment variable multiplies this globally
    /// (CI time-tuning); see [`CampaignConfig::effective_stride`].
    pub stride: u64,
    /// Worker threads.
    pub threads: usize,
    /// Out-of-bounds-load policy for all runs.
    pub oob: OobLoadPolicy,
    /// Seed for the `k ≥ 2` plan samplers (plans are a deterministic
    /// function of seed + config + program).
    pub seed: u64,
    /// Target number of sampled plans per `k ≥ 2` campaign.
    pub pair_samples: usize,
    /// Window (in steps) for correlated cross-color pair search.
    pub pair_window: u64,
    /// Abort the campaign at the first Theorem 4 violation (go/no-go mode).
    /// Counts in the report then cover only the injections performed.
    pub stop_on_first_violation: bool,
    /// Initial snapshot interval for the golden [`CheckpointRing`]
    /// (0 = auto, currently 16). The ring is bounded; when full it drops
    /// every other snapshot and doubles the stride, so this is a floor, not
    /// an exact interval, on long runs.
    pub checkpoint_stride: u64,
    /// Backoff policy for transient failures (harness/golden panics).
    pub retry: RetryPolicy,
    /// Route plans through the bit-parallel batched engine
    /// ([`run_plan_campaign_batched`]) when they qualify. Reports are
    /// bit-identical either way (the batched-differential test matrix);
    /// the knob exists for A/B measurement (`campaignperf`, `talftc
    /// --no-batch`), not because the engines may disagree.
    pub batch: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            max_steps: 2_000_000,
            mutations_per_site: 3,
            stride: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            oob: OobLoadPolicy::Value(0x6EAD_BEEF),
            seed: 0x7A1F_F00D,
            pair_samples: 4096,
            pair_window: 24,
            stop_on_first_violation: false,
            checkpoint_stride: 0,
            retry: RetryPolicy::default(),
            batch: true,
        }
    }
}

fn stride_scale() -> u64 {
    static SCALE: OnceLock<u64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("TALFT_STRIDE_SCALE")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    })
}

impl CampaignConfig {
    /// The stride actually used: `stride × TALFT_STRIDE_SCALE` (environment
    /// variable, default 1). Lets CI thin exhaustive campaigns uniformly
    /// without touching per-test configs.
    #[must_use]
    pub fn effective_stride(&self) -> u64 {
        self.stride.max(1).saturating_mul(stride_scale())
    }
}

/// The golden (fault-free) run failed to produce a usable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenError {
    /// The step budget ran out while the machine was still `Running`.
    /// Campaigning against a truncated reference trace would misclassify
    /// every injection (a faulty run matching the truncated prefix is not
    /// evidence of masking), so this is a hard error, not a warning.
    BudgetExhausted {
        /// Steps taken when the budget ran out.
        steps: u64,
        /// The configured budget.
        max_steps: u64,
    },
    /// The golden runner panicked on every attempt (retries exhausted per
    /// [`RetryPolicy`]). Unlike `BudgetExhausted` — a deterministic property
    /// of the program — this is a harness failure, so it *was* retried
    /// before being surfaced.
    Panicked,
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::BudgetExhausted { steps, max_steps } => write!(
                f,
                "golden run still running after {steps} steps (budget {max_steps}); \
                 raise max_steps — a truncated reference would misclassify injections"
            ),
            GoldenError::Panicked => write!(
                f,
                "golden run panicked on every attempt; no reference trace to campaign against"
            ),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Classification of one injection, per Theorem 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Run completed with the identical trace and a `sim_c`-similar state.
    Masked,
    /// Hardware signalled `fault`; the emitted trace is a prefix of golden.
    Detected,
    /// **Silent data corruption**: a committed output deviated from golden
    /// (flagged at the first divergent output by the streaming comparator).
    Sdc,
    /// The machine got stuck (Progress violation).
    Stuck,
    /// Ran past the `n + k` bound without terminating.
    Overrun,
    /// Completed with the right trace but a dissimilar final state
    /// (similarity clause of Theorem 4 violated).
    DissimilarState,
    /// The injection harness itself panicked (isolated by `catch_unwind`).
    /// Not a Theorem 4 verdict — but the run is unclassified, so it is
    /// treated as a violation for certification purposes.
    EngineError,
}

impl Verdict {
    /// Whether this verdict violates Theorem 4 (or, for
    /// [`Verdict::EngineError`], leaves it unestablished).
    #[must_use]
    pub fn is_violation(self) -> bool {
        !matches!(self, Verdict::Masked | Verdict::Detected)
    }
}

/// One classified injection (the first strike of its plan; any further
/// strikes of a multi-fault plan are in `followups`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Steps taken before the first fault transition.
    pub at_step: u64,
    /// Where the first fault struck.
    pub site: FaultSite,
    /// The corrupted value written by the first strike.
    pub value: i64,
    /// The remaining strikes of the plan (empty for `k = 1`).
    pub followups: Vec<Strike>,
    /// Classification.
    pub verdict: Verdict,
}

/// Histogram of steps from injection to hardware detection (log₂ buckets:
/// bucket `k` counts latencies in `[2ᵏ, 2ᵏ⁺¹)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 24],
    /// Largest observed detection latency.
    pub max: u64,
    sum: u64,
    count: u64,
}

impl LatencyHistogram {
    /// Record one detection latency (in machine steps).
    pub fn record(&mut self, latency: u64) {
        let k = (64 - latency.max(1).leading_zeros() as usize - 1).min(23);
        self.buckets[k] += 1;
        self.max = self.max.max(latency);
        self.sum += latency;
        self.count += 1;
    }

    /// Mean detection latency.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate non-empty `(bucket_lo, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }

    fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total injections performed.
    pub total: u64,
    /// Masked count.
    pub masked: u64,
    /// Detected count.
    pub detected: u64,
    /// SDC count.
    pub sdc: u64,
    /// Other violations (stuck/overrun/dissimilar).
    pub other_violations: u64,
    /// Injections whose harness panicked (isolated, see
    /// [`Verdict::EngineError`]) plus workers lost entirely.
    pub engine_errors: u64,
    /// Up to 32 concrete counterexamples.
    pub violations: Vec<Injection>,
    /// Counterexamples dropped once [`CampaignReport::violations`] was full.
    pub violations_truncated: u64,
    /// Plans where some strike could not be applied (site vanished or the
    /// machine terminated before the strike's step).
    pub incomplete_plans: u64,
    /// Largest fault multiplicity `k` among the executed plans (1 for the
    /// classic sweep; 0 for an empty campaign).
    pub fault_order: u32,
    /// Whether the campaign aborted early on
    /// [`CampaignConfig::stop_on_first_violation`].
    pub stopped_early: bool,
    /// Steps from injection to hardware detection, over detected faults.
    pub detection_latency: LatencyHistogram,
}

impl CampaignReport {
    /// Whether the program passed (no Theorem 4 violations and no
    /// unclassified injections).
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.sdc == 0 && self.other_violations == 0 && self.engine_errors == 0
    }

    /// Detection coverage among non-masked faults (1.0 when fault tolerant).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let exposed = self.detected + self.sdc + self.other_violations;
        if exposed == 0 {
            1.0
        } else {
            self.detected as f64 / exposed as f64
        }
    }

    /// Whether this campaign stayed inside the paper's single-event-upset
    /// model. SDC at `k = 1` falsifies Theorem 4; SDC at `k ≥ 2` is
    /// *outside the model* and quantifies its boundary instead.
    #[must_use]
    pub fn within_fault_model(&self) -> bool {
        self.fault_order <= 1
    }

    fn absorb(&mut self, inj: Injection) {
        self.total += 1;
        match inj.verdict {
            Verdict::Masked => self.masked += 1,
            Verdict::Detected => self.detected += 1,
            Verdict::Sdc => {
                self.sdc += 1;
                self.keep(inj);
            }
            Verdict::EngineError => {
                self.engine_errors += 1;
                self.keep(inj);
            }
            _ => {
                self.other_violations += 1;
                self.keep(inj);
            }
        }
    }

    fn keep(&mut self, inj: Injection) {
        if self.violations.len() < VIOLATIONS_KEPT {
            self.violations.push(inj);
        } else {
            self.violations_truncated += 1;
        }
    }

    /// Count a verdict without retaining a counterexample — workers of the
    /// work-stealing engine tally counts commutatively and hand violations
    /// (tagged with their deterministic position) to the final assembly.
    fn absorb_counts(&mut self, verdict: Verdict) {
        self.total += 1;
        match verdict {
            Verdict::Masked => self.masked += 1,
            Verdict::Detected => self.detected += 1,
            Verdict::Sdc => self.sdc += 1,
            Verdict::EngineError => self.engine_errors += 1,
            _ => self.other_violations += 1,
        }
    }

    fn merge(&mut self, other: CampaignReport) {
        self.total += other.total;
        self.masked += other.masked;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.other_violations += other.other_violations;
        self.engine_errors += other.engine_errors;
        self.violations_truncated += other.violations_truncated;
        self.incomplete_plans += other.incomplete_plans;
        self.fault_order = self.fault_order.max(other.fault_order);
        self.stopped_early |= other.stopped_early;
        self.detection_latency.merge(&other.detection_latency);
        for v in other.violations {
            self.keep(v);
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Final machine state.
    pub machine: Machine,
    /// Output trace.
    pub trace: Vec<(i64, i64)>,
    /// Steps to termination.
    pub steps: u64,
    /// Terminal status.
    pub status: Status,
    /// Snapshots along the run ([`CheckpointRing`]): campaign workers seed
    /// frontiers from the nearest checkpoint instead of re-stepping from
    /// boot, and faulty runs that converge back onto a checkpointed state
    /// classify as masked immediately.
    pub checkpoints: CheckpointRing,
    /// Per-step dynamic register liveness over the golden run, as bitmasks
    /// `(read_before_write, written_before_read)` of GPR indices: entry `s`
    /// classifies each GPR by its *first* future access from step `s` onward
    /// (a register in neither mask is never touched again). Computed by one
    /// backward scan over the executed action sequence; empty when the
    /// register file exceeds 64 GPRs (masks cannot represent it). This is
    /// what lets the convergence early-exit accept faulty states that differ
    /// from golden only in registers the future provably does not read —
    /// the dominant masked-fault shape (a corrupted value that is dead or
    /// about to be overwritten).
    pub reg_liveness: Vec<(u64, u64)>,
}

/// Run the fault-free execution (also the Corollary 3 check: a well-typed
/// program must end `Halted`, never `Fault`).
///
/// # Errors
///
/// [`GoldenError::BudgetExhausted`] if the run is still `Running` when
/// `cfg.max_steps` is reached — a truncated reference is unusable as a
/// campaign baseline. A run that ends `Fault` or `Stuck` is returned `Ok`
/// (callers checking Corollary 3 inspect [`Golden::status`] themselves).
pub fn golden_run(program: &Arc<Program>, cfg: &CampaignConfig) -> Result<Golden, GoldenError> {
    let _span = GOLDEN_NS.span();
    let stride = if cfg.checkpoint_stride == 0 {
        checkpoint::DEFAULT_STRIDE
    } else {
        cfg.checkpoint_stride
    };
    let mut checkpoints = CheckpointRing::new(stride, checkpoint::CAPACITY);
    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    let mask_regs = program.num_gprs <= 64;
    let mut actions: Vec<(u64, u64)> = Vec::new();
    loop {
        checkpoints.offer(&m);
        if !(m.status().is_running() && m.steps() < cfg.max_steps) {
            break;
        }
        if mask_regs {
            actions.push(action_gpr_masks(m.ir()));
        }
        step(&mut m);
    }
    if m.status().is_running() {
        return Err(GoldenError::BudgetExhausted {
            steps: m.steps(),
            max_steps: cfg.max_steps,
        });
    }
    // Backward scan: liveness[s] classifies each GPR by its first access in
    // actions s.. — read first (live), written first (heals), or untouched.
    let reg_liveness = if mask_regs {
        let mut liveness = vec![(0u64, 0u64); actions.len() + 1];
        let (mut live, mut deadwrite) = (0u64, 0u64);
        for (s, &(reads, writes)) in actions.iter().enumerate().rev() {
            live = reads | (live & !writes);
            deadwrite = !reads & (writes | deadwrite);
            liveness[s] = (live, deadwrite);
        }
        liveness
    } else {
        Vec::new()
    };
    Ok(Golden {
        trace: m.trace().to_vec(),
        steps: m.steps(),
        status: m.status(),
        machine: m,
        checkpoints,
        reg_liveness,
    })
}

/// [`golden_run`] hardened with the config's [`RetryPolicy`]: a panicking
/// golden runner is retried with capped exponential backoff before the run
/// is declared [`GoldenError::Panicked`]. [`GoldenError::BudgetExhausted`]
/// is permanent (a deterministic property of program + budget) and returns
/// immediately without retry.
///
/// # Errors
///
/// [`GoldenError::BudgetExhausted`] verbatim from the first attempt;
/// [`GoldenError::Panicked`] once retries are exhausted.
pub fn golden_run_retrying(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
) -> Result<Golden, GoldenError> {
    match run_isolated(cfg.retry, || golden_run(program, cfg)) {
        Some(result) => result,
        None => {
            RETRY_GOLDEN.inc();
            Err(GoldenError::Panicked)
        }
    }
}

/// Run the full exhaustive single-fault campaign (the `k = 1`
/// instantiation of the plan engine).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn run_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(run_campaign_against(program, cfg, &golden))
}

/// Run the single-fault campaign against a precomputed golden run.
#[must_use]
pub fn run_campaign_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> CampaignReport {
    let plans = single_fault_plans(program, cfg, golden);
    run_plan_campaign(program, cfg, golden, &plans)
}

/// Run a sampled `k`-fault campaign (`k = 1` delegates to the exhaustive
/// sweep; `k ≥ 2` uses the stratified + correlated sampler).
///
/// # Errors
///
/// Propagates [`GoldenError`] from the reference run.
pub fn run_multi_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    k: u32,
) -> Result<CampaignReport, GoldenError> {
    let golden = golden_run(program, cfg)?;
    Ok(run_multi_campaign_against(program, cfg, &golden, k))
}

/// Run a sampled `k`-fault campaign against a precomputed golden run.
#[must_use]
pub fn run_multi_campaign_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    k: u32,
) -> CampaignReport {
    let plans = multi_fault_plans(program, cfg, golden, k);
    run_plan_campaign(program, cfg, golden, &plans)
}

/// Contiguous positions a worker claims per fetch from the shared cursor.
/// Large enough to amortize the atomic and keep claimed plans step-adjacent
/// (frontier moves monotonically within a batch), small enough that a
/// worker stuck on slow continuations cannot hoard the tail.
const STEAL_BATCH: usize = 32;

/// Target step interval between convergence checks in [`execute_plan`]
/// (rounded up to a ring-grid multiple). Convergence is absorbing, so a
/// sparser cadence misses nothing — it only delays the early-exit by at
/// most this many steps, far below the thousands of steps each exit saves.
const CONVERGENCE_CHECK_EVERY: u64 = 64;

/// The lead strike of a plan, reified for reporting.
fn lead_injection(plan: &FaultPlan, verdict: Verdict) -> Injection {
    let lead = plan.strikes.first().copied().unwrap_or(Strike {
        at_step: 0,
        site: FaultSite::QueueAddr(usize::MAX),
        value: 0,
    });
    Injection {
        at_step: lead.at_step,
        site: lead.site,
        value: lead.value,
        followups: plan.strikes.get(1..).unwrap_or(&[]).to_vec(),
        verdict,
    }
}

/// One classified continuation tagged with its position in the sorted plan
/// order, so gated (`stop_on_first_violation`) campaigns can be reassembled
/// in deterministic sequential order regardless of which worker ran what.
struct TaggedOutcome {
    pos: usize,
    inj: Injection,
    latency: Option<u64>,
    incomplete: bool,
}

/// Advance (or reseed) a worker frontier to the golden prefix at `target`
/// steps. Prefers the latest checkpoint at or before `target` over stepping
/// from the current frontier whenever the checkpoint is further along; a
/// frontier past `target` (possible only when batches arrive out of step
/// order) is discarded and reseeded.
fn advance_frontier(
    frontier: &mut Option<Machine>,
    target: u64,
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) {
    if frontier.as_ref().is_some_and(|f| f.steps() > target) {
        *frontier = None;
    }
    let cur = frontier.as_ref().map(Machine::steps);
    if let Some(cp) = golden.checkpoints.seek(target) {
        if cur.is_none_or(|s| cp.steps() > s) {
            if talft_obs::enabled() {
                CP_SEEKS.inc();
                CP_STEPS_SAVED.add(cp.steps() - cur.unwrap_or(0));
            }
            *frontier = Some(cp.clone().with_oob_policy(cfg.oob));
        }
    }
    let f =
        frontier.get_or_insert_with(|| Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob));
    while f.steps() < target && f.status().is_running() {
        step(f);
    }
}

/// Execute an arbitrary set of fault plans and classify every continuation.
///
/// The engine sorts plans by first-strike step (stable) and runs them under
/// a **work-stealing scheduler**: workers claim contiguous batches of the
/// sorted order from a shared atomic cursor, so load imbalance (one batch
/// full of long-running continuations) no longer idles the other workers
/// the way static chunking did. Each worker keeps a *frontier* machine
/// seeded from the golden [`CheckpointRing`] and advanced monotonically —
/// a plan's continuation is a copy-on-write clone of the frontier at its
/// first strike, so the fault-free prefix is neither re-stepped from boot
/// nor deep-copied. Continuations that have applied every strike and
/// converged back onto a golden checkpoint stop immediately (masked by
/// determinism; see [`Machine::execution_eq`]).
///
/// Each continuation runs under `catch_unwind`: a panic in the harness is
/// recorded as [`Verdict::EngineError`] and the worker carries on.
///
/// The report is **bit-identical** to a sequential run for every thread
/// count: counts and histograms merge commutatively, retained violations
/// are assembled in sorted-order position, and gated campaigns
/// ([`CampaignConfig::stop_on_first_violation`]) reduce to the outcome
/// prefix ending at the globally first violation.
///
/// With [`CampaignConfig::batch`] set (the default) this dispatches to the
/// bit-parallel batched engine ([`run_plan_campaign_batched`]), which
/// classifies most masked `k = 1` register faults in O(1) against one
/// shared golden replay and demotes the rest to the scalar path below —
/// reports are bit-identical either way. Gated campaigns always take the
/// scalar path (the batched engine has no deterministic abort order).
#[must_use]
pub fn run_plan_campaign(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    if cfg.batch && !cfg.stop_on_first_violation {
        return run_plan_campaign_batched(program, cfg, golden, plans);
    }
    run_plan_campaign_scalar(program, cfg, golden, plans)
}

/// The E16 checkpointed work-stealing engine: one faulty machine simulated
/// per plan, frontiers seeded from the golden [`CheckpointRing`], liveness-
/// aware convergence early-exit. Public so the batched-differential tests
/// and `campaignperf` can run it head-to-head against
/// [`run_plan_campaign_batched`]; [`run_plan_campaign`] picks the engine.
#[must_use]
pub fn run_plan_campaign_scalar(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    run_plan_campaign_scheduled(program, cfg, golden, plans, None)
}

/// Run the k≥2 plan set with **static-guided prioritization**: plans the
/// pair-fault analyzer classified Vulnerable (`hot[i]` per plan index) are
/// *scheduled* first, so a gated campaign — or a human watching the
/// violation stream — reaches the interesting verdicts sooner.
///
/// Guidance is **verdict-neutral by construction**: it only permutes the
/// order in which workers claim plans. All bookkeeping stays keyed by the
/// plan's position in the frozen first-strike sort order — counts and
/// histograms merge commutatively, violations are tagged and reassembled
/// by canonical position, and gated stops reduce to the canonical-order
/// prefix (positions at or before the final stop position are never
/// skipped, whatever order they executed in). The report is therefore
/// bit-identical to [`run_plan_campaign`] on the same inputs, which the
/// guided-identity tests assert.
#[must_use]
pub fn run_plan_campaign_guided(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    hot: &[bool],
) -> CampaignReport {
    assert_eq!(hot.len(), plans.len(), "one hotness flag per plan");
    // Canonical report order (must match the scheduled engine's sort).
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    // Schedule: hot positions first, canonical order within each half.
    let mut schedule: Vec<usize> = (0..plans.len()).collect();
    schedule.sort_by_key(|&pos| !hot[order[pos]]);
    run_plan_campaign_scheduled(program, cfg, golden, plans, Some(&schedule))
}

/// The scalar engine with an optional **claim schedule**: a permutation of
/// canonical positions dictating the order workers pick plans up. `None`
/// means canonical order. The schedule never appears in the report — see
/// [`run_plan_campaign_guided`] for the neutrality argument.
fn run_plan_campaign_scheduled(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    schedule: Option<&[usize]>,
) -> CampaignReport {
    let _span = CAMPAIGN_NS.span();
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let order = order; // frozen: positions in this order are the report order
    let threads = cfg.threads.max(1).min(plans.len().max(1));
    let gated = cfg.stop_on_first_violation;
    let cursor = AtomicUsize::new(0);
    // Position of the earliest known violation (gated mode only);
    // `u64::MAX` = none found yet. `fetch_min` keeps it exact under races.
    let stop_pos = AtomicU64::new(u64::MAX);
    let mut report = CampaignReport {
        fault_order: plans.iter().map(|p| p.order() as u32).max().unwrap_or(0),
        ..CampaignReport::default()
    };
    let mut counts: Vec<CampaignReport> = Vec::new();
    let mut violations: Vec<(usize, Injection)> = Vec::new();
    let mut outcomes: Vec<TaggedOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let order = &order;
            let cursor = &cursor;
            let stop_pos = &stop_pos;
            handles.push(scope.spawn(move || {
                let mut counts = CampaignReport::default();
                let mut viols: Vec<(usize, Injection)> = Vec::new();
                let mut outs: Vec<TaggedOutcome> = Vec::new();
                let worker_start = talft_obs::enabled().then(std::time::Instant::now);
                let mut executed = 0u64;
                let mut verdict_tally = [0u64; 7];
                let mut frontier: Option<Machine> = None;
                loop {
                    let lo = cursor.fetch_add(STEAL_BATCH, Ordering::Relaxed);
                    if lo >= order.len() {
                        break;
                    }
                    let hi = (lo + STEAL_BATCH).min(order.len());
                    for slot in lo..hi {
                        let pos = schedule.map_or(slot, |s| s[slot]);
                        // Past the earliest known violation nothing can be
                        // reported; skipping is safe because positions at or
                        // before the final stop position are never skipped
                        // (stop_pos only decreases).
                        if gated && pos as u64 > stop_pos.load(Ordering::Relaxed) {
                            continue;
                        }
                        let plan = &plans[order[pos]];
                        let first = plan.first_step();
                        advance_frontier(&mut frontier, first, program, cfg, golden);
                        let fr = frontier.as_ref().expect("advance_frontier populates");
                        // Transient panics are retried with deterministic
                        // backoff (satellite: `faultsim.retry.*`); each
                        // attempt re-clones the pristine frontier, and a
                        // deterministic panic converges to the same
                        // `EngineError` at every retry budget — reports stay
                        // bit-identical.
                        let outcome = run_isolated(cfg.retry, || {
                            let mut faulty = fr.clone();
                            execute_plan(&mut faulty, plan, golden, Some(&golden.checkpoints))
                        });
                        let (verdict, end_steps, applied) =
                            outcome.unwrap_or((Verdict::EngineError, first, 0));
                        executed += 1;
                        verdict_tally[verdict_slot(verdict)] += 1;
                        let latency =
                            (verdict == Verdict::Detected).then(|| end_steps.saturating_sub(first));
                        let incomplete = verdict != Verdict::EngineError && applied < plan.order();
                        if gated {
                            if verdict.is_violation() {
                                stop_pos.fetch_min(pos as u64, Ordering::Relaxed);
                            }
                            outs.push(TaggedOutcome {
                                pos,
                                inj: lead_injection(plan, verdict),
                                latency,
                                incomplete,
                            });
                        } else {
                            if let Some(l) = latency {
                                counts.detection_latency.record(l);
                            }
                            if incomplete {
                                counts.incomplete_plans += 1;
                            }
                            counts.absorb_counts(verdict);
                            if verdict.is_violation() {
                                viols.push((pos, lead_injection(plan, verdict)));
                            }
                        }
                    }
                }
                if let Some(start) = worker_start {
                    // Counters are flushed once per worker, not per plan —
                    // contended atomics in the classification loop would
                    // charge the engine for its own instrumentation.
                    PLANS.add(executed);
                    note_verdicts(&verdict_tally);
                    let secs = start.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        WORKER_RATE.record((executed as f64 / secs) as u64);
                    }
                }
                (counts, viols, outs)
            }));
        }
        for h in handles {
            match h.join() {
                Ok((c, v, o)) => {
                    counts.push(c);
                    violations.extend(v);
                    outcomes.extend(o);
                }
                // A worker dying outside the per-plan catch_unwind (should
                // not happen) still must not poison the whole campaign.
                Err(_) => report.engine_errors += 1,
            }
        }
    });
    if gated {
        // Reassemble the sequential prefix: absorb outcomes in sorted-order
        // position up to and including the earliest violation. Workers may
        // have executed plans past it; those outcomes are discarded, exactly
        // as a sequential gated run would never have reached them.
        let v_star = stop_pos.load(Ordering::Relaxed);
        outcomes.sort_by_key(|o| o.pos);
        let mut executed = 0usize;
        for o in outcomes {
            if o.pos as u64 > v_star {
                break;
            }
            executed += 1;
            if let Some(l) = o.latency {
                report.detection_latency.record(l);
            }
            if o.incomplete {
                report.incomplete_plans += 1;
            }
            report.absorb(o.inj);
        }
        report.stopped_early = executed < plans.len();
    } else {
        for c in counts {
            report.merge(c);
        }
        violations.sort_by_key(|(pos, _)| *pos);
        for (_, inj) in violations {
            report.keep(inj);
        }
    }
    report
}

/// The pre-checkpoint campaign engine, kept as a **differential baseline**:
/// static contiguous chunks per worker, frontiers re-stepped from boot, no
/// checkpoint seeking and no convergence early-exit. `campaignperf` measures
/// the optimized engine against it, and the differential tests require
/// bit-identical reports from both on the full matrix. Semantics match
/// [`run_plan_campaign`] except under `stop_on_first_violation` with
/// `threads > 1`, where this engine's abort point is scheduling-dependent —
/// gated differentials pin `threads: 1`.
#[must_use]
pub fn run_plan_campaign_reference(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
) -> CampaignReport {
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| plans[i].first_step());
    let threads = cfg.threads.max(1).min(plans.len().max(1));
    let chunk = plans.len().div_ceil(threads);
    let stop = AtomicBool::new(false);
    let mut report = CampaignReport {
        fault_order: plans.iter().map(|p| p.order() as u32).max().unwrap_or(0),
        ..CampaignReport::default()
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(plans.len());
            if lo >= hi {
                continue;
            }
            let idxs = &order[lo..hi];
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let mut rep = CampaignReport::default();
                let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
                for &i in idxs {
                    if cfg.stop_on_first_violation && stop.load(Ordering::Relaxed) {
                        rep.stopped_early = true;
                        break;
                    }
                    let plan = &plans[i];
                    let first = plan.first_step();
                    while frontier.steps() < first && frontier.status().is_running() {
                        step(&mut frontier);
                    }
                    let outcome = run_isolated(cfg.retry, || {
                        let mut faulty = frontier.clone();
                        execute_plan(&mut faulty, plan, golden, None)
                    });
                    let (verdict, end_steps, applied) =
                        outcome.unwrap_or((Verdict::EngineError, first, 0));
                    if verdict == Verdict::Detected {
                        rep.detection_latency
                            .record(end_steps.saturating_sub(first));
                    }
                    if verdict != Verdict::EngineError && applied < plan.order() {
                        rep.incomplete_plans += 1;
                    }
                    rep.absorb(lead_injection(plan, verdict));
                    if cfg.stop_on_first_violation && verdict.is_violation() {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                rep
            }));
        }
        for h in handles {
            match h.join() {
                Ok(rep) => report.merge(rep),
                Err(_) => report.engine_errors += 1,
            }
        }
    });
    report
}

/// Decide whether a faulty continuation at golden checkpoint `cp`'s step has
/// provably finished, and with which verdict. `None` means "keep simulating".
///
/// Soundness: all of the plan's strikes have been applied and every
/// committed output has been verified against the golden trace (the
/// [`execute_plan`] call-site invariants). If the faulty state equals the
/// checkpoint everywhere except a set `D` of GPRs
/// ([`Machine::diverged_gprs_trace_verified`]), and golden's future never
/// *reads* any register of `D` before overwriting it
/// ([`Golden::reg_liveness`]), then — by induction on steps — the faulty run
/// executes exactly golden's remaining action sequence: every operand it
/// reads is equal, so every write, queue operation, control transfer, and
/// committed output is equal, and registers of `D` that get overwritten
/// heal to golden's values. The run therefore halts at `golden.steps` with
/// golden's trace, and its final state is golden's final state except that
/// never-touched-again registers of `D` keep their current faulty values.
/// The verdict the full simulation would reach is thus:
///
/// * `Masked` if `D` is empty or heals entirely, or if the persisting
///   divergences are `sim_c`-similar for some single color `c` (pairwise
///   equal colors, all the same color — Figure 9's `sim-val-zap`);
/// * `DissimilarState` otherwise (trace equal, final state dissimilar).
fn convergence_verdict(m: &Machine, cp: &Machine, golden: &Golden) -> Option<Verdict> {
    let diff = m.diverged_gprs_trace_verified(cp)?;
    if diff == 0 {
        return Some(Verdict::Masked);
    }
    let s = usize::try_from(m.steps()).ok()?;
    let &(live, deadwrite) = golden.reg_liveness.get(s)?;
    if diff & live != 0 {
        // A diverged register will be read before it is overwritten; the
        // futures may deviate, so nothing is decided yet.
        return None;
    }
    let persist = diff & !deadwrite;
    if persist == 0 {
        return Some(Verdict::Masked);
    }
    // Persisting divergences survive to the final state; the terminal
    // classification is the similarity clause of Theorem 4.
    let mut zap: Option<talft_isa::Color> = None;
    let mut bits = persist;
    while bits != 0 {
        #[allow(clippy::cast_possible_truncation)]
        let i = bits.trailing_zeros() as u16;
        bits &= bits - 1;
        let (g, f) = (cp.reg(talft_isa::Reg::r(i)), m.reg(talft_isa::Reg::r(i)));
        if g.color != f.color || zap.is_some_and(|c| c != g.color) {
            return Some(Verdict::DissimilarState);
        }
        zap = Some(g.color);
    }
    Some(Verdict::Masked)
}

/// Run one plan's continuation to termination with streaming trace
/// comparison, returning `(verdict, final_steps, strikes_applied)`.
///
/// The machine must be the golden prefix at the plan's first strike step.
/// Outputs are verified against the golden trace *as they commit*: the
/// first divergent committed output returns [`Verdict::Sdc`] immediately —
/// no need to simulate to the bound and diff afterwards. (Refinement over
/// the batch classifier: a run that diverges and then spins is reported as
/// the `Sdc` it provably is, rather than `Overrun`.)
///
/// With a checkpoint ring, a continuation that has applied every strike and
/// whose full execution state equals the golden state at the same step is
/// classified [`Verdict::Masked`] on the spot: stepping is deterministic, so
/// the remainder of the run *is* the remainder of the golden run — the
/// trace completes equal and the final states coincide (`sim_c` holds
/// reflexively). Most masked faults converge within a few steps of
/// injection (the corrupt value is dead or overwritten), which turns the
/// dominant O(golden-length) masked continuations into O(convergence
/// distance) ones.
///
/// Convergence is *absorbing* — a run equal to golden stays equal forever —
/// so the check need not fire at every ring grid point: it runs every
/// `CONVERGENCE_CHECK_EVERY`-ish steps (rounded to the ring grid), trading
/// at most that many extra simulated steps per converged run for an
/// order-of-magnitude fewer state comparisons on runs that never converge.
pub(crate) fn execute_plan(
    m: &mut Machine,
    plan: &FaultPlan,
    golden: &Golden,
    checkpoints: Option<&CheckpointRing>,
) -> (Verdict, u64, usize) {
    resume_plan(m, plan, golden, checkpoints, 0, 0)
}

/// [`execute_plan`] with the first `next` strikes already applied (`applied`
/// of them effective) — the continuation a batched lane demotes into. The
/// machine must be the faulty state the scalar run would hold at this step:
/// strikes `0..next` injected, every committed output equal to golden's
/// prefix (the trace watermark is taken as verified). `execute_plan` is the
/// `next = applied = 0` instantiation.
pub(crate) fn resume_plan(
    m: &mut Machine,
    plan: &FaultPlan,
    golden: &Golden,
    checkpoints: Option<&CheckpointRing>,
    mut next: usize,
    mut applied: usize,
) -> (Verdict, u64, usize) {
    let bound = golden.steps + plan.order() as u64;
    // The pre-strike prefix replays the golden run deterministically; start
    // verification at the watermark instead of re-checking it.
    let mut verified = m.trace().len();
    // Convergence-check cadence: the smallest ring-grid multiple at or above
    // CONVERGENCE_CHECK_EVERY. `next_check` keeps the hot loop to a single
    // compare per step; `u64::MAX` disables the check entirely.
    let check_grid = checkpoints.map_or(u64::MAX, |r| {
        r.stride()
            .saturating_mul((CONVERGENCE_CHECK_EVERY / r.stride()).max(1))
    });
    let mut next_check = if checkpoints.is_some() { 0 } else { u64::MAX };
    loop {
        while next < plan.strikes.len() && plan.strikes[next].at_step <= m.steps() {
            if inject(m, plan.strikes[next].site, plan.strikes[next].value) {
                applied += 1;
            }
            next += 1;
        }
        if !m.status().is_running() || m.steps() >= bound {
            break;
        }
        step(m);
        for &out in m.trace_since(verified) {
            if golden.trace.get(verified) != Some(&out) {
                return (Verdict::Sdc, m.steps(), applied);
            }
            verified += 1;
        }
        if m.steps() >= next_check {
            next_check = (m.steps() / check_grid + 1).saturating_mul(check_grid);
            if next == plan.strikes.len() && m.status().is_running() {
                if let Some(cp) = checkpoints.and_then(|r| r.at_step(m.steps())) {
                    if let Some(verdict) = convergence_verdict(m, cp, golden) {
                        if talft_obs::enabled() {
                            CONVERGED.inc();
                            CONVERGED_STEPS_SAVED.add(golden.steps.saturating_sub(m.steps()));
                        }
                        return (verdict, golden.steps, applied);
                    }
                }
            }
        }
    }
    let verdict = match m.status() {
        Status::Running => Verdict::Overrun,
        Status::Stuck(_) => Verdict::Stuck,
        // Every committed output was verified against golden, so the trace
        // is a prefix — exactly the Detected clause.
        Status::Fault => Verdict::Detected,
        Status::Halted => {
            if verified != golden.trace.len() {
                Verdict::Sdc
            } else if sim_some_color(&golden.machine, m) {
                Verdict::Masked
            } else {
                Verdict::DissimilarState
            }
        }
    };
    (verdict, m.steps(), applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    fn arc(src: &str) -> Arc<Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    const UNPROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;

    /// The paper's protected store sequence: every injected fault is masked
    /// or detected — never SDC.
    #[test]
    fn protected_store_sequence_is_fault_tolerant() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        };
        let rep = run_campaign(&p, &cfg).expect("golden halts");
        assert!(rep.total > 100, "campaign too small: {}", rep.total);
        assert!(rep.fault_tolerant(), "violations: {:?}", rep.violations);
        assert!(rep.detected > 0, "some faults must be detected");
        assert!(rep.masked > 0, "some faults must be masked");
        assert_eq!(rep.fault_order, 1);
        assert!(rep.within_fault_model());
    }

    /// The §2.2 CSE miscompilation: same-register store pair. The checker
    /// rejects it, and the campaign finds real SDC — the two tools agree.
    #[test]
    fn unprotected_store_exhibits_sdc() {
        let p = arc(UNPROTECTED);
        let cfg = CampaignConfig {
            threads: 2,
            ..CampaignConfig::default()
        };
        let rep = run_campaign(&p, &cfg).expect("golden halts");
        assert!(
            rep.sdc > 0,
            "expected SDC in the unprotected idiom: {rep:?}"
        );
    }

    #[test]
    fn golden_run_has_no_false_positives() {
        let p = arc(PROTECTED);
        let g = golden_run(&p, &CampaignConfig::default()).expect("halts in budget");
        assert_eq!(g.status, Status::Halted);
        assert_eq!(g.trace, vec![(4096, 5)]);
    }

    /// Satellite (a): a golden run that exhausts its budget while `Running`
    /// is a hard error, not a silently truncated baseline.
    #[test]
    fn golden_budget_exhaustion_is_an_error() {
        let p = arc(r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G @main
  mov r2, B @main
  jmpG r1
  jmpB r2
"#);
        let cfg = CampaignConfig {
            max_steps: 100,
            ..CampaignConfig::default()
        };
        let err = golden_run(&p, &cfg).expect_err("diverging program must not yield a golden");
        assert_eq!(
            err,
            GoldenError::BudgetExhausted {
                steps: 100,
                max_steps: 100
            }
        );
        assert!(err.to_string().contains("budget 100"));
        assert_eq!(run_campaign(&p, &cfg).expect_err("propagates"), err);
        // Budget exhaustion is permanent: the retrying wrapper surfaces it
        // verbatim instead of burning retries on a deterministic outcome.
        assert_eq!(golden_run_retrying(&p, &cfg).expect_err("permanent"), err);
    }

    /// Satellite (a): capped exponential backoff is deterministic and the
    /// retry helper recovers flaky failures / gives up on persistent ones.
    #[test]
    fn retry_policy_backoff_recovery_and_exhaustion() {
        let pol = RetryPolicy {
            max_retries: 3,
            base_delay_ms: 4,
            max_delay_ms: 10,
        };
        assert_eq!(pol.delay_ms(0), 4);
        assert_eq!(pol.delay_ms(1), 8);
        assert_eq!(pol.delay_ms(2), 10, "capped");
        assert_eq!(pol.delay_ms(63), 10);
        assert_eq!(
            pol.delay_ms(64),
            10,
            "shift overflow saturates, stays capped"
        );
        let fast = RetryPolicy {
            max_retries: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        // Flaky: panics twice, then succeeds — recovered on the third call.
        let calls = std::sync::atomic::AtomicU32::new(0);
        let got = run_isolated(fast, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            42
        });
        assert_eq!(got, Some(42));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        // Persistent: every attempt panics — None after 1 + max_retries calls.
        let calls = std::sync::atomic::AtomicU32::new(0);
        let got: Option<i32> = run_isolated(fast, || {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("always");
        });
        assert_eq!(got, None);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        // Fail-fast policy: single attempt, like the pre-retry engine.
        let calls = std::sync::atomic::AtomicU32::new(0);
        let got: Option<i32> = run_isolated(
            RetryPolicy {
                max_retries: 0,
                base_delay_ms: 0,
                max_delay_ms: 0,
            },
            || {
                calls.fetch_add(1, Ordering::Relaxed);
                panic!("once");
            },
        );
        assert_eq!(got, None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stride_reduces_campaign_size() {
        let p = arc(PROTECTED);
        let full = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("ok");
        let strided = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                stride: 4,
                ..Default::default()
            },
        )
        .expect("ok");
        assert!(strided.total < full.total);
        assert!(strided.total > 0);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let p = arc(PROTECTED);
        let one = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("ok");
        let many = run_campaign(
            &p,
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .expect("ok");
        // Bit-identical, not just same counts: the work-stealing engine
        // reassembles violations in sorted-plan order for any thread count.
        assert_eq!(one, many);
    }

    /// The pre-refactor single-fault sweep, kept verbatim as a reference
    /// implementation: batch (non-streaming) classification, single thread.
    fn reference_sweep(program: &Arc<Program>, cfg: &CampaignConfig) -> CampaignReport {
        fn classify_batch(
            faulty: &mut Machine,
            golden_trace: &[(i64, i64)],
            golden_steps: u64,
            golden_final: &Machine,
        ) -> Verdict {
            let bound = golden_steps + 1;
            while faulty.status().is_running() && faulty.steps() < bound {
                step(faulty);
            }
            match faulty.status() {
                Status::Running => Verdict::Overrun,
                Status::Stuck(_) => Verdict::Stuck,
                Status::Fault => {
                    if golden_trace.starts_with(faulty.trace()) {
                        Verdict::Detected
                    } else {
                        Verdict::Sdc
                    }
                }
                Status::Halted => {
                    if faulty.trace() != golden_trace {
                        Verdict::Sdc
                    } else if sim_some_color(golden_final, faulty) {
                        Verdict::Masked
                    } else {
                        Verdict::DissimilarState
                    }
                }
            }
        }
        use talft_machine::{mutations, read_site, sites};
        let golden = golden_run(program, cfg).expect("golden halts");
        let n = golden.steps;
        let mut rep = CampaignReport {
            fault_order: 1,
            ..CampaignReport::default()
        };
        let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
        let mut at = frontier.steps();
        loop {
            if at.is_multiple_of(cfg.effective_stride()) {
                for site in sites(&frontier) {
                    let Some(old) = read_site(&frontier, site) else {
                        continue;
                    };
                    for value in mutations(old).into_iter().take(cfg.mutations_per_site) {
                        let mut faulty = frontier.clone();
                        assert!(inject(&mut faulty, site, value));
                        let verdict =
                            classify_batch(&mut faulty, &golden.trace, n, &golden.machine);
                        if verdict == Verdict::Detected {
                            rep.detection_latency
                                .record(faulty.steps().saturating_sub(at));
                        }
                        rep.absorb(Injection {
                            at_step: at,
                            site,
                            value,
                            followups: Vec::new(),
                            verdict,
                        });
                    }
                }
            }
            if at >= n || !frontier.status().is_running() {
                break;
            }
            step(&mut frontier);
            at = frontier.steps();
        }
        rep
    }

    /// Satellite (d): the plan-driven engine at `k = 1` reproduces the
    /// pre-refactor sweep exactly — same totals and same verdict counts —
    /// on both the protected and the unprotected store sequence.
    #[test]
    fn plan_engine_matches_reference_sweep_at_k1() {
        for src in [PROTECTED, UNPROTECTED] {
            let p = arc(src);
            let cfg = CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            };
            let reference = reference_sweep(&p, &cfg);
            let planned = run_campaign(&p, &cfg).expect("golden halts");
            assert_eq!(
                planned, reference,
                "engine diverged from the sweep on {src}"
            );
        }
    }

    /// The checkpointed work-stealing engine is verdict-for-verdict identical
    /// to the pre-checkpoint engine ([`run_plan_campaign_reference`]) on the
    /// same plan set — bit-identical reports at every thread count, on both
    /// a fault-tolerant and an SDC-exhibiting program.
    #[test]
    fn engine_matches_reference_engine_across_threads() {
        for src in [PROTECTED, UNPROTECTED] {
            let p = arc(src);
            let base = CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            };
            let golden = golden_run(&p, &base).expect("golden halts");
            let plans = single_fault_plans(&p, &base, &golden);
            let reference = run_plan_campaign_reference(&p, &base, &golden, &plans);
            for threads in [1usize, 3, 8] {
                let cfg = CampaignConfig {
                    threads,
                    ..base.clone()
                };
                let engine = run_plan_campaign(&p, &cfg, &golden, &plans);
                assert_eq!(
                    engine, reference,
                    "engine (threads={threads}) diverged from reference on {src}"
                );
            }
        }
    }

    /// Gated (`stop_on_first_violation`) campaigns are deterministic in the
    /// new engine: every thread count reproduces the sequential prefix ending
    /// at the globally first violation, matching the reference engine pinned
    /// to one thread (where its abort point is well defined).
    #[test]
    fn gated_engine_is_deterministic_across_threads() {
        let p = arc(UNPROTECTED);
        let base = CampaignConfig {
            threads: 1,
            stop_on_first_violation: true,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &base).expect("golden halts");
        let plans = single_fault_plans(&p, &base, &golden);
        let reference = run_plan_campaign_reference(&p, &base, &golden, &plans);
        assert!(!reference.fault_tolerant());
        for threads in [1usize, 3, 8] {
            let cfg = CampaignConfig {
                threads,
                ..base.clone()
            };
            let engine = run_plan_campaign(&p, &cfg, &golden, &plans);
            assert_eq!(
                engine, reference,
                "gated engine (threads={threads}) diverged from the sequential prefix"
            );
        }
    }

    /// The k=2 differential: sampled multi-fault plan sets run bit-identically
    /// on the new engine (any thread count) and the reference engine.
    #[test]
    fn k2_engine_matches_reference_engine() {
        let p = arc(PROTECTED);
        let base = CampaignConfig {
            threads: 1,
            pair_samples: 96,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &base).expect("golden halts");
        let plans = multi_fault_plans(&p, &base, &golden, 2);
        assert!(!plans.is_empty());
        let reference = run_plan_campaign_reference(&p, &base, &golden, &plans);
        for threads in [1usize, 3, 8] {
            let cfg = CampaignConfig {
                threads,
                ..base.clone()
            };
            let engine = run_plan_campaign(&p, &cfg, &golden, &plans);
            assert_eq!(engine, reference, "k=2 engine (threads={threads}) diverged");
        }
    }

    /// A coarse checkpoint stride changes *performance*, never reports: the
    /// engine at a non-default stride still equals the reference engine.
    #[test]
    fn checkpoint_stride_does_not_change_reports() {
        let p = arc(PROTECTED);
        for stride in [1u64, 3, 1000] {
            let cfg = CampaignConfig {
                threads: 2,
                checkpoint_stride: stride,
                ..CampaignConfig::default()
            };
            let golden = golden_run(&p, &cfg).expect("golden halts");
            let plans = single_fault_plans(&p, &cfg, &golden);
            let reference = run_plan_campaign_reference(&p, &cfg, &golden, &plans);
            let engine = run_plan_campaign(&p, &cfg, &golden, &plans);
            assert_eq!(engine, reference, "stride {stride} changed the report");
        }
    }

    /// The in-crate `.talft` fixtures halt in ~20 steps — before the sparse
    /// convergence cadence ever fires. This test compiles a Wile loop long
    /// enough (hundreds of golden steps) that the liveness-aware convergence
    /// early-exit genuinely triggers, then checks two things: the engine
    /// report is still bit-identical to the reference engine (the early exit
    /// is verdict-preserving, not just plausible), and the
    /// `campaign.converged_early` counter actually advanced (the path is
    /// exercised, not skipped).
    #[test]
    fn convergence_early_exit_fires_and_preserves_verdicts() {
        use talft_compiler::{compile, CompileOptions};
        let src = "output out[2];\nfunc main() {\n  var i = 0;\n  var acc = 0;\n  \
                   while (i < 48) {\n    acc = (acc + i * 3) & 1048575;\n    i = i + 1;\n  }\n  \
                   out[0] = acc;\n  out[1] = i;\n}\n";
        let c = compile(src, &CompileOptions::default()).expect("compiles");
        let cfg = CampaignConfig {
            threads: 2,
            stride: 7,
            mutations_per_site: 1,
            checkpoint_stride: 4,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&c.protected.program, &cfg).expect("golden halts");
        assert!(
            golden.steps > 2 * CONVERGENCE_CHECK_EVERY,
            "kernel too short ({} steps) to reach a convergence check",
            golden.steps
        );
        let plans = single_fault_plans(&c.protected.program, &cfg, &golden);
        let reference = run_plan_campaign_reference(&c.protected.program, &cfg, &golden, &plans);
        let prev = talft_obs::enabled();
        talft_obs::set_enabled(true);
        let before = CONVERGED.get();
        let engine = run_plan_campaign(&c.protected.program, &cfg, &golden, &plans);
        let fired = CONVERGED.get() - before;
        talft_obs::set_enabled(prev);
        assert_eq!(
            engine, reference,
            "convergence early exit changed a verdict"
        );
        assert_eq!(engine.sdc, 0, "Theorem 4: protected code has zero SDC");
        assert!(engine.masked > 0 && engine.detected > 0);
        assert!(
            fired > 0,
            "expected the convergence path to fire on a {}-step golden run",
            golden.steps
        );
    }

    /// Same seed, same program ⇒ bit-identical k=2 report; campaigns are
    /// reproducible end to end.
    #[test]
    fn k2_campaign_is_deterministic() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 3,
            pair_samples: 128,
            ..CampaignConfig::default()
        };
        let a = run_multi_campaign(&p, &cfg, 2).expect("ok");
        let b = run_multi_campaign(&p, &cfg, 2).expect("ok");
        assert_eq!(a, b);
        assert!(a.total > 0);
        assert_eq!(a.fault_order, 2);
        assert!(!a.within_fault_model());
    }

    /// A panicking injection is isolated per-plan and recorded as an
    /// `EngineError` instead of taking down the campaign.
    #[test]
    fn harness_panic_is_isolated_as_engine_error() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("ok");
        // Reg::r(200) is out of the register file — injecting it panics.
        let plans = vec![
            FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(200)), 7),
            FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(1)), 7),
        ];
        let rep = run_plan_campaign(&p, &cfg, &golden, &plans);
        assert_eq!(rep.total, 2, "the campaign survives the panic");
        assert_eq!(rep.engine_errors, 1);
        assert!(!rep.fault_tolerant());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.verdict == Verdict::EngineError));
    }

    #[test]
    fn stop_on_first_violation_short_circuits() {
        let p = arc(UNPROTECTED);
        let cfg = CampaignConfig {
            threads: 1,
            stop_on_first_violation: true,
            ..CampaignConfig::default()
        };
        let full = run_campaign(
            &p,
            &CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .expect("ok");
        let gated = run_campaign(&p, &cfg).expect("ok");
        assert!(!gated.fault_tolerant());
        assert!(
            gated.total < full.total,
            "gated: {} full: {}",
            gated.total,
            full.total
        );
    }

    #[test]
    fn report_merge_and_coverage() {
        let mut a = CampaignReport::default();
        a.absorb(Injection {
            at_step: 0,
            site: FaultSite::Reg(talft_isa::Reg::r(0)),
            value: 1,
            followups: Vec::new(),
            verdict: Verdict::Detected,
        });
        let mut b = CampaignReport::default();
        b.absorb(Injection {
            at_step: 1,
            site: FaultSite::Reg(talft_isa::Reg::r(1)),
            value: 2,
            followups: Vec::new(),
            verdict: Verdict::Sdc,
        });
        a.merge(b);
        assert_eq!(a.total, 2);
        assert_eq!(a.detected, 1);
        assert_eq!(a.sdc, 1);
        assert!(!a.fault_tolerant());
        assert!((a.coverage() - 0.5).abs() < 1e-9);
        assert_eq!(a.violations.len(), 1);
    }

    /// Satellite (b): the 32-counterexample cap is accounted, not silent.
    #[test]
    fn violation_overflow_is_counted() {
        let mut rep = CampaignReport::default();
        for i in 0..40 {
            rep.absorb(Injection {
                at_step: i,
                site: FaultSite::Reg(talft_isa::Reg::r(0)),
                value: 1,
                followups: Vec::new(),
                verdict: Verdict::Sdc,
            });
        }
        assert_eq!(rep.sdc, 40);
        assert_eq!(rep.violations.len(), 32);
        assert_eq!(rep.violations_truncated, 8);
        let mut merged = CampaignReport::default();
        merged.merge(rep.clone());
        merged.merge(rep);
        assert_eq!(merged.violations.len(), 32);
        // 8 carried per merge, plus 32 dropped when the second batch found
        // the list already full
        assert_eq!(merged.violations_truncated, 8 + 8 + 32);
    }

    #[test]
    fn verdict_violation_classification() {
        assert!(!Verdict::Masked.is_violation());
        assert!(!Verdict::Detected.is_violation());
        assert!(Verdict::Sdc.is_violation());
        assert!(Verdict::Stuck.is_violation());
        assert!(Verdict::Overrun.is_violation());
        assert!(Verdict::DissimilarState.is_violation());
        assert!(Verdict::EngineError.is_violation());
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LatencyHistogram::default();
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(9);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 3.75).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 2), (8, 1)]);
    }

    #[test]
    fn detected_faults_have_bounded_latency() {
        // Theorem 4's bound: a detected fault fires within n+1 steps.
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = std::sync::Arc::new(assemble(src).expect("ok").program);
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let golden = golden_run(&p, &cfg).expect("halts");
        let rep = run_campaign_against(&p, &cfg, &golden);
        assert!(rep.detected > 0);
        assert!(rep.detection_latency.max <= golden.steps + 1);
        assert!(rep.detection_latency.mean() > 0.0);
    }
}
