//! Single-event-upset fault-injection campaigns — the dynamic validation of
//! the paper's metatheory (§4) on concrete programs.
//!
//! **Theorem 4 (Fault Tolerance)**, restated operationally: take a fault-free
//! run of `n` steps with output trace `s`. Inject *one* fault (any
//! `reg-zap`/`Q-zap` transition) at any point. Then the faulty run, within
//! `n + 1` steps, either
//!
//! * completes with output trace **equal** to `s` and a final state similar
//!   (`sim_c`) to the fault-free one — the fault was *masked*; or
//! * reaches the hardware `fault` state with a trace that is a **prefix** of
//!   `s` — the fault was *detected* before corrupt data escaped.
//!
//! Anything else — a deviating trace (**silent data corruption**), a stuck
//! state (Progress violation), or an over-long run — is a counterexample.
//! [`run_campaign`] enumerates the fault space (every dynamic step × every
//! site × a set of corrupted values) and classifies every injection.
//!
//! For *well-typed* programs the campaign must report zero violations; for
//! the unprotected baseline it measurably reports SDC — the contrast the
//! paper's evaluation is built on. Corollary 3 (**No False Positives**) is
//! checked by [`golden_run`]: the fault-free run of a well-typed program
//! never signals `fault`.

#![warn(missing_docs)]

pub mod recovery;

pub use recovery::{run_with_recovery, PlannedFault, RecoveryResult};

use std::sync::Arc;

use talft_isa::Program;
use talft_machine::{
    inject, mutations, read_site, sim_some_color, sites, step, FaultSite, Machine, OobLoadPolicy,
    Status,
};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden run.
    pub max_steps: u64,
    /// Cap on corrupted values tried per site (from [`mutations`]).
    pub mutations_per_site: usize,
    /// Inject before every `stride`-th step (1 = exhaustive in time).
    pub stride: u64,
    /// Worker threads.
    pub threads: usize,
    /// Out-of-bounds-load policy for all runs.
    pub oob: OobLoadPolicy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            max_steps: 2_000_000,
            mutations_per_site: 3,
            stride: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            oob: OobLoadPolicy::Value(0x6EAD_BEEF),
        }
    }
}

/// Classification of one injection, per Theorem 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Run completed with the identical trace and a `sim_c`-similar state.
    Masked,
    /// Hardware signalled `fault`; the emitted trace is a prefix of golden.
    Detected,
    /// **Silent data corruption**: the trace deviated from golden.
    Sdc,
    /// The machine got stuck (Progress violation).
    Stuck,
    /// Ran past the `n + 1` bound without terminating.
    Overrun,
    /// Completed with the right trace but a dissimilar final state
    /// (similarity clause of Theorem 4 violated).
    DissimilarState,
}

impl Verdict {
    /// Whether this verdict violates Theorem 4.
    #[must_use]
    pub fn is_violation(self) -> bool {
        !matches!(self, Verdict::Masked | Verdict::Detected)
    }
}

/// One classified injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Steps taken before the fault transition.
    pub at_step: u64,
    /// Where the fault struck.
    pub site: FaultSite,
    /// The corrupted value written.
    pub value: i64,
    /// Classification.
    pub verdict: Verdict,
}

/// Histogram of steps from injection to hardware detection (log₂ buckets:
/// bucket `k` counts latencies in `[2ᵏ, 2ᵏ⁺¹)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 24],
    /// Largest observed detection latency.
    pub max: u64,
    sum: u64,
    count: u64,
}

impl LatencyHistogram {
    /// Record one detection latency (in machine steps).
    pub fn record(&mut self, latency: u64) {
        let k = (64 - latency.max(1).leading_zeros() as usize - 1).min(23);
        self.buckets[k] += 1;
        self.max = self.max.max(latency);
        self.sum += latency;
        self.count += 1;
    }

    /// Mean detection latency.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate non-empty `(bucket_lo, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }

    fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Aggregate campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total injections performed.
    pub total: u64,
    /// Masked count.
    pub masked: u64,
    /// Detected count.
    pub detected: u64,
    /// SDC count.
    pub sdc: u64,
    /// Other violations (stuck/overrun/dissimilar).
    pub other_violations: u64,
    /// Up to 32 concrete counterexamples.
    pub violations: Vec<Injection>,
    /// Steps from injection to hardware detection, over detected faults.
    pub detection_latency: LatencyHistogram,
}

impl CampaignReport {
    /// Whether the program passed (no Theorem 4 violations at all).
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.sdc == 0 && self.other_violations == 0
    }

    /// Detection coverage among non-masked faults (1.0 when fault tolerant).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let exposed = self.detected + self.sdc + self.other_violations;
        if exposed == 0 {
            1.0
        } else {
            self.detected as f64 / exposed as f64
        }
    }

    fn absorb(&mut self, inj: Injection) {
        self.total += 1;
        match inj.verdict {
            Verdict::Masked => self.masked += 1,
            Verdict::Detected => self.detected += 1,
            Verdict::Sdc => {
                self.sdc += 1;
                self.keep(inj);
            }
            _ => {
                self.other_violations += 1;
                self.keep(inj);
            }
        }
    }

    fn keep(&mut self, inj: Injection) {
        if self.violations.len() < 32 {
            self.violations.push(inj);
        }
    }

    fn merge(&mut self, other: CampaignReport) {
        self.total += other.total;
        self.masked += other.masked;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.other_violations += other.other_violations;
        self.detection_latency.merge(&other.detection_latency);
        for v in other.violations {
            self.keep(v);
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Final machine state.
    pub machine: Machine,
    /// Output trace.
    pub trace: Vec<(i64, i64)>,
    /// Steps to termination.
    pub steps: u64,
    /// Terminal status.
    pub status: Status,
}

/// Run the fault-free execution (also the Corollary 3 check: a well-typed
/// program must end `Halted`, never `Fault`).
#[must_use]
pub fn golden_run(program: &Arc<Program>, cfg: &CampaignConfig) -> Golden {
    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    while m.status().is_running() && m.steps() < cfg.max_steps {
        step(&mut m);
    }
    Golden {
        trace: m.trace().to_vec(),
        steps: m.steps(),
        status: m.status(),
        machine: m,
    }
}

/// Run the full single-fault campaign.
#[must_use]
pub fn run_campaign(program: &Arc<Program>, cfg: &CampaignConfig) -> CampaignReport {
    let golden = golden_run(program, cfg);
    run_campaign_against(program, cfg, &golden)
}

/// Run the campaign against a precomputed golden run.
#[must_use]
pub fn run_campaign_against(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> CampaignReport {
    let n = golden.steps;
    let threads = cfg.threads.max(1);
    let chunk = n / threads as u64 + 1;
    let mut report = CampaignReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t as u64 * chunk;
            let hi = (lo + chunk).min(n + 1);
            if lo > n {
                continue;
            }
            let program = Arc::clone(program);
            let golden_trace = &golden.trace;
            let golden_machine = &golden.machine;
            handles.push(scope.spawn(move || {
                let mut rep = CampaignReport::default();
                // Advance a frontier machine to the chunk start.
                let mut frontier = Machine::boot(Arc::clone(&program)).with_oob_policy(cfg.oob);
                while frontier.steps() < lo && frontier.status().is_running() {
                    step(&mut frontier);
                }
                let mut at = frontier.steps();
                loop {
                    if at % cfg.stride == 0 {
                        for site in sites(&frontier) {
                            let Some(old) = read_site(&frontier, site) else {
                                continue;
                            };
                            for value in
                                mutations(old).into_iter().take(cfg.mutations_per_site)
                            {
                                let mut faulty = frontier.clone();
                                if !inject(&mut faulty, site, value) {
                                    continue;
                                }
                                let injected_at = faulty.steps();
                                let verdict =
                                    classify(&mut faulty, golden_trace, n, golden_machine);
                                if verdict == Verdict::Detected {
                                    rep.detection_latency
                                        .record(faulty.steps().saturating_sub(injected_at));
                                }
                                rep.absorb(Injection { at_step: at, site, value, verdict });
                            }
                        }
                    }
                    if at + 1 >= hi || !frontier.status().is_running() {
                        break;
                    }
                    step(&mut frontier);
                    at = frontier.steps();
                }
                rep
            }));
        }
        for h in handles {
            report.merge(h.join().expect("campaign worker panicked"));
        }
    });
    report
}

/// Classify one faulty continuation per Theorem 4 (the fault transition has
/// already been applied to `faulty`).
fn classify(
    faulty: &mut Machine,
    golden_trace: &[(i64, i64)],
    golden_steps: u64,
    golden_final: &Machine,
) -> Verdict {
    // The faulty run gets the golden step count plus slack for the fault's
    // own transition.
    let bound = golden_steps + 1;
    while faulty.status().is_running() && faulty.steps() < bound {
        step(faulty);
    }
    match faulty.status() {
        Status::Running => Verdict::Overrun,
        Status::Stuck(_) => Verdict::Stuck,
        Status::Fault => {
            if golden_trace.starts_with(faulty.trace()) {
                Verdict::Detected
            } else {
                Verdict::Sdc
            }
        }
        Status::Halted => {
            if faulty.trace() != golden_trace {
                Verdict::Sdc
            } else if sim_some_color(golden_final, faulty) {
                Verdict::Masked
            } else {
                Verdict::DissimilarState
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    fn arc(src: &str) -> Arc<Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const PROTECTED: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    /// The paper's protected store sequence: every injected fault is masked
    /// or detected — never SDC.
    #[test]
    fn protected_store_sequence_is_fault_tolerant() {
        let p = arc(PROTECTED);
        let cfg = CampaignConfig { threads: 2, ..CampaignConfig::default() };
        let rep = run_campaign(&p, &cfg);
        assert!(rep.total > 100, "campaign too small: {}", rep.total);
        assert!(rep.fault_tolerant(), "violations: {:?}", rep.violations);
        assert!(rep.detected > 0, "some faults must be detected");
        assert!(rep.masked > 0, "some faults must be masked");
    }

    /// The §2.2 CSE miscompilation: same-register store pair. The checker
    /// rejects it, and the campaign finds real SDC — the two tools agree.
    #[test]
    fn unprotected_store_exhibits_sdc() {
        let p = arc(r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#);
        let cfg = CampaignConfig { threads: 2, ..CampaignConfig::default() };
        let rep = run_campaign(&p, &cfg);
        assert!(rep.sdc > 0, "expected SDC in the unprotected idiom: {rep:?}");
    }

    #[test]
    fn golden_run_has_no_false_positives() {
        let p = arc(PROTECTED);
        let g = golden_run(&p, &CampaignConfig::default());
        assert_eq!(g.status, Status::Halted);
        assert_eq!(g.trace, vec![(4096, 5)]);
    }

    #[test]
    fn stride_reduces_campaign_size() {
        let p = arc(PROTECTED);
        let full = run_campaign(&p, &CampaignConfig { threads: 1, ..Default::default() });
        let strided = run_campaign(
            &p,
            &CampaignConfig { threads: 1, stride: 4, ..Default::default() },
        );
        assert!(strided.total < full.total);
        assert!(strided.total > 0);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let p = arc(PROTECTED);
        let one = run_campaign(&p, &CampaignConfig { threads: 1, ..Default::default() });
        let many = run_campaign(&p, &CampaignConfig { threads: 4, ..Default::default() });
        assert_eq!(one.total, many.total);
        assert_eq!(one.masked, many.masked);
        assert_eq!(one.detected, many.detected);
        assert_eq!(one.sdc, many.sdc);
    }

    #[test]
    fn report_merge_and_coverage() {
        let mut a = CampaignReport::default();
        a.absorb(Injection {
            at_step: 0,
            site: FaultSite::Reg(talft_isa::Reg::r(0)),
            value: 1,
            verdict: Verdict::Detected,
        });
        let mut b = CampaignReport::default();
        b.absorb(Injection {
            at_step: 1,
            site: FaultSite::Reg(talft_isa::Reg::r(1)),
            value: 2,
            verdict: Verdict::Sdc,
        });
        a.merge(b);
        assert_eq!(a.total, 2);
        assert_eq!(a.detected, 1);
        assert_eq!(a.sdc, 1);
        assert!(!a.fault_tolerant());
        assert!((a.coverage() - 0.5).abs() < 1e-9);
        assert_eq!(a.violations.len(), 1);
    }

    #[test]
    fn verdict_violation_classification() {
        assert!(!Verdict::Masked.is_violation());
        assert!(!Verdict::Detected.is_violation());
        assert!(Verdict::Sdc.is_violation());
        assert!(Verdict::Stuck.is_violation());
        assert!(Verdict::Overrun.is_violation());
        assert!(Verdict::DissimilarState.is_violation());
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LatencyHistogram::default();
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(9);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 3.75).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 2), (8, 1)]);
    }

    #[test]
    fn detected_faults_have_bounded_latency() {
        // Theorem 4's bound: a detected fault fires within n+1 steps.
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = std::sync::Arc::new(assemble(src).expect("ok").program);
        let cfg = CampaignConfig { threads: 1, ..CampaignConfig::default() };
        let golden = golden_run(&p, &cfg);
        let rep = run_campaign_against(&p, &cfg, &golden);
        assert!(rep.detected > 0);
        assert!(rep.detection_latency.max <= golden.steps + 1);
        assert!(rep.detection_latency.mean() > 0.0);
    }
}
