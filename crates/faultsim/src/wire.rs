//! Wire format: **full-fidelity** JSON encoding of campaign results, for
//! durable checkpoints and cross-process shard reports.
//!
//! The bench-side `campaign_json` (in `talft-bench`) is a *display* format —
//! derived ratios, no counterexample payloads. This module is the opposite
//! contract: every field of [`CampaignReport`] round-trips **bit-exactly**
//! (`from_json(to_json(r)) == r`), because the shard/resume layer's central
//! invariant — merged shard reports are bit-identical to a whole-grid run —
//! is only checkable across process boundaries if serialization is lossless.
//!
//! Schema tags: `talft.campaign-report.v1` ([`report_to_json`]),
//! `talft.checkpoint.v1` ([`crate::CampaignCheckpoint::to_json`]),
//! `talft.shard-report.v1` ([`crate::ShardPart::to_json`]). Keys are only
//! ever added, never renamed, within a version (the same stability contract
//! as the bench schemas).

use talft_isa::Reg;
use talft_machine::FaultSite;
use talft_obs::Json;

use crate::{CampaignReport, Injection, LatencyHistogram, Strike, Verdict};

/// Decode failure: a human-readable message naming the offending key.
pub type WireError = String;

/// Fetch a required key from a JSON object.
///
/// # Errors
///
/// A message naming the missing key.
pub fn need<'a>(j: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    j.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

/// Fetch a required `u64` field.
///
/// # Errors
///
/// A message naming the missing or mistyped key.
pub fn need_u64(j: &Json, key: &str) -> Result<u64, WireError> {
    need(j, key)?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} is not a u64"))
}

fn need_i64(j: &Json, key: &str) -> Result<i64, WireError> {
    match need(j, key)? {
        Json::I64(v) => Ok(*v),
        Json::U64(v) => i64::try_from(*v).map_err(|_| format!("key {key:?} overflows i64")),
        _ => Err(format!("key {key:?} is not an i64")),
    }
}

/// Fetch a required string field.
///
/// # Errors
///
/// A message naming the missing or mistyped key.
pub fn need_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, WireError> {
    need(j, key)?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

/// Fetch a required bool field.
///
/// # Errors
///
/// A message naming the missing or mistyped key.
pub fn need_bool(j: &Json, key: &str) -> Result<bool, WireError> {
    match need(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("key {key:?} is not a bool")),
    }
}

fn need_array<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    need(j, key)?
        .as_array()
        .ok_or_else(|| format!("key {key:?} is not an array"))
}

/// Verify the document's `"schema"` tag.
///
/// # Errors
///
/// A message with the expected and actual tags.
pub fn expect_schema(j: &Json, schema: &str) -> Result<(), WireError> {
    let got = need_str(j, "schema")?;
    if got == schema {
        Ok(())
    } else {
        Err(format!("schema mismatch: expected {schema:?}, got {got:?}"))
    }
}

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Masked => "masked",
        Verdict::Detected => "detected",
        Verdict::Sdc => "sdc",
        Verdict::Stuck => "stuck",
        Verdict::Overrun => "overrun",
        Verdict::DissimilarState => "dissimilar_state",
        Verdict::EngineError => "engine_error",
    }
}

fn verdict_from(name: &str) -> Result<Verdict, WireError> {
    Ok(match name {
        "masked" => Verdict::Masked,
        "detected" => Verdict::Detected,
        "sdc" => Verdict::Sdc,
        "stuck" => Verdict::Stuck,
        "overrun" => Verdict::Overrun,
        "dissimilar_state" => Verdict::DissimilarState,
        "engine_error" => Verdict::EngineError,
        other => return Err(format!("unknown verdict {other:?}")),
    })
}

fn site_to_json(site: FaultSite) -> Json {
    match site {
        FaultSite::Reg(r) => Json::obj([
            ("kind", Json::str("reg")),
            ("reg", Json::str(r.to_string())),
        ]),
        FaultSite::QueueAddr(i) => Json::obj([
            ("kind", Json::str("queue_addr")),
            ("index", Json::U64(i as u64)),
        ]),
        FaultSite::QueueVal(i) => Json::obj([
            ("kind", Json::str("queue_val")),
            ("index", Json::U64(i as u64)),
        ]),
    }
}

fn site_from_json(j: &Json) -> Result<FaultSite, WireError> {
    let idx = |j: &Json| -> Result<usize, WireError> {
        usize::try_from(need_u64(j, "index")?).map_err(|_| "queue index overflow".to_owned())
    };
    match need_str(j, "kind")? {
        "reg" => {
            let name = need_str(j, "reg")?;
            Reg::parse(name)
                .map(FaultSite::Reg)
                .ok_or_else(|| format!("unknown register {name:?}"))
        }
        "queue_addr" => Ok(FaultSite::QueueAddr(idx(j)?)),
        "queue_val" => Ok(FaultSite::QueueVal(idx(j)?)),
        other => Err(format!("unknown fault-site kind {other:?}")),
    }
}

fn strike_to_json(s: &Strike) -> Json {
    Json::obj([
        ("at_step", Json::U64(s.at_step)),
        ("site", site_to_json(s.site)),
        ("value", Json::I64(s.value)),
    ])
}

fn strike_from_json(j: &Json) -> Result<Strike, WireError> {
    Ok(Strike {
        at_step: need_u64(j, "at_step")?,
        site: site_from_json(need(j, "site")?)?,
        value: need_i64(j, "value")?,
    })
}

fn injection_to_json(inj: &Injection) -> Json {
    Json::obj([
        ("at_step", Json::U64(inj.at_step)),
        ("site", site_to_json(inj.site)),
        ("value", Json::I64(inj.value)),
        (
            "followups",
            Json::Array(inj.followups.iter().map(strike_to_json).collect()),
        ),
        ("verdict", Json::str(verdict_name(inj.verdict))),
    ])
}

fn injection_from_json(j: &Json) -> Result<Injection, WireError> {
    Ok(Injection {
        at_step: need_u64(j, "at_step")?,
        site: site_from_json(need(j, "site")?)?,
        value: need_i64(j, "value")?,
        followups: need_array(j, "followups")?
            .iter()
            .map(strike_from_json)
            .collect::<Result<_, _>>()?,
        verdict: verdict_from(need_str(j, "verdict")?)?,
    })
}

fn latency_to_json(h: &LatencyHistogram) -> Json {
    Json::obj([
        (
            "buckets",
            Json::Array(h.buckets.iter().map(|&c| Json::U64(c)).collect()),
        ),
        ("max", Json::U64(h.max)),
        ("sum", Json::U64(h.sum)),
        ("count", Json::U64(h.count)),
    ])
}

fn latency_from_json(j: &Json) -> Result<LatencyHistogram, WireError> {
    let raw = need_array(j, "buckets")?;
    let mut h = LatencyHistogram {
        max: need_u64(j, "max")?,
        sum: need_u64(j, "sum")?,
        count: need_u64(j, "count")?,
        ..LatencyHistogram::default()
    };
    if raw.len() != h.buckets.len() {
        return Err(format!(
            "latency histogram has {} buckets, expected {}",
            raw.len(),
            h.buckets.len()
        ));
    }
    for (slot, v) in h.buckets.iter_mut().zip(raw) {
        *slot = v.as_u64().ok_or("latency bucket is not a u64")?;
    }
    Ok(h)
}

/// Encode a [`CampaignReport`] losslessly (`talft.campaign-report.v1`).
#[must_use]
pub fn report_to_json(r: &CampaignReport) -> Json {
    Json::obj([
        ("schema", Json::str("talft.campaign-report.v1")),
        ("total", Json::U64(r.total)),
        ("masked", Json::U64(r.masked)),
        ("detected", Json::U64(r.detected)),
        ("sdc", Json::U64(r.sdc)),
        ("other_violations", Json::U64(r.other_violations)),
        ("engine_errors", Json::U64(r.engine_errors)),
        (
            "violations",
            Json::Array(r.violations.iter().map(injection_to_json).collect()),
        ),
        ("violations_truncated", Json::U64(r.violations_truncated)),
        ("incomplete_plans", Json::U64(r.incomplete_plans)),
        ("fault_order", Json::U64(u64::from(r.fault_order))),
        ("stopped_early", Json::Bool(r.stopped_early)),
        ("detection_latency", latency_to_json(&r.detection_latency)),
    ])
}

/// Decode a [`CampaignReport`]; inverse of [`report_to_json`].
///
/// # Errors
///
/// A message naming the missing/ill-typed key on malformed documents.
pub fn report_from_json(j: &Json) -> Result<CampaignReport, WireError> {
    expect_schema(j, "talft.campaign-report.v1")?;
    Ok(CampaignReport {
        total: need_u64(j, "total")?,
        masked: need_u64(j, "masked")?,
        detected: need_u64(j, "detected")?,
        sdc: need_u64(j, "sdc")?,
        other_violations: need_u64(j, "other_violations")?,
        engine_errors: need_u64(j, "engine_errors")?,
        violations: need_array(j, "violations")?
            .iter()
            .map(injection_from_json)
            .collect::<Result<_, _>>()?,
        violations_truncated: need_u64(j, "violations_truncated")?,
        incomplete_plans: need_u64(j, "incomplete_plans")?,
        fault_order: u32::try_from(need_u64(j, "fault_order")?)
            .map_err(|_| "fault_order overflows u32".to_owned())?,
        stopped_early: need_bool(j, "stopped_early")?,
        detection_latency: latency_from_json(need(j, "detection_latency")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_report() -> CampaignReport {
        let mut r = CampaignReport {
            fault_order: 2,
            ..CampaignReport::default()
        };
        for i in 0..40 {
            r.absorb(Injection {
                at_step: i,
                site: match i % 3 {
                    0 => FaultSite::Reg(Reg::r(u16::try_from(i).unwrap())),
                    1 => FaultSite::QueueAddr(usize::try_from(i).unwrap()),
                    _ => FaultSite::QueueVal(2),
                },
                value: -(i as i64) * 7,
                followups: vec![Strike {
                    at_step: i + 5,
                    site: FaultSite::Reg(Reg::parse("pcB").unwrap()),
                    value: 3,
                }],
                verdict: match i % 5 {
                    0 => Verdict::Sdc,
                    1 => Verdict::Masked,
                    2 => Verdict::Stuck,
                    3 => Verdict::EngineError,
                    _ => Verdict::Detected,
                },
            });
        }
        r.detection_latency.record(1);
        r.detection_latency.record(300);
        r.incomplete_plans = 3;
        r
    }

    /// The module's whole contract: decode(encode(r)) == r, bit for bit,
    /// including the counterexample payloads and histogram internals, and
    /// surviving an actual text round-trip through the JSON parser.
    #[test]
    fn report_roundtrips_bit_exactly() {
        let r = busy_report();
        let text = report_to_json(&r).to_string();
        let back = report_from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn default_report_roundtrips() {
        let r = CampaignReport::default();
        let back = report_from_json(&report_to_json(&r)).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn every_site_and_verdict_roundtrips() {
        for site in [
            FaultSite::Reg(Reg::r(0)),
            FaultSite::Reg(Reg::parse("d").unwrap()),
            FaultSite::Reg(Reg::parse("pcG").unwrap()),
            FaultSite::QueueAddr(9),
            FaultSite::QueueVal(0),
        ] {
            assert_eq!(site_from_json(&site_to_json(site)), Ok(site));
        }
        for v in [
            Verdict::Masked,
            Verdict::Detected,
            Verdict::Sdc,
            Verdict::Stuck,
            Verdict::Overrun,
            Verdict::DissimilarState,
            Verdict::EngineError,
        ] {
            assert_eq!(verdict_from(verdict_name(v)), Ok(v));
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(report_from_json(&Json::obj([("schema", Json::str("nope"))])).is_err());
        let mut j = report_to_json(&CampaignReport::default());
        if let Json::Object(fields) = &mut j {
            fields.retain(|(k, _)| k != "total");
        }
        let err = report_from_json(&j).expect_err("missing key");
        assert!(err.contains("total"), "{err}");
    }
}
