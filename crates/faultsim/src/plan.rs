//! Fault **plans**: ordered multi-strike injection schedules, and the
//! samplers that generate them.
//!
//! A [`FaultPlan`] is an ordered list of [`Strike`]s `{at_step, site,
//! value}`. The paper's Theorem 4 is indexed to *exactly one* fault per run
//! — the classic exhaustive campaign is the `k = 1` instantiation
//! ([`single_fault_plans`], every strided dynamic step × every site × a set
//! of corrupted values). Beyond that the guarantee has a *boundary*, and
//! plans are how the engine explores it:
//!
//! * [`multi_fault_plans`] draws a deterministic, seed-reproducible
//!   **stratified sample** of the `(step × site)²` space (the exhaustive
//!   double-fault space is quadratic in the run length — intractable), half
//!   of it **correlated**: two upsets writing the *same* corrupted value
//!   into a green register and a blue register that carried the same
//!   payload within a small window. That is precisely the coordinated
//!   pattern that defeats dual-modular comparison (§2.1's "single upset
//!   event" assumption made executable), so the sample quantifies the
//!   boundary instead of merely missing it.

use std::collections::VecDeque;
use std::sync::Arc;

use talft_isa::{Color, Program};
use talft_machine::{colored_reg_sites, mutations, read_site, sites, step, FaultSite, Machine};
use talft_testutil::SplitMix64;

use crate::{CampaignConfig, Golden};

/// One scheduled upset: write `value` at `site` once the run has taken
/// exactly `at_step` steps (i.e. the fault transition `S ─→1 S'` applied to
/// the state after `at_step` steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Strike {
    /// Steps taken before the fault transition.
    pub at_step: u64,
    /// Where the fault strikes.
    pub site: FaultSite,
    /// The corrupted value written.
    pub value: i64,
}

/// An ordered multi-fault injection schedule (strikes sorted by `at_step`;
/// ties = same-state coordinated strikes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The strikes, sorted by `at_step`.
    pub strikes: Vec<Strike>,
}

impl FaultPlan {
    /// Build a plan, sorting the strikes by step (stable, so same-step
    /// strikes keep their given order).
    #[must_use]
    pub fn new(mut strikes: Vec<Strike>) -> Self {
        strikes.sort_by_key(|s| s.at_step);
        FaultPlan { strikes }
    }

    /// The classic single-fault plan.
    #[must_use]
    pub fn single(at_step: u64, site: FaultSite, value: i64) -> Self {
        FaultPlan {
            strikes: vec![Strike {
                at_step,
                site,
                value,
            }],
        }
    }

    /// Step of the earliest strike (0 for an empty plan).
    #[must_use]
    pub fn first_step(&self) -> u64 {
        self.strikes.first().map_or(0, |s| s.at_step)
    }

    /// The fault multiplicity `k`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.strikes.len()
    }
}

/// The exhaustive-in-sites, strided-in-time single-fault plan set — the
/// `k = 1` instantiation the legacy sweep performed implicitly: for every
/// dynamic step `≡ 0 (mod stride)` of the golden run (including the final,
/// halted state), every fault site of that state, and up to
/// `mutations_per_site` corrupted values.
#[must_use]
pub fn single_fault_plans(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> Vec<FaultPlan> {
    let stride = cfg.effective_stride();
    let n = golden.steps;
    let mut plans = Vec::new();
    let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    let mut at = frontier.steps();
    loop {
        if at.is_multiple_of(stride) {
            for site in sites(&frontier) {
                let Some(old) = read_site(&frontier, site) else {
                    continue;
                };
                for value in mutations(old).into_iter().take(cfg.mutations_per_site) {
                    plans.push(FaultPlan::single(at, site, value));
                }
            }
        }
        if at >= n || !frontier.status().is_running() {
            break;
        }
        step(&mut frontier);
        at = frontier.steps();
    }
    plans
}

/// The **exhaustive** `k = 2` plan set over a golden run: every unordered
/// pair of distinct strided strikes (every step `≡ 0 (mod stride)`, every
/// site, up to `mutations_per_site` values — the same strike universe as
/// [`single_fault_plans`]), each pair step-ordered. Quadratic in the strike
/// count by construction: meant for *small* kernels, where it turns the
/// sampled k=2 boundary of [`multi_fault_plans`] into a complete grid the
/// static pair analyzer can be validated against cell by cell.
#[must_use]
pub fn exhaustive_pair_plans(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
) -> Vec<FaultPlan> {
    let stride = cfg.effective_stride();
    let n = golden.steps;
    let mut strikes = Vec::new();
    let mut frontier = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    let mut at = frontier.steps();
    loop {
        if at.is_multiple_of(stride) {
            for site in sites(&frontier) {
                let Some(old) = read_site(&frontier, site) else {
                    continue;
                };
                for value in mutations(old).into_iter().take(cfg.mutations_per_site) {
                    strikes.push(Strike {
                        at_step: at,
                        site,
                        value,
                    });
                }
            }
        }
        if at >= n || !frontier.status().is_running() {
            break;
        }
        step(&mut frontier);
        at = frontier.steps();
    }
    let mut plans = Vec::with_capacity(strikes.len() * (strikes.len().saturating_sub(1)) / 2);
    for (i, &a) in strikes.iter().enumerate() {
        for &b in &strikes[i + 1..] {
            // Strikes were collected in step order, so `a` is the earlier
            // (or tied) strike; `FaultPlan::new` keeps that order stable.
            plans.push(FaultPlan::new(vec![a, b]));
        }
    }
    plans
}

/// A reservoir sampler: uniform fixed-size sample of an unbounded stream.
struct Reservoir<T> {
    cap: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T: Copy> Reservoir<T> {
    fn new(cap: usize) -> Self {
        Reservoir {
            cap,
            seen: 0,
            items: Vec::new(),
        }
    }

    fn offer(&mut self, item: T, rng: &mut SplitMix64) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(item);
        } else if self.cap > 0 && rng.below(self.seen) < self.cap as u64 {
            let i = rng.index(self.cap);
            self.items[i] = item;
        }
    }
}

/// Number of time strata per axis of the `(step × step)` grid.
const TIME_BINS: usize = 8;
/// Candidate-strike reservoir capacity per time stratum.
const BIN_CAP: usize = 96;
/// Uniform candidate strikes drawn per visited step.
const CANDIDATES_PER_STEP: usize = 2;

/// Deterministic, seed-reproducible stratified sample of `k`-fault plans
/// over the golden run (`k ≥ 2`; for `k = 1` use [`single_fault_plans`]).
///
/// Two strata families, split roughly half/half of `cfg.pair_samples`:
///
/// * **uniform**: the run is cut into `TIME_BINS` (8) time bins; per ordered
///   bin pair `(i ≤ j)` an equal quota of `(strike₁, strike₂)` pairs is
///   drawn from per-bin reservoirs of uniformly sampled `(step, site,
///   value)` candidates — coverage of the whole quadratic space;
/// * **correlated**: cross-color same-payload pairs within
///   `cfg.pair_window` steps, both corrupted to the *same* value — the
///   coordinated-SEU pattern that can defeat the dual-modular comparison.
///
/// For `k > 2`, each sampled pair is extended with `k − 2` further uniform
/// strikes. The same `cfg.seed` always yields the same plan set.
#[must_use]
pub fn multi_fault_plans(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    k: u32,
) -> Vec<FaultPlan> {
    if k <= 1 {
        return single_fault_plans(program, cfg, golden);
    }
    let n = golden.steps;
    if n == 0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(cfg.seed);
    let target = cfg.pair_samples.max(2);
    let correlated_target = target / 2;

    let bin_w = n.div_ceil(TIME_BINS as u64).max(1);
    let bin_of = |s: u64| ((s / bin_w) as usize).min(TIME_BINS - 1);
    let mut bins: Vec<Reservoir<Strike>> =
        (0..TIME_BINS).map(|_| Reservoir::new(BIN_CAP)).collect();
    let mut correlated: Reservoir<(Strike, Strike)> = Reservoir::new(correlated_target);
    // Sliding window of green-register payloads from the last
    // `cfg.pair_window` steps, for correlated-pair search.
    let mut window: VecDeque<(u64, Vec<(FaultSite, i64)>)> = VecDeque::new();

    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(cfg.oob);
    while m.status().is_running() && m.steps() < n {
        let s = m.steps();
        // Uniform candidates at this step.
        let all_sites = sites(&m);
        for _ in 0..CANDIDATES_PER_STEP {
            let site = *rng.pick(&all_sites);
            if let Some(old) = read_site(&m, site) {
                let muts = mutations(old);
                let value = *rng.pick(&muts);
                bins[bin_of(s)].offer(
                    Strike {
                        at_step: s,
                        site,
                        value,
                    },
                    &mut rng,
                );
            }
        }
        // Correlated candidates: one random blue register vs. the recent
        // green window (green runs ahead of blue in the protected scheme).
        let regs = colored_reg_sites(&m);
        if let Some(&(bsite, _, bval)) = {
            let blues: Vec<_> = regs
                .iter()
                .filter(|&&(_, c, v)| c == Color::Blue && v != 0)
                .collect();
            if blues.is_empty() {
                None
            } else {
                Some(*rng.pick(&blues))
            }
        } {
            'search: for (s1, greens) in &window {
                for &(gsite, gval) in greens {
                    if gval == bval {
                        let muts = mutations(bval);
                        let x = *rng.pick(&muts);
                        correlated.offer(
                            (
                                Strike {
                                    at_step: *s1,
                                    site: gsite,
                                    value: x,
                                },
                                Strike {
                                    at_step: s,
                                    site: bsite,
                                    value: x,
                                },
                            ),
                            &mut rng,
                        );
                        break 'search;
                    }
                }
            }
        }
        let greens: Vec<(FaultSite, i64)> = regs
            .iter()
            .filter(|&&(_, c, v)| c == Color::Green && v != 0)
            .map(|&(site, _, v)| (site, v))
            .collect();
        window.push_back((s, greens));
        if window.len() as u64 > cfg.pair_window.max(1) {
            window.pop_front();
        }
        step(&mut m);
    }

    let mut plans: Vec<FaultPlan> = Vec::with_capacity(target);
    for &(a, b) in &correlated.items {
        plans.push(FaultPlan::new(vec![a, b]));
    }
    // Uniform strata: equal quota per ordered bin pair.
    let uniform_target = target - plans.len();
    let bin_pairs: Vec<(usize, usize)> = (0..TIME_BINS)
        .flat_map(|i| (i..TIME_BINS).map(move |j| (i, j)))
        .collect();
    let quota = uniform_target.div_ceil(bin_pairs.len());
    for &(i, j) in &bin_pairs {
        for _ in 0..quota {
            // a few retries to satisfy step₁ < step₂ inside a shared bin
            for _attempt in 0..4 {
                if bins[i].items.is_empty() || bins[j].items.is_empty() {
                    break;
                }
                let a = *rng.pick(&bins[i].items);
                let b = *rng.pick(&bins[j].items);
                let (a, b) = if a.at_step < b.at_step {
                    (a, b)
                } else if b.at_step < a.at_step {
                    (b, a)
                } else {
                    continue;
                };
                plans.push(FaultPlan::new(vec![a, b]));
                break;
            }
        }
    }
    // k > 2: extend every pair with further uniform strikes.
    if k > 2 {
        let nonempty: Vec<usize> = (0..TIME_BINS)
            .filter(|&i| !bins[i].items.is_empty())
            .collect();
        if !nonempty.is_empty() {
            for plan in &mut plans {
                let mut strikes = std::mem::take(&mut plan.strikes);
                for _ in 2..k {
                    let bin = nonempty[rng.index(nonempty.len())];
                    strikes.push(*rng.pick(&bins[bin].items));
                }
                *plan = FaultPlan::new(strikes);
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    fn arc(src: &str) -> Arc<Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const LOOPY: &str = r#"
.data
region out at 4096 len 8 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, B 5
loop:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  and r5, r1, G 7
  add r5, r5, G 4096
  and r6, r2, B 7
  add r6, r6, B 4096
  stG r5, r1
  stB r6, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  mov r7, G @loop
  mov r8, B @loop
  jmpG r7
  jmpB r8
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;

    #[test]
    fn single_plans_cover_all_strided_steps() {
        let p = arc(LOOPY);
        let cfg = CampaignConfig {
            stride: 3,
            ..CampaignConfig::default()
        };
        let golden = crate::golden_run(&p, &cfg).expect("halts");
        let stride = cfg.effective_stride(); // respects TALFT_STRIDE_SCALE
        let plans = single_fault_plans(&p, &cfg, &golden);
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|pl| pl.order() == 1));
        let steps: std::collections::BTreeSet<u64> =
            plans.iter().map(FaultPlan::first_step).collect();
        assert!(steps.contains(&0));
        assert!(steps
            .iter()
            .all(|s| s.is_multiple_of(stride) && *s <= golden.steps));
        // every strided step of the run is represented
        assert_eq!(steps.len() as u64, golden.steps / stride + 1);
    }

    #[test]
    fn multi_plans_are_seed_reproducible_and_ordered() {
        let p = arc(LOOPY);
        let cfg = CampaignConfig {
            pair_samples: 64,
            ..CampaignConfig::default()
        };
        let golden = crate::golden_run(&p, &cfg).expect("halts");
        let a = multi_fault_plans(&p, &cfg, &golden, 2);
        let b = multi_fault_plans(&p, &cfg, &golden, 2);
        assert_eq!(a, b, "same seed, same plans");
        assert!(!a.is_empty());
        for plan in &a {
            assert_eq!(plan.order(), 2);
            assert!(plan.strikes[0].at_step <= plan.strikes[1].at_step);
            assert!(plan.strikes[1].at_step <= golden.steps);
        }
        let other = multi_fault_plans(
            &p,
            &CampaignConfig {
                seed: 99,
                ..cfg.clone()
            },
            &golden,
            2,
        );
        assert_ne!(a, other, "different seed, different sample");
    }

    #[test]
    fn correlated_pairs_share_the_corrupt_value() {
        let p = arc(LOOPY);
        let cfg = CampaignConfig {
            pair_samples: 256,
            ..CampaignConfig::default()
        };
        let golden = crate::golden_run(&p, &cfg).expect("halts");
        let plans = multi_fault_plans(&p, &cfg, &golden, 2);
        // the correlated stratum writes the same value at both strikes
        let correlated = plans
            .iter()
            .filter(|pl| pl.strikes[0].value == pl.strikes[1].value)
            .count();
        assert!(correlated > 0, "correlated stratum must be populated");
    }

    #[test]
    fn k3_plans_have_three_strikes() {
        let p = arc(LOOPY);
        let cfg = CampaignConfig {
            pair_samples: 32,
            ..CampaignConfig::default()
        };
        let golden = crate::golden_run(&p, &cfg).expect("halts");
        let plans = multi_fault_plans(&p, &cfg, &golden, 3);
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|pl| pl.order() == 3));
        for pl in &plans {
            assert!(pl.strikes.windows(2).all(|w| w[0].at_step <= w[1].at_step));
        }
    }
}
