//! Golden checkpoint ring: bounded machine snapshots captured along the
//! fault-free run so campaign workers *seek* to a plan's first-strike step
//! instead of re-stepping the prefix from step 0, and so faulty runs that
//! have **converged** back onto the golden state can stop simulating early
//! (determinism implies the remainder replays the golden run).
//!
//! Snapshots are cheap: [`Machine`] memory and trace are copy-on-write, so
//! a snapshot holds `Arc` references and only the golden run's next write to
//! a shared component pays for a fork.
//!
//! The ring is bounded by **adaptive thinning**: snapshots are taken every
//! `stride` steps, and when the capacity is reached every other snapshot is
//! dropped and the stride doubles. Invariant: `snaps[i].steps() == i * stride`
//! (capacity is even, so thinning preserves it exactly), which makes both
//! [`CheckpointRing::seek`] and [`CheckpointRing::at_step`] O(1).

use talft_machine::Machine;

/// Default snapshot interval when [`crate::CampaignConfig::checkpoint_stride`]
/// is 0 (auto).
pub(crate) const DEFAULT_STRIDE: u64 = 16;

/// Maximum snapshots retained (must be even — thinning halves it exactly).
pub(crate) const CAPACITY: usize = 512;

/// A bounded ring of golden-run snapshots at regular step intervals.
#[derive(Debug, Clone)]
pub struct CheckpointRing {
    stride: u64,
    cap: usize,
    snaps: Vec<Machine>,
}

impl CheckpointRing {
    pub(crate) fn new(stride: u64, cap: usize) -> Self {
        debug_assert!(
            cap >= 2 && cap.is_multiple_of(2),
            "thinning needs an even cap"
        );
        Self {
            stride: stride.max(1),
            cap: cap.max(2),
            snaps: Vec::new(),
        }
    }

    /// Current snapshot interval in steps (doubles on each thinning).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Number of retained snapshots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshot has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Record `m` if its step count falls on the current stride grid.
    /// Callers offer every state of a monotone run; the ring keeps the grid
    /// points and thins itself when full.
    pub(crate) fn offer(&mut self, m: &Machine) {
        if !m.steps().is_multiple_of(self.stride) {
            return;
        }
        if self.snaps.len() == self.cap {
            self.thin();
            if !m.steps().is_multiple_of(self.stride) {
                return;
            }
        }
        debug_assert_eq!(m.steps(), self.snaps.len() as u64 * self.stride);
        self.snaps.push(m.clone());
    }

    /// Drop every other snapshot and double the stride. Keeping the even
    /// indices preserves the `snaps[i].steps() == i * stride` invariant.
    fn thin(&mut self) {
        let mut i = 0usize;
        self.snaps.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride *= 2;
    }

    /// The latest snapshot at or before `step` (None only when empty).
    #[must_use]
    pub fn seek(&self, step: u64) -> Option<&Machine> {
        if self.snaps.is_empty() {
            return None;
        }
        let i = usize::try_from(step / self.stride)
            .unwrap_or(usize::MAX)
            .min(self.snaps.len() - 1);
        Some(&self.snaps[i])
    }

    /// The snapshot taken exactly at `step`, if one exists.
    #[must_use]
    pub fn at_step(&self, step: u64) -> Option<&Machine> {
        if !step.is_multiple_of(self.stride) {
            return None;
        }
        usize::try_from(step / self.stride)
            .ok()
            .and_then(|i| self.snaps.get(i))
            .filter(|m| m.steps() == step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_machine::step;

    fn boot() -> Machine {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, G @main\n  \
                   mov r2, B @main\n  jmpG r1\n  jmpB r2\n";
        let p = Arc::new(talft_isa::assemble(src).expect("assembles").program);
        Machine::boot(p)
    }

    #[test]
    fn captures_on_the_stride_grid() {
        let mut ring = CheckpointRing::new(4, 8);
        let mut m = boot();
        for _ in 0..20 {
            ring.offer(&m);
            step(&mut m);
        }
        assert_eq!(ring.stride(), 4);
        assert_eq!(ring.len(), 5); // steps 0, 4, 8, 12, 16
        assert_eq!(ring.at_step(8).map(Machine::steps), Some(8));
        assert!(ring.at_step(9).is_none());
        assert_eq!(ring.seek(11).map(Machine::steps), Some(8));
        assert_eq!(ring.seek(0).map(Machine::steps), Some(0));
        // Past the last snapshot: seek clamps to the newest.
        assert_eq!(ring.seek(1000).map(Machine::steps), Some(16));
    }

    #[test]
    fn thinning_doubles_the_stride_and_keeps_the_grid() {
        let mut ring = CheckpointRing::new(1, 4);
        let mut m = boot();
        for _ in 0..=40 {
            ring.offer(&m);
            step(&mut m);
        }
        // 41 offered states into capacity 4: stride grows past 8.
        assert!(ring.stride() >= 8);
        assert!(ring.len() <= 4);
        for (i, s) in (0..ring.len()).map(|i| (i, &ring)) {
            let snap = s.at_step(i as u64 * s.stride()).expect("grid point");
            assert_eq!(snap.steps(), i as u64 * s.stride());
        }
        // Every retained snapshot is the golden state at its step: replaying
        // from a snapshot matches replaying from boot.
        let target = ring.stride();
        let mut fresh = boot();
        while fresh.steps() < target {
            step(&mut fresh);
        }
        assert!(ring.at_step(target).expect("kept").execution_eq(&fresh));
    }

    #[test]
    fn empty_ring_seeks_nothing() {
        let ring = CheckpointRing::new(4, 8);
        assert!(ring.is_empty());
        assert!(ring.seek(0).is_none());
        assert!(ring.at_step(0).is_none());
    }
}
