//! Cross-boundary determinism of the shard/checkpoint/merge layer
//! (ISSUE 6 / DESIGN.md §11): on real suite kernels,
//!
//! * the union of `N ∈ {1, 2, 4, 8}` shard reports is **bit-identical** to
//!   the whole-grid [`run_plan_campaign`] report (the `campaignperf`
//!   differential extended across the partition boundary), and the
//!   protected binaries still report zero SDC through the sharded path;
//! * a shard interrupted mid-grid — at several checkpoint strides, with the
//!   checkpoint round-tripped through its durable JSON form exactly as a
//!   successor process would read it off disk — resumes and merges to the
//!   same bit-identical report, at threads 1 and 8 and fault orders
//!   `k ∈ {1, 2}`, even when the resumed run uses a *different* chunk size;
//! * all of the above holds with the bit-parallel batched engine on *and*
//!   off (`CampaignConfig::batch`, ISSUE 7): whole grid, shard union, and
//!   interrupt/resume land on one canonical report either way.

use std::sync::Arc;

use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{
    golden_run, grid_fingerprint, merge_shard_reports, multi_fault_plans, run_plan_campaign,
    run_shard_campaign, single_fault_plans, CampaignCheckpoint, CampaignConfig, CampaignReport,
    FaultPlan, Golden, ShardControl, ShardOutcome, ShardPart, ShardSpec,
};
use talft_isa::Program;
use talft_obs::Json;
use talft_suite::{kernels, Scale};

/// Run one shard to completion (no interruptions) and package its report.
fn complete_part(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    spec: ShardSpec,
    every: usize,
) -> ShardPart {
    let outcome = run_shard_campaign(program, cfg, golden, plans, spec, every, None, |_| {
        ShardControl::Continue
    })
    .expect("shard runs");
    let ShardOutcome::Complete(report) = outcome else {
        panic!("uninterrupted shard must complete");
    };
    ShardPart {
        spec,
        fingerprint: grid_fingerprint(golden, plans),
        plans: spec.range(plans.len()).len() as u64,
        report,
    }
}

/// Interrupt a shard at its `stop_after`-th checkpoint, round-trip the
/// checkpoint through its durable JSON encoding (what a successor process
/// reads off disk), then resume with a *different* chunk size and return
/// the completed part. Shards too small to reach a checkpoint complete
/// directly — the interruption story must also be correct when there is
/// nothing to interrupt.
fn interrupted_then_resumed_part(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    spec: ShardSpec,
    every: usize,
    stop_after: usize,
) -> (ShardPart, bool) {
    let fingerprint = grid_fingerprint(golden, plans);
    let shard_total = spec.range(plans.len()).len() as u64;
    let mut checkpoints_seen = 0usize;
    let outcome = run_shard_campaign(program, cfg, golden, plans, spec, every, None, |_| {
        checkpoints_seen += 1;
        if checkpoints_seen >= stop_after {
            ShardControl::Stop
        } else {
            ShardControl::Continue
        }
    })
    .expect("shard runs");
    match outcome {
        ShardOutcome::Complete(report) => (
            ShardPart {
                spec,
                fingerprint,
                plans: shard_total,
                report,
            },
            false,
        ),
        ShardOutcome::Interrupted(cp) => {
            assert!(cp.done > 0 && cp.done < cp.shard_plans);
            let text = cp.to_json().to_string();
            let parsed = Json::parse(&text).expect("checkpoint JSON parses");
            let restored = CampaignCheckpoint::from_json(&parsed).expect("checkpoint decodes");
            assert_eq!(restored, cp, "durable checkpoint round-trip is lossless");
            let resumed = run_shard_campaign(
                program,
                cfg,
                golden,
                plans,
                spec,
                every * 3 + 1, // chunk-invariance: resume with a different stride
                Some(&restored),
                |_| ShardControl::Continue,
            )
            .expect("resume runs");
            let ShardOutcome::Complete(report) = resumed else {
                panic!("resumed shard must complete");
            };
            (
                ShardPart {
                    spec,
                    fingerprint,
                    plans: shard_total,
                    report,
                },
                true,
            )
        }
    }
}

/// Shard the grid `count` ways, complete every shard, and return the
/// verified merge — with each part round-tripped through its
/// `talft.shard-report.v1` JSON form first, as the service does.
fn merged_over_shards(
    program: &Arc<Program>,
    cfg: &CampaignConfig,
    golden: &Golden,
    plans: &[FaultPlan],
    count: u32,
) -> CampaignReport {
    let parts: Vec<ShardPart> = (0..count)
        .map(|i| {
            let spec = ShardSpec::new(i, count).expect("valid spec");
            let part = complete_part(program, cfg, golden, plans, spec, 0);
            let text = part.to_json().to_string();
            ShardPart::from_json(&Json::parse(&text).expect("parses")).expect("decodes")
        })
        .collect();
    merge_shard_reports(&parts).expect("partition merges")
}

/// Acceptance: for ≥3 suite kernels the shard-union report at
/// N ∈ {1, 2, 4, 8} is bit-identical to the whole-grid report, and the
/// protected binary reports zero SDC through the sharded path.
#[test]
fn shard_union_is_bit_identical_on_suite_kernels() {
    let cfg = CampaignConfig {
        stride: 97,
        mutations_per_site: 2,
        threads: 2,
        ..CampaignConfig::default()
    };
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let p = &c.protected.program;
        let golden = golden_run(p, &cfg).expect("golden halts");
        let plans = single_fault_plans(p, &cfg, &golden);
        assert!(plans.len() >= 64, "{}: grid too small to shard", k.name);
        let whole = run_plan_campaign(p, &cfg, &golden, &plans);
        assert_eq!(whole.sdc, 0, "{}: Theorem 4 violated pre-shard", k.name);
        for count in [1u32, 2, 4, 8] {
            let merged = merged_over_shards(p, &cfg, &golden, &plans, count);
            assert_eq!(
                merged, whole,
                "{}: shard-union at N={count} diverged from whole grid",
                k.name
            );
            assert_eq!(merged.sdc, 0, "{}: SDC appeared through shards", k.name);
        }
    }
}

/// Satellite (c): interrupt a shard mid-grid at several checkpoint strides
/// and assert the resumed run's merged report is bit-identical to an
/// uninterrupted whole-grid run — threads 1 and 8, k = 1 and k = 2.
/// The baseline (unprotected) binary is used so the merge also carries a
/// non-trivial violation stream through the cap-exact accounting.
#[test]
fn interrupted_shard_resumes_bit_identically() {
    let k = &kernels(Scale::Tiny)[0];
    let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
    let p = &c.baseline.program;
    let mut interruptions = 0usize;
    for (threads, fault_order) in [(1usize, 1u32), (8, 1), (1, 2), (8, 2)] {
        let cfg = CampaignConfig {
            stride: 127,
            mutations_per_site: 1,
            threads,
            pair_samples: 96,
            ..CampaignConfig::default()
        };
        let golden = golden_run(p, &cfg).expect("golden halts");
        let plans = if fault_order == 1 {
            single_fault_plans(p, &cfg, &golden)
        } else {
            multi_fault_plans(p, &cfg, &golden, 2)
        };
        assert!(plans.len() >= 16, "grid too small at k={fault_order}");
        let whole = run_plan_campaign(p, &cfg, &golden, &plans);
        for every in [1usize, 7, 64] {
            let count = 2u32;
            let (part0, was_interrupted) = interrupted_then_resumed_part(
                p,
                &cfg,
                &golden,
                &plans,
                ShardSpec::new(0, count).expect("valid"),
                every,
                1,
            );
            interruptions += usize::from(was_interrupted);
            let part1 = complete_part(
                p,
                &cfg,
                &golden,
                &plans,
                ShardSpec::new(1, count).expect("valid"),
                every,
            );
            let merged = merge_shard_reports(&[part0, part1]).expect("partition merges");
            assert_eq!(
                merged, whole,
                "kill/resume at every={every}, threads={threads}, k={fault_order} \
                 diverged from the uninterrupted whole-grid run"
            );
        }
    }
    assert!(
        interruptions >= 4,
        "expected the mid-grid interruption path to actually fire \
         (got {interruptions} interruptions)"
    );
}

/// ISSUE 7 satellite: the shard layer consumes the batched engine
/// unchanged. For a protected and an unprotected binary, the whole-grid
/// report, the 4-way shard union, and an interrupted-then-resumed 2-way
/// merge must all be bit-identical with `batch` on and off — one canonical
/// report per binary, six ways of computing it. Since ISSUE 8 the same
/// holds for a sampled k = 2 pair grid: multi-strike shard jobs ride the
/// batched lane-admission path and still merge to one canonical report.
#[test]
fn shard_paths_are_bit_identical_with_batching_on_and_off() {
    let k = &kernels(Scale::Tiny)[0];
    let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
    for (p, protected) in [(&c.protected.program, true), (&c.baseline.program, false)] {
        let mut canonical: Option<CampaignReport> = None;
        let mut canonical_k2: Option<CampaignReport> = None;
        for batch in [true, false] {
            let cfg = CampaignConfig {
                stride: 127,
                mutations_per_site: 1,
                threads: 3,
                pair_samples: 96,
                batch,
                ..CampaignConfig::default()
            };
            let golden = golden_run(p, &cfg).expect("golden halts");
            let plans = single_fault_plans(p, &cfg, &golden);
            assert!(plans.len() >= 16, "{}: grid too small", k.name);
            let whole = run_plan_campaign(p, &cfg, &golden, &plans);
            if protected {
                assert_eq!(whole.sdc, 0, "{}: Theorem 4 violated", k.name);
            }
            match &canonical {
                None => canonical = Some(whole.clone()),
                Some(c0) => assert_eq!(
                    &whole, c0,
                    "{}: whole-grid report changed with batch={batch}",
                    k.name
                ),
            }
            let merged = merged_over_shards(p, &cfg, &golden, &plans, 4);
            assert_eq!(
                merged, whole,
                "{}: shard union diverged with batch={batch}",
                k.name
            );
            let (part0, _) = interrupted_then_resumed_part(
                p,
                &cfg,
                &golden,
                &plans,
                ShardSpec::new(0, 2).expect("valid"),
                3,
                1,
            );
            let part1 = complete_part(
                p,
                &cfg,
                &golden,
                &plans,
                ShardSpec::new(1, 2).expect("valid"),
                3,
            );
            let resumed = merge_shard_reports(&[part0, part1]).expect("partition merges");
            assert_eq!(
                resumed, whole,
                "{}: interrupt/resume diverged with batch={batch}",
                k.name
            );
            // ISSUE 8: k = 2 shard jobs ride the batched lane-admission
            // path (per-strike admission, any k) — the sampled pair grid
            // must land on one canonical report with batch on and off,
            // whole and through the shard union.
            let k2 = multi_fault_plans(p, &cfg, &golden, 2);
            assert!(k2.len() >= 16, "{}: k=2 grid too small", k.name);
            let whole2 = run_plan_campaign(p, &cfg, &golden, &k2);
            match &canonical_k2 {
                None => canonical_k2 = Some(whole2.clone()),
                Some(c0) => assert_eq!(
                    &whole2, c0,
                    "{}: k=2 whole-grid report changed with batch={batch}",
                    k.name
                ),
            }
            let merged2 = merged_over_shards(p, &cfg, &golden, &k2, 4);
            assert_eq!(
                merged2, whole2,
                "{}: k=2 shard union diverged with batch={batch}",
                k.name
            );
        }
    }
}
