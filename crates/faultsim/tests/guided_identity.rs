//! Static-guided k=2 prioritization must be **verdict-neutral**: the
//! guided engine only permutes the order workers claim plans, so its
//! report must be bit-identical to the unguided engine's on the same
//! inputs — for *any* hotness mask, gated or not, at any thread count.

use std::sync::Arc;

use talft_faultsim::{
    exhaustive_pair_plans, golden_run, multi_fault_plans, plan_fault_grid_against,
    run_plan_campaign, run_plan_campaign_guided, CampaignConfig, Verdict,
};
use talft_isa::assemble;
use talft_isa::Program;

fn arc(src: &str) -> Arc<Program> {
    Arc::new(assemble(src).expect("assembles").program)
}

/// Protected store pair over a small register file (keeps the strike
/// universe — and the quadratic pair grid — small).
const PROTECTED: &str = r#"
.gprs 9
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

/// One register feeds both sides of the store pair: single zaps already
/// produce SDC, so gated campaigns have violations to stop on.
const UNPROTECTED: &str = r#"
.gprs 9
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;

fn masks(n: usize) -> Vec<Vec<bool>> {
    vec![
        vec![false; n],
        vec![true; n],
        (0..n).map(|i| i % 3 == 0).collect(),
        (0..n).map(|i| i >= n / 2).collect(),
    ]
}

#[test]
fn guided_report_is_bit_identical_ungated() {
    let p = arc(PROTECTED);
    let cfg = CampaignConfig {
        pair_samples: 96,
        threads: 4,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &cfg).expect("halts");
    let plans = multi_fault_plans(&p, &cfg, &golden, 2);
    assert!(!plans.is_empty());
    let baseline = run_plan_campaign(&p, &cfg, &golden, &plans);
    for hot in masks(plans.len()) {
        let guided = run_plan_campaign_guided(&p, &cfg, &golden, &plans, &hot);
        assert_eq!(guided, baseline, "guidance must not change the report");
    }
}

#[test]
fn guided_report_is_bit_identical_gated() {
    let p = arc(UNPROTECTED);
    let cfg = CampaignConfig {
        stride: 1,
        mutations_per_site: 1,
        pair_samples: 64,
        threads: 3,
        stop_on_first_violation: true,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &cfg).expect("halts");
    let plans = multi_fault_plans(&p, &cfg, &golden, 2);
    assert!(!plans.is_empty());
    let baseline = run_plan_campaign(&p, &cfg, &golden, &plans);
    assert!(
        baseline.sdc > 0 || baseline.stopped_early || baseline.total > 0,
        "gated baseline ran"
    );
    for hot in masks(plans.len()) {
        let guided = run_plan_campaign_guided(&p, &cfg, &golden, &plans, &hot);
        assert_eq!(guided, baseline, "gated stop must land on the same prefix");
    }
}

#[test]
fn exhaustive_pair_plans_cover_the_strike_square() {
    let p = arc(PROTECTED);
    let cfg = CampaignConfig {
        stride: 4,
        mutations_per_site: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &cfg).expect("halts");
    let plans = exhaustive_pair_plans(&p, &cfg, &golden);
    assert!(!plans.is_empty());
    for pl in &plans {
        assert_eq!(pl.order(), 2);
        assert!(pl.strikes[0].at_step <= pl.strikes[1].at_step);
    }
    // Quadratic by construction: n strikes → n·(n−1)/2 unordered pairs.
    let strikes: std::collections::HashSet<_> = plans
        .iter()
        .flat_map(|pl| pl.strikes.iter().map(|s| (s.at_step, s.site, s.value)))
        .collect();
    let n = strikes.len();
    assert_eq!(plans.len(), n * (n - 1) / 2);
}

#[test]
fn plan_grid_verdicts_match_the_campaign() {
    let p = arc(UNPROTECTED);
    let cfg = CampaignConfig {
        stride: 3,
        mutations_per_site: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &cfg).expect("halts");
    let plans = exhaustive_pair_plans(&p, &cfg, &golden);
    let grid = plan_fault_grid_against(&p, &cfg, &golden, &plans);
    assert_eq!(grid.outcomes.len(), plans.len());
    assert_eq!(
        grid.trace.pc_by_step.len() as u64,
        grid.trace.golden_steps + 1
    );
    // Outcomes stay in caller order with their strikes attached.
    for (pl, o) in plans.iter().zip(&grid.outcomes) {
        assert_eq!(pl.strikes, o.strikes);
        assert!(o.applied <= pl.order());
    }
    let rep = run_plan_campaign(&p, &cfg, &golden, &plans);
    assert_eq!(grid.count(Verdict::Sdc) as u64, rep.sdc);
    assert_eq!(grid.count(Verdict::Detected) as u64, rep.detected);
    assert_eq!(grid.count(Verdict::Masked) as u64, rep.masked);
    // The unprotected kernel's double strikes do find the boundary.
    assert!(grid.sdc().count() > 0, "unprotected pairs must score SDC");
}
