//! The batched-engine differential harness: for fuzzed Wile programs —
//! protected *and* unprotected baseline, so every verdict class is on the
//! table — the bit-parallel batched engine, the scalar work-stealing
//! engine, and the pre-checkpoint reference engine must produce
//! **bit-identical** [`CampaignReport`]s at threads ∈ {1, 3, 8}. This is
//! the "re-prove the guarantee per execution path" layer the batched
//! engine ships with (ISSUE 7): verdict-exactness is a tested theorem,
//! not a benchmark footnote. Failures shrink to a minimal Wile witness.

use std::sync::Arc;

use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{
    golden_run, multi_fault_plans, run_plan_campaign, run_plan_campaign_batched,
    run_plan_campaign_reference, run_plan_campaign_scalar, single_fault_plans, CampaignConfig,
    CampaignReport, FaultPlan,
};
use talft_isa::Program;
use talft_testutil::wile::{random_stmts, render_program, shrink_candidates, StmtR};
use talft_testutil::{shrink::minimize, SplitMix64};

fn base_cfg() -> CampaignConfig {
    CampaignConfig {
        stride: 9,
        mutations_per_site: 1,
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// Run one plan set through all three engines at every thread count and
/// demand bit-identical reports. Returns the agreed report.
fn three_way(
    program: &Arc<Program>,
    plans: &[FaultPlan],
    golden: &talft_faultsim::Golden,
) -> Result<CampaignReport, String> {
    let reference = run_plan_campaign_reference(program, &base_cfg(), golden, plans);
    for threads in [1usize, 3, 8] {
        let cfg = CampaignConfig {
            threads,
            ..base_cfg()
        };
        let scalar = run_plan_campaign_scalar(program, &cfg, golden, plans);
        if scalar != reference {
            return Err(format!(
                "scalar engine (threads={threads}) diverged from reference:\n\
                 scalar:    {scalar:?}\nreference: {reference:?}"
            ));
        }
        let batched = run_plan_campaign_batched(program, &cfg, golden, plans);
        if batched != reference {
            return Err(format!(
                "batched engine (threads={threads}) diverged from reference:\n\
                 batched:   {batched:?}\nreference: {reference:?}"
            ));
        }
        // The public entry point must dispatch to the same bits.
        let dispatched = run_plan_campaign(program, &cfg, golden, plans);
        if dispatched != reference {
            return Err(format!(
                "dispatcher (threads={threads}, batch=true) diverged from reference"
            ));
        }
    }
    Ok(reference)
}

/// The property over one compiled binary: all engines agree on the k=1
/// grid and on a sampled k=2 set. Multi-strike plans whose strikes all hit
/// packed sites (GPRs, `d`, queue slots) ride the batched lanes as timed
/// events; the rest route scalar — both paths land in the same report.
fn engines_agree(program: &Arc<Program>, protected: bool) -> Result<(), String> {
    let golden = match golden_run(program, &base_cfg()) {
        Ok(g) => g,
        Err(_) => return Ok(()), // divergent fuzz shape: nothing to campaign
    };
    let plans = single_fault_plans(program, &base_cfg(), &golden);
    let report = three_way(program, &plans, &golden)?;
    if protected && report.sdc != 0 {
        return Err(format!(
            "Theorem 4: protected binary reported SDC: {:?}",
            report.violations
        ));
    }
    let k2_cfg = CampaignConfig {
        pair_samples: 48,
        ..base_cfg()
    };
    let k2 = multi_fault_plans(program, &k2_cfg, &golden, 2);
    three_way(program, &k2, &golden)?;
    Ok(())
}

/// The property over one fuzzed statement list.
fn holds(stmts: &[StmtR]) -> Result<(), String> {
    let src = render_program(stmts);
    let Ok(c) = compile(&src, &CompileOptions::default()) else {
        return Ok(()); // fuzzer occasionally emits uncompilable shapes
    };
    engines_agree(&Arc::new(c.protected.program.as_ref().clone()), true)
        .map_err(|e| format!("protected: {e}"))?;
    engines_agree(&Arc::new(c.baseline.program.as_ref().clone()), false)
        .map_err(|e| format!("baseline: {e}"))
}

#[test]
fn fuzzed_programs_run_bit_identically_on_all_three_engines() {
    let mut rng = SplitMix64::new(0xBA7C_4ED1);
    for round in 0..4 {
        let stmts = random_stmts(&mut rng, 2, 1, 6);
        if let Err(first) = holds(&stmts) {
            let min = minimize(stmts, |s| shrink_candidates(s), |s| holds(s).is_err(), 64);
            let err = holds(&min).err().unwrap_or(first);
            panic!(
                "round {round}: batched/scalar/reference reports diverged\n\
                 {err}\nminimal wile program:\n{}",
                render_program(&min)
            );
        }
    }
}

/// Hand-written adversarial plan shapes the fuzzer cannot produce: strikes
/// at golden termination, strikes past it (incomplete plans), equal-payload
/// strikes, out-of-file GPR indices (harness panic → EngineError), `d` and
/// queue value/address strikes (packed since ISSUE 8), pc strikes (the one
/// remaining scalar route), and multi-strike packed/mixed plans — each
/// must take the same route to the same report.
#[test]
fn adversarial_plan_shapes_agree_across_engines() {
    use talft_faultsim::Strike;
    use talft_isa::assemble;
    use talft_machine::FaultSite;
    let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
               .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
               stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
    let p = Arc::new(assemble(src).expect("assembles").program);
    let golden = golden_run(&p, &base_cfg()).expect("halts");
    let n = golden.steps;
    // First step at which the store queue is nonempty, so the queue-site
    // strikes genuinely apply instead of degenerating to incomplete plans.
    let q_step = {
        let mut m = talft_machine::Machine::boot(Arc::clone(&p));
        while m.queue().is_empty() && m.status().is_running() {
            talft_machine::step(&mut m);
        }
        assert!(!m.queue().is_empty(), "fixture must push a store pair");
        m.steps()
    };
    let plans = vec![
        // Strike at the final halted state (applies, classifies there).
        FaultPlan::single(n, FaultSite::Reg(talft_isa::Reg::r(1)), 99),
        // Strike past termination: never applies — incomplete plan.
        FaultPlan::single(n + 3, FaultSite::Reg(talft_isa::Reg::r(1)), 99),
        // Equal payload: diverges nowhere.
        FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(1)), 0),
        // Out of the register file: inject panics → EngineError.
        FaultPlan::single(0, FaultSite::Reg(talft_isa::Reg::r(200)), 7),
        // `d` and queue-value sites: packed since ISSUE 8 (the `d` shadow
        // resolves at the next jump/branch, the queue shadow at the stB).
        FaultPlan::single(2, FaultSite::Reg(talft_isa::Reg::Dst), 3),
        FaultPlan::single(q_step, FaultSite::QueueVal(0), -1),
        // Queue *addresses* pack too (resolved at the stB compare or a
        // forwarding load); only the pcs stay on the scalar route.
        FaultPlan::single(q_step, FaultSite::QueueAddr(0), 4097),
        FaultPlan::single(
            2,
            FaultSite::Reg(talft_isa::Reg::Pc(talft_isa::Color::Green)),
            1,
        ),
        // Live-register strike: rides the shadow to its blue compare.
        FaultPlan::single(2, FaultSite::Reg(talft_isa::Reg::r(1)), 77),
        // Multi-strike, all packed sites: one lane, two timed events —
        // GPR+GPR (same step and spread), GPR+queue value, GPR+`d`, and a
        // second strike landing at the final halted state.
        FaultPlan::new(vec![
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 77,
            },
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::r(2)),
                value: -9,
            },
        ]),
        FaultPlan::new(vec![
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 77,
            },
            Strike {
                at_step: q_step,
                site: FaultSite::QueueVal(0),
                value: -1,
            },
        ]),
        FaultPlan::new(vec![
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::Dst),
                value: 5,
            },
            Strike {
                at_step: 4,
                site: FaultSite::Reg(talft_isa::Reg::r(3)),
                value: 11,
            },
        ]),
        FaultPlan::new(vec![
            Strike {
                at_step: 0,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 4,
            },
            Strike {
                at_step: n,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 99,
            },
        ]),
        // Mixed packed + pc strike: the whole plan routes scalar.
        FaultPlan::new(vec![
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 77,
            },
            Strike {
                at_step: 3,
                site: FaultSite::Reg(talft_isa::Reg::Pc(talft_isa::Color::Blue)),
                value: 1,
            },
        ]),
        // Queue-value strike on a slot that vanished by the strike step
        // (`inject` misses → incomplete plan) paired with a healing
        // second strike on the same GPR.
        FaultPlan::new(vec![
            Strike {
                at_step: 2,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 77,
            },
            Strike {
                at_step: 3,
                site: FaultSite::Reg(talft_isa::Reg::r(1)),
                value: 5,
            },
        ]),
        FaultPlan::single(n, FaultSite::QueueVal(0), -1),
    ];
    let report = three_way(&p, &plans, &golden).expect("engines agree");
    assert_eq!(report.total, plans.len() as u64);
    assert_eq!(report.engine_errors, 1);
    // The past-termination strike and the queue-value strike on a drained
    // queue both fail to apply.
    assert_eq!(report.incomplete_plans, 2);
}
