//! Targeted lane-demotion tests for the batched engine: hand-built
//! `.talft` fixtures that force each escape from the packed representation
//! — memory divergence through a corrupted store, a control-flow split
//! through a corrupted branch condition, and a store-queue depth delta
//! through a skipped `stG` — and prove the demoted plan's verdict is
//! exactly the scalar engine's. The `talft-machine` divergence accessors
//! (`gpr_divergence_mask` / `queue_depth_delta` / `pc_diverged`) witness
//! that each fixture really does escape the single-register shape the
//! packed lanes can express.

use std::sync::Arc;

use talft_faultsim::{
    golden_run, run_plan_campaign_batched, run_plan_campaign_scalar, CampaignConfig, FaultPlan,
    Verdict,
};
use talft_isa::{assemble, Reg};
use talft_machine::{inject, step, FaultSite, Machine};

const PRE: &str = ".pre { forall m:mem; mem: m; }";

fn arc(src: &str) -> Arc<talft_isa::Program> {
    Arc::new(assemble(src).expect("fixture assembles").program)
}

fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// Run one plan through both engines; assert bit-identical reports and
/// return the (shared) verdict of its lead injection.
fn agreed_verdict(program: &Arc<talft_isa::Program>, plan: FaultPlan) -> Verdict {
    let golden = golden_run(program, &cfg()).expect("golden halts");
    let plans = vec![plan];
    let scalar = run_plan_campaign_scalar(program, &cfg(), &golden, &plans);
    let batched = run_plan_campaign_batched(program, &cfg(), &golden, &plans);
    assert_eq!(
        batched, scalar,
        "demoted plan's report diverged from the scalar engine"
    );
    assert_eq!(batched.total, 1);
    if batched.masked == 1 {
        Verdict::Masked
    } else if batched.detected == 1 {
        Verdict::Detected
    } else {
        batched.violations[0].verdict
    }
}

/// Golden prefix at `at` steps, with `value` injected into `reg` — the
/// faulty state a demoted lane reconstructs.
fn faulty_at(program: &Arc<talft_isa::Program>, at: u64, reg: Reg, value: i64) -> Machine {
    let mut m = Machine::boot(Arc::clone(program));
    while m.steps() < at && m.status().is_running() {
        step(&mut m);
    }
    assert!(inject(&mut m, FaultSite::Reg(reg), value));
    m
}

/// Step both machines until `stop` says so or both halt; a side that halts
/// early (e.g. golden taking the short branch arm) stays put while the
/// other finishes.
fn run_until(
    golden: &mut Machine,
    faulty: &mut Machine,
    mut stop: impl FnMut(&Machine, &Machine) -> bool,
) {
    while (golden.status().is_running() || faulty.status().is_running()) && !stop(golden, faulty) {
        if golden.status().is_running() {
            step(golden);
        }
        if faulty.status().is_running() {
            step(faulty);
        }
    }
}

/// Memory divergence: the unprotected same-register store pair commits a
/// corrupted value to memory — SDC. The strike hits `r1` (the store value)
/// while it is live; the lane must demote at the `stG` read and the
/// demoted continuation must land on the scalar engine's `Sdc`.
#[test]
fn memory_divergence_demotes_to_sdc() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  stB r2, r1\n  halt\n"
    );
    let p = arc(&src);
    // Strike after `mov r1` has executed (r1 = 5), before the stores read it.
    let plan = FaultPlan::single(2, FaultSite::Reg(Reg::r(1)), 1234);
    assert_eq!(agreed_verdict(&p, plan), Verdict::Sdc);
    // Witness the escape shape: after both stores commit, the faulty run's
    // *memory* differs from golden — beyond any packed GPR mask.
    let mut golden = Machine::boot(Arc::clone(&p));
    let mut faulty = faulty_at(&p, 2, Reg::r(1), 1234);
    run_until(&mut golden, &mut faulty, |g, _| !g.status().is_running());
    assert_ne!(
        golden.memory(),
        faulty.memory(),
        "store committed the corruption"
    );
    assert_ne!(
        golden.trace(),
        faulty.trace(),
        "the divergence is observable"
    );
}

/// Protected store pair: the same live-register strike is *caught* by the
/// `stB` comparison — the lane demotes identically but the continuation
/// reaches `Detected`, never memory divergence.
#[test]
fn protected_store_demotes_to_detected() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    let plan = FaultPlan::single(2, FaultSite::Reg(Reg::r(1)), 1234);
    assert_eq!(agreed_verdict(&p, plan), Verdict::Detected);
}

/// Control-flow split: corrupting a live branch condition makes the faulty
/// run take the other arm — `pc_diverged` fires, queue depths drift apart
/// (the fallthrough arm pushes a store the taken arm never does), and the
/// demoted continuation must match the scalar engine verdict-for-verdict.
///
/// Both `bz` halves read the *same* condition register so the corruption
/// flips them coherently: the machine's `rval` is color-blind, and a
/// coherent flip is exactly the shape where control forks *without*
/// tripping `fetch-fail` — the worst case for a packed lane.
#[test]
fn control_flow_split_demotes_and_matches_scalar() {
    // r1 = 0: the branch pair is taken, skipping the store pair entirely.
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 0\n  mov r3, G @done\n  mov r4, B @done\n  \
         bzG r1, r3\n  bzB r1, r4\n  mov r5, G 7\n  mov r2, G 4096\n  stG r2, r5\n  \
         stB r2, r5\n  halt\ndone:\n  {PRE}\n  halt\n"
    );
    let p = arc(&src);
    let golden_rep = golden_run(&p, &cfg()).expect("golden halts");
    // Corrupt r1 to nonzero right after its mov: both bz halves go untaken
    // together while golden jumps — control forks cleanly and the faulty
    // run commits a store golden never performs. The exact verdict is the
    // scalar engine's business; the batched engine must only *agree*.
    let at = 2; // after `mov r1` executed, before the branch pair reads it
    let plan = FaultPlan::single(at, FaultSite::Reg(Reg::r(1)), 1);
    let scalar = run_plan_campaign_scalar(&p, &cfg(), &golden_rep, std::slice::from_ref(&plan));
    let batched = run_plan_campaign_batched(&p, &cfg(), &golden_rep, &[plan]);
    assert_eq!(batched, scalar, "control split changed the verdict");
    assert_eq!(batched.total, 1);
    assert_eq!(
        batched.masked, 0,
        "a live branch-condition strike is not masked"
    );
    // Witness: the two runs really do fork control and drift queue depth.
    let mut golden = Machine::boot(Arc::clone(&p));
    let mut faulty = faulty_at(&p, at, Reg::r(1), 1);
    let mut forked = false;
    let mut depth_drift = false;
    run_until(&mut golden, &mut faulty, |g, f| {
        forked |= g.pc_diverged(f);
        depth_drift |= g.queue_depth_delta(f) != 0;
        forked && depth_drift
    });
    assert!(forked, "branch corruption must fork control flow");
    assert!(
        depth_drift,
        "one arm pushes a store pair the other never does"
    );
}

/// Queue-depth overflow mid-batch: strike the *address* register between
/// `stG` and `stB` of a protected pair. The register is live (the `stB`
/// reads it), so the lane demotes mid-flight with the corrupt entry
/// conceptually in the queue; the blue store disagrees and the hardware
/// detects. Both engines must report the identical `Detected`.
#[test]
fn queue_window_strike_demotes_to_detected() {
    // Blue copies are materialized *before* the `stG` so that at the first
    // nonempty-queue step both are already holding their final values —
    // the strike lands inside the open store window, not before the movs.
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stG r2, r1\n  stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    // After stG executes (queue holds one entry), corrupt r3 — the blue
    // value the comparison will read.
    let golden_rep = golden_run(&p, &cfg()).expect("golden halts");
    let mut at = None;
    {
        let mut m = Machine::boot(Arc::clone(&p));
        while m.status().is_running() {
            if !m.queue().is_empty() {
                at = Some(m.steps());
                break;
            }
            step(&mut m);
        }
    }
    let at = at.expect("fixture pushes a store pair");
    for (reg, val) in [(Reg::r(3), 9), (Reg::r(4), 5000)] {
        let plan = FaultPlan::single(at, FaultSite::Reg(reg), val);
        let scalar = run_plan_campaign_scalar(&p, &cfg(), &golden_rep, std::slice::from_ref(&plan));
        let batched = run_plan_campaign_batched(&p, &cfg(), &golden_rep, &[plan]);
        assert_eq!(batched, scalar, "queue-window strike on {reg:?} diverged");
        assert_eq!(batched.detected, 1, "stB must catch the {reg:?} corruption");
    }
}

/// The demotion path is *exercised*, not skipped: with instrumentation on,
/// a campaign over a program whose every register strike is live must
/// count packed lanes and demotions.
#[test]
fn demotion_counters_advance() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    let golden = golden_run(&p, &cfg()).expect("golden halts");
    let plans = talft_faultsim::single_fault_plans(&p, &cfg(), &golden);
    let prev = talft_obs::enabled();
    talft_obs::set_enabled(true);
    let before = talft_obs::snapshot();
    let rep = run_plan_campaign_batched(&p, &cfg(), &golden, &plans);
    let after = talft_obs::snapshot();
    talft_obs::set_enabled(prev);
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };
    assert!(rep.total > 0);
    let lanes = delta("faultsim.batch.lanes");
    let demotions = delta("faultsim.batch.demotions");
    let routed = delta("faultsim.batch.scalar_routed");
    assert!(lanes > 0, "no plan entered the packed representation");
    assert!(demotions > 0, "no lane demoted on an all-live fixture");
    assert!(routed > 0, "queue/pc/d sites must take the scalar route");
    assert_eq!(
        lanes + routed,
        rep.total,
        "every plan is either a lane or scalar-routed"
    );
    assert!(demotions <= lanes);
}
