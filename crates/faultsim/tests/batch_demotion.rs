//! Targeted lane-shadow and demotion tests for the batched engine:
//! hand-built `.talft` fixtures that force each exit from the packed
//! representation and prove the batched report is exactly the scalar
//! engine's. Since the queue/`d` shadows landed (ISSUE 8) a corrupted
//! value flowing into a blue compare is no longer a demotion — the lane
//! resolves it *in place*: a failing compare on the lane while golden
//! passes is an instant in-lane `Detected`, and only a compare the lane
//! *passes with diverged state* (a corrupt commit, a coherent control
//! fork) demotes, with the cause recorded on a
//! `faultsim.batch.demote.*` counter. The `talft-machine` divergence
//! accessors (`gpr_divergence_mask` / `queue_value_divergence_mask` /
//! `d_diverged` / `pc_diverged`) witness that each fixture really does
//! reach the claimed shape.
//!
//! All tests serialize on one lock: the demote/lane counters are
//! process-global, and the `== 0` assertions below are only meaningful
//! when no concurrent campaign is recording.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use talft_faultsim::{
    golden_run, run_plan_campaign_batched, run_plan_campaign_scalar, CampaignConfig, FaultPlan,
    Verdict,
};
use talft_isa::{assemble, Color, Reg};
use talft_machine::{inject, step, FaultSite, Machine};
use talft_obs::Snapshot;

const PRE: &str = ".pre { forall m:mem; mem: m; }";

/// Serializes every test in this file: obs counters are process-global,
/// and several assertions below demand an *exact* delta.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn delta(before: &Snapshot, after: &Snapshot, name: &str) -> u64 {
    after.counters.get(name).copied().unwrap_or(0) - before.counters.get(name).copied().unwrap_or(0)
}

/// Run `body` with instrumentation on (under the file lock) and return its
/// result plus the before/after counter snapshots.
fn with_obs<R>(body: impl FnOnce() -> R) -> (R, Snapshot, Snapshot) {
    let _g = obs_lock();
    let prev = talft_obs::enabled();
    talft_obs::set_enabled(true);
    let before = talft_obs::snapshot();
    let out = body();
    let after = talft_obs::snapshot();
    talft_obs::set_enabled(prev);
    (out, before, after)
}

fn arc(src: &str) -> Arc<talft_isa::Program> {
    Arc::new(assemble(src).expect("fixture assembles").program)
}

fn cfg() -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// Run one plan through both engines; assert bit-identical reports and
/// return the (shared) verdict of its lead injection.
fn agreed_verdict(program: &Arc<talft_isa::Program>, plan: FaultPlan) -> Verdict {
    let golden = golden_run(program, &cfg()).expect("golden halts");
    let plans = vec![plan];
    let scalar = run_plan_campaign_scalar(program, &cfg(), &golden, &plans);
    let batched = run_plan_campaign_batched(program, &cfg(), &golden, &plans);
    assert_eq!(
        batched, scalar,
        "batched plan's report diverged from the scalar engine"
    );
    assert_eq!(batched.total, 1);
    if batched.masked == 1 {
        Verdict::Masked
    } else if batched.detected == 1 {
        Verdict::Detected
    } else {
        batched.violations[0].verdict
    }
}

/// Golden prefix at `at` steps, with `value` injected into `reg` — the
/// faulty state a demoted lane reconstructs.
fn faulty_at(program: &Arc<talft_isa::Program>, at: u64, reg: Reg, value: i64) -> Machine {
    let mut m = Machine::boot(Arc::clone(program));
    while m.steps() < at && m.status().is_running() {
        step(&mut m);
    }
    assert!(inject(&mut m, FaultSite::Reg(reg), value));
    m
}

/// Step both machines until `stop` says so or both halt; a side that halts
/// early (e.g. golden taking the short branch arm) stays put while the
/// other finishes.
fn run_until(
    golden: &mut Machine,
    faulty: &mut Machine,
    mut stop: impl FnMut(&Machine, &Machine) -> bool,
) {
    while (golden.status().is_running() || faulty.status().is_running()) && !stop(golden, faulty) {
        if golden.status().is_running() {
            step(golden);
        }
        if faulty.status().is_running() {
            step(faulty);
        }
    }
}

/// Memory divergence: the unprotected same-register store pair commits a
/// corrupted value to memory — SDC. The strike hits `r1` (the store value)
/// while it is live; the corruption enters the queue as a value shadow at
/// the `stG`, and at the `stB` the lane *passes* the compare (both the
/// register and the shadowed queue entry hold the same corrupt value) while
/// committing a diverged word — the `mem_commit` demotion, whose
/// continuation must land on the scalar engine's `Sdc`.
#[test]
fn memory_divergence_demotes_to_sdc() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  stB r2, r1\n  halt\n"
    );
    let p = arc(&src);
    // Strike after `mov r1` has executed (r1 = 5), before the stores read it.
    let plan = FaultPlan::single(2, FaultSite::Reg(Reg::r(1)), 1234);
    let (verdict, before, after) = with_obs(|| agreed_verdict(&p, plan));
    assert_eq!(verdict, Verdict::Sdc);
    assert_eq!(
        delta(&before, &after, "faultsim.batch.demote.mem_commit"),
        1,
        "a passed compare over a diverged commit is the mem_commit demotion"
    );
    // Witness the escape shape: after both stores commit, the faulty run's
    // *memory* differs from golden — beyond any packed shadow.
    let mut golden = Machine::boot(Arc::clone(&p));
    let mut faulty = faulty_at(&p, 2, Reg::r(1), 1234);
    run_until(&mut golden, &mut faulty, |g, _| !g.status().is_running());
    assert_ne!(
        golden.memory(),
        faulty.memory(),
        "store committed the corruption"
    );
    assert_ne!(
        golden.trace(),
        faulty.trace(),
        "the divergence is observable"
    );
}

/// Protected store pair: the same live-register strike flows through the
/// queue shadow into the `stB` comparison, which *fails* on the lane (the
/// clean blue copy disagrees with the shadowed green value) while golden
/// passes — an instant in-lane `Detected`. No demotion: the lane never
/// leaves the packed representation.
#[test]
fn protected_store_detects_in_lane() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    let plan = FaultPlan::single(2, FaultSite::Reg(Reg::r(1)), 1234);
    let (verdict, before, after) = with_obs(|| agreed_verdict(&p, plan));
    assert_eq!(verdict, Verdict::Detected);
    assert_eq!(delta(&before, &after, "faultsim.batch.lanes"), 1);
    assert_eq!(
        delta(&before, &after, "faultsim.batch.demotions"),
        0,
        "a failing blue compare resolves in-lane, not by demotion"
    );
}

/// Control-flow split: corrupting a live branch condition makes the faulty
/// run skip the latch golden performs at the `bzG` — the missing `d` rides
/// as a `d`-latch shadow to the `bzB`, where golden commits a transfer the
/// lane coherently refuses: control forks without a failing compare, the
/// `control_fork` demotion. The demoted continuation must match the scalar
/// engine verdict-for-verdict.
///
/// Both `bz` halves read the *same* condition register so the corruption
/// flips them coherently: the machine's `rval` is color-blind, and a
/// coherent flip is exactly the shape where control forks *without*
/// tripping a detection rule — the worst case for a packed lane.
#[test]
fn control_flow_split_demotes_and_matches_scalar() {
    // r1 = 0: the branch pair is taken, skipping the store pair entirely.
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 0\n  mov r3, G @done\n  mov r4, B @done\n  \
         bzG r1, r3\n  bzB r1, r4\n  mov r5, G 7\n  mov r2, G 4096\n  stG r2, r5\n  \
         stB r2, r5\n  halt\ndone:\n  {PRE}\n  halt\n"
    );
    let p = arc(&src);
    let golden_rep = golden_run(&p, &cfg()).expect("golden halts");
    // Corrupt r1 to nonzero right after its mov: both bz halves go untaken
    // together while golden jumps — control forks cleanly and the faulty
    // run commits a store golden never performs. The exact verdict is the
    // scalar engine's business; the batched engine must only *agree*.
    let at = 2; // after `mov r1` executed, before the branch pair reads it
    let plan = FaultPlan::single(at, FaultSite::Reg(Reg::r(1)), 1);
    let ((scalar, batched), before, after) = with_obs(|| {
        let scalar = run_plan_campaign_scalar(&p, &cfg(), &golden_rep, std::slice::from_ref(&plan));
        let batched = run_plan_campaign_batched(&p, &cfg(), &golden_rep, &[plan]);
        (scalar, batched)
    });
    assert_eq!(batched, scalar, "control split changed the verdict");
    assert_eq!(batched.total, 1);
    assert_eq!(
        batched.masked, 0,
        "a live branch-condition strike is not masked"
    );
    assert_eq!(
        delta(&before, &after, "faultsim.batch.demote.control_fork"),
        1,
        "a coherent untaken-vs-taken fork is the control_fork demotion"
    );
    // Witness: the two runs really do split the `d` latch at the bzG, then
    // fork control and drift queue depth.
    let mut golden = Machine::boot(Arc::clone(&p));
    let mut faulty = faulty_at(&p, at, Reg::r(1), 1);
    let mut d_split = false;
    let mut forked = false;
    let mut depth_drift = false;
    run_until(&mut golden, &mut faulty, |g, f| {
        d_split |= g.d_diverged(f);
        forked |= g.pc_diverged(f);
        depth_drift |= g.queue_depth_delta(f) != 0;
        forked && depth_drift
    });
    assert!(d_split, "golden latches `d` at the bzG; the lane does not");
    assert!(forked, "branch corruption must fork control flow");
    assert!(
        depth_drift,
        "one arm pushes a store pair the other never does"
    );
}

/// Strikes inside the open store window: corrupt the *blue* value or
/// address register between `stG` and `stB` of a protected pair. The
/// corrupt register rides the packed lane to the `stB`, whose comparison
/// fails on the lane while golden passes — instant in-lane `Detected` for
/// both shapes, no demotion.
#[test]
fn queue_window_strike_detects_in_lane() {
    // Blue copies are materialized *before* the `stG` so that at the first
    // nonempty-queue step both are already holding their final values —
    // the strike lands inside the open store window, not before the movs.
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stG r2, r1\n  stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    // After stG executes (queue holds one entry), corrupt r3 — the blue
    // value the comparison will read — then r4, the blue address.
    let golden_rep = golden_run(&p, &cfg()).expect("golden halts");
    let mut at = None;
    {
        let mut m = Machine::boot(Arc::clone(&p));
        while m.status().is_running() {
            if !m.queue().is_empty() {
                at = Some(m.steps());
                break;
            }
            step(&mut m);
        }
    }
    let at = at.expect("fixture pushes a store pair");
    let ((), before, after) = with_obs(|| {
        for (reg, val) in [(Reg::r(3), 9), (Reg::r(4), 5000)] {
            let plan = FaultPlan::single(at, FaultSite::Reg(reg), val);
            let scalar =
                run_plan_campaign_scalar(&p, &cfg(), &golden_rep, std::slice::from_ref(&plan));
            let batched = run_plan_campaign_batched(&p, &cfg(), &golden_rep, &[plan]);
            assert_eq!(batched, scalar, "queue-window strike on {reg:?} diverged");
            assert_eq!(batched.detected, 1, "stB must catch the {reg:?} corruption");
        }
    });
    assert_eq!(delta(&before, &after, "faultsim.batch.lanes"), 2);
    assert_eq!(
        delta(&before, &after, "faultsim.batch.demotions"),
        0,
        "failing blue compares resolve in-lane"
    );
}

/// A store pair spanning a block boundary: the `stG` closes one block and
/// the `stB` opens the next, with the label's `.pre` carrying the `queue:`
/// annotation hand-written `.talft` uses for exactly this shape. A value
/// strike before the `stG` and a queue-value strike *inside the second
/// block* both ride the queue shadow across the boundary to the `stB`,
/// which detects them in-lane — the shadow's absolute-sequence indexing
/// does not care where the blocks fall.
#[test]
fn queue_shadow_spans_block_boundary() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stG r2, r1\nflush:\n  .pre {{ forall m:mem; queue: [(4096, 5)]; mem: m; }}\n  \
         stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    let flush = p.label_addr("flush").expect("label assembles");
    let pre = p.precond(flush).expect("flush block is annotated");
    assert_eq!(pre.queue.len(), 1, "the annotation declares the open entry");
    // Witness the span: walk golden to the first step where the queue is
    // nonempty *and* control has crossed into the `flush` block.
    let golden_rep = golden_run(&p, &cfg()).expect("golden halts");
    let mut in_block2 = None;
    {
        let mut m = Machine::boot(Arc::clone(&p));
        while m.status().is_running() {
            if !m.queue().is_empty() && m.reg(Reg::Pc(Color::Green)).val >= flush {
                in_block2 = Some(m.steps());
                break;
            }
            step(&mut m);
        }
    }
    let in_block2 = in_block2.expect("the store window spans the label");
    let plans = vec![
        // Green value corrupted before the stG: the shadow is created in
        // block 1 and consumed in block 2.
        FaultPlan::single(2, FaultSite::Reg(Reg::r(1)), 1234),
        // Queue value corrupted after the boundary crossing.
        FaultPlan::single(in_block2, FaultSite::QueueVal(0), -1),
    ];
    let ((scalar, batched), before, after) = with_obs(|| {
        let scalar = run_plan_campaign_scalar(&p, &cfg(), &golden_rep, &plans);
        let batched = run_plan_campaign_batched(&p, &cfg(), &golden_rep, &plans);
        (scalar, batched)
    });
    assert_eq!(batched, scalar, "spanning shadow changed a verdict");
    assert_eq!(batched.total, 2);
    assert_eq!(batched.detected, 2, "the stB catches both corruptions");
    assert_eq!(delta(&before, &after, "faultsim.batch.lanes"), 2);
    assert_eq!(
        delta(&before, &after, "faultsim.batch.demotions"),
        0,
        "both strikes resolve in-lane at the stB"
    );
}

/// The demotion paths are *exercised*, not skipped: with instrumentation
/// on, the full k=1 grid over a protected store pair must count packed
/// lanes, per-cause demotions that sum to the demotion total, and scalar
/// routes — and a k=2 sampled set must admit multi-strike lanes.
#[test]
fn demotion_counters_advance() {
    let src = format!(
        "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
         mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  \
         stB r4, r3\n  halt\n"
    );
    let p = arc(&src);
    let golden = golden_run(&p, &cfg()).expect("golden halts");
    let plans = talft_faultsim::single_fault_plans(&p, &cfg(), &golden);
    let (rep, before, after) = with_obs(|| run_plan_campaign_batched(&p, &cfg(), &golden, &plans));
    let d = |name: &str| delta(&before, &after, name);
    assert!(rep.total > 0);
    let lanes = d("faultsim.batch.lanes");
    let demotions = d("faultsim.batch.demotions");
    let routed = d("faultsim.batch.scalar_routed");
    assert!(lanes > 0, "no plan entered the packed representation");
    assert!(demotions > 0, "no lane demoted on an all-live fixture");
    assert!(routed > 0, "pc sites must take the scalar route");
    assert_eq!(
        lanes + routed,
        rep.total,
        "every plan is either a lane or scalar-routed"
    );
    assert!(demotions <= lanes);
    // The cause taxonomy is total: every demotion carries exactly one tag.
    let causes = [
        "faultsim.batch.demote.queue_addr",
        "faultsim.batch.demote.mem_commit",
        "faultsim.batch.demote.gpr_hi",
        "faultsim.batch.demote.load_addr",
        "faultsim.batch.demote.control_fork",
        "faultsim.batch.demote.terminal",
    ];
    assert_eq!(
        causes.iter().map(|c| d(c)).sum::<u64>(),
        demotions,
        "per-cause demotion counters must sum to the demotion total"
    );
    assert_eq!(
        d("faultsim.batch.demote.queue_addr"),
        0,
        "retired: diverged stG addresses ride the address shadow, not a demotion"
    );
    assert!(
        d("faultsim.batch.demote.terminal") > 0,
        "a `d` shadow with no later jump/branch demotes at replay halt"
    );
    assert_eq!(
        d("faultsim.batch.multi_lanes"),
        0,
        "a k=1 grid admits no multi-strike lanes"
    );
    // k=2: sampled pairs over packed sites ride the lanes as timed events.
    let k2_cfg = CampaignConfig {
        pair_samples: 64,
        ..cfg()
    };
    let k2 = talft_faultsim::multi_fault_plans(&p, &k2_cfg, &golden, 2);
    let ((scalar2, batched2), before2, after2) = with_obs(|| {
        let scalar = run_plan_campaign_scalar(&p, &k2_cfg, &golden, &k2);
        let batched = run_plan_campaign_batched(&p, &k2_cfg, &golden, &k2);
        (scalar, batched)
    });
    assert_eq!(batched2, scalar2, "k=2 engines diverged");
    let d2 = |name: &str| delta(&before2, &after2, name);
    assert!(
        d2("faultsim.batch.multi_lanes") > 0,
        "sampled k=2 pairs over packed sites must be admitted"
    );
    assert_eq!(
        d2("faultsim.batch.lanes") + d2("faultsim.batch.scalar_routed"),
        batched2.total
    );
}
