//! Timing model for the Figure 10 evaluation: an Itanium-2-flavored
//! in-order, multi-issue machine.
//!
//! The paper (§5) measures TAL_FT's slowdown on real Itanium 2 hardware with
//! simulated TAL_FT structures. We reproduce the *mechanism* that determines
//! that slowdown — a wide in-order pipeline absorbing the duplicated
//! instruction stream in its ILP slack — with a scoreboarded issue model:
//!
//! * up to `width` instructions issue per cycle, in program order;
//! * an instruction issues only when its source registers are ready
//!   (scoreboard tracks write-back times) and, for same-register overwrites,
//!   after the previous writer issued (in-order WAW);
//! * taken control transfers add a redirect penalty;
//! * instructions marked `free` model the *unprotected baseline ISA*: the
//!   baseline TAL_FT encoding uses paired `stG`/`stB` (and `jmpG`/`jmpB`)
//!   for what a conventional ISA does in one instruction, so the redundant
//!   half is costed at zero to make "normalized to unprotected" meaningful.
//!
//! Input is a [`SchedProgram`] — per-basic-block instruction schedules — plus
//! the dynamic block-visit sequence from a functional run; output is a cycle
//! count. Schedules for the ordered/unordered variants differ only in their
//! per-block instruction order, exactly like the paper's experiment.

#![warn(missing_docs)]

/// Functional-unit class of a scheduled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Single-cycle integer op (`add`, `sub`, logicals, `mov`).
    Alu,
    /// Pipelined multiply.
    Mul,
    /// Memory load.
    Load,
    /// Memory store (green enqueue or blue commit).
    Store,
    /// Control transfer half (`jmp*`, `bz*`) or `halt`.
    Branch,
}

/// One instruction in a block schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOp {
    /// Functional-unit class.
    pub kind: OpKind,
    /// Destination physical register, if any.
    pub dst: Option<u16>,
    /// Source physical registers.
    pub srcs: Vec<u16>,
    /// Costed at zero (baseline pseudo-halves; see module docs).
    pub free: bool,
}

impl TimedOp {
    /// Convenience constructor.
    #[must_use]
    pub fn new(kind: OpKind, dst: Option<u16>, srcs: Vec<u16>) -> Self {
        Self {
            kind,
            dst,
            srcs,
            free: false,
        }
    }

    /// Mark as a zero-cost pseudo-op.
    #[must_use]
    pub fn freed(mut self) -> Self {
        self.free = true;
        self
    }
}

/// Per-block schedules, indexed by basic-block id.
#[derive(Debug, Clone, Default)]
pub struct SchedProgram {
    /// `blocks[b]` is the issue-order schedule of block `b`.
    pub blocks: Vec<Vec<TimedOp>>,
}

/// The machine model (defaults are Itanium-2-flavored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Issue width (Itanium 2: 6).
    pub width: u32,
    /// ALU latency.
    pub lat_alu: u32,
    /// Multiply latency.
    pub lat_mul: u32,
    /// Load-to-use latency (L1 hit).
    pub lat_load: u32,
    /// Store latency (to the queue / commit).
    pub lat_store: u32,
    /// Extra cycles on a taken control transfer (front-end redirect).
    pub branch_penalty: u32,
    /// Memory ports: at most this many loads/stores issue per cycle
    /// (Itanium 2: two M units). Duplication doubles pressure on exactly
    /// this resource, which is what gives Figure 10 its magnitude.
    pub mem_ports: u32,
}

impl Default for MachineModel {
    /// Effective-integer-issue calibration: Itanium 2 fetches six slots per
    /// cycle, but integer code can use at most the two I and two M units and
    /// bundle templates strand slots, so sustained integer issue is ≈ 3
    /// (see EXPERIMENTS.md, "Model calibration").
    fn default() -> Self {
        Self {
            width: 3,
            lat_alu: 1,
            lat_mul: 3,
            lat_load: 2,
            lat_store: 1,
            branch_penalty: 1,
            mem_ports: 2,
        }
    }
}

impl MachineModel {
    /// The raw six-slot Itanium 2 configuration (all units counted), used by
    /// the issue-width ablation.
    #[must_use]
    pub fn itanium2_raw() -> Self {
        Self {
            width: 6,
            ..Self::default()
        }
    }

    /// Latency of an op class.
    #[must_use]
    pub fn latency(&self, k: OpKind) -> u32 {
        match k {
            OpKind::Alu => self.lat_alu,
            OpKind::Mul => self.lat_mul,
            OpKind::Load => self.lat_load,
            OpKind::Store => self.lat_store,
            OpKind::Branch => self.lat_alu,
        }
    }
}

/// One dynamic block execution: the block id, and whether leaving it
/// redirected the front end (taken transfer, i.e. the next block was not the
/// fall-through successor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockVisit {
    /// Basic-block id.
    pub block: usize,
    /// Whether the exit was a taken (redirecting) transfer.
    pub taken_exit: bool,
}

/// Replay a dynamic block-visit sequence through per-block schedules,
/// returning the total cycle count.
///
/// The scoreboard persists across blocks (values computed late in one block
/// stall dependents early in the next), matching an in-order pipeline.
#[must_use]
pub fn simulate(prog: &SchedProgram, visits: &[BlockVisit], model: &MachineModel) -> u64 {
    let mut ready: Vec<u64> = Vec::new(); // per-register ready cycle
    let mut cycle: u64 = 0; // current issue cycle
    let mut issued_this_cycle: u32 = 0;
    let mut mem_issued_this_cycle: u32 = 0;

    for v in visits {
        let Some(block) = prog.blocks.get(v.block) else {
            continue;
        };
        for op in block {
            if op.free {
                continue;
            }
            // Stall until sources are ready.
            let mut earliest = cycle;
            for &s in &op.srcs {
                let r = ready.get(usize::from(s)).copied().unwrap_or(0);
                earliest = earliest.max(r);
            }
            if let Some(d) = op.dst {
                // In-order WAW: a later writer may not complete first.
                let r = ready.get(usize::from(d)).copied().unwrap_or(0);
                let lat = u64::from(model.latency(op.kind));
                earliest = earliest.max(r.saturating_sub(lat));
            }
            if earliest > cycle {
                cycle = earliest;
                issued_this_cycle = 0;
                mem_issued_this_cycle = 0;
            }
            let is_mem = matches!(op.kind, OpKind::Load | OpKind::Store);
            if issued_this_cycle >= model.width
                || (is_mem && mem_issued_this_cycle >= model.mem_ports)
            {
                cycle += 1;
                issued_this_cycle = 0;
                mem_issued_this_cycle = 0;
            }
            issued_this_cycle += 1;
            if is_mem {
                mem_issued_this_cycle += 1;
            }
            if let Some(d) = op.dst {
                let d = usize::from(d);
                if ready.len() <= d {
                    ready.resize(d + 1, 0);
                }
                ready[d] = cycle + u64::from(model.latency(op.kind));
            }
        }
        if v.taken_exit {
            cycle += u64::from(model.branch_penalty) + 1;
            issued_this_cycle = 0;
            mem_issued_this_cycle = 0;
        }
    }
    cycle + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(dst: u16, srcs: &[u16]) -> TimedOp {
        TimedOp::new(OpKind::Alu, Some(dst), srcs.to_vec())
    }

    #[test]
    fn independent_ops_pack_into_issue_width() {
        let model = MachineModel {
            width: 4,
            ..MachineModel::default()
        };
        // 8 independent ALU ops on a 4-wide machine: 2 issue cycles.
        let block: Vec<TimedOp> = (0..8).map(|i| alu(i, &[])).collect();
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        let c = simulate(&prog, &visits, &model);
        assert_eq!(c, 2);
    }

    #[test]
    fn dependence_chain_serializes() {
        let model = MachineModel::default();
        // r1 = r0+1; r2 = r1+1; r3 = r2+1 — a chain of 3 unit-latency ops.
        let block = vec![alu(1, &[0]), alu(2, &[1]), alu(3, &[2])];
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        let c = simulate(&prog, &visits, &model);
        assert_eq!(c, 3);
    }

    #[test]
    fn duplicated_independent_stream_is_absorbed_by_width() {
        // The Figure 10 mechanism in miniature: duplicating an
        // ILP-rich stream on a wide machine costs much less than 2×.
        let model = MachineModel {
            width: 6,
            ..MachineModel::default()
        };
        let single: Vec<TimedOp> = (0..6).map(|i| alu(i, &[])).collect();
        let dup: Vec<TimedOp> = (0..12).map(|i| alu(i, &[])).collect();
        let p1 = SchedProgram {
            blocks: vec![single],
        };
        let p2 = SchedProgram { blocks: vec![dup] };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        let c1 = simulate(&p1, &visits, &model);
        let c2 = simulate(&p2, &visits, &model);
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
    }

    #[test]
    fn free_ops_cost_nothing() {
        let model = MachineModel {
            width: 1,
            ..MachineModel::default()
        };
        let block = vec![alu(0, &[]), alu(1, &[]).freed(), alu(2, &[])];
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        let c = simulate(&prog, &visits, &model);
        assert_eq!(c, 2); // only two real ops on a 1-wide machine
    }

    #[test]
    fn taken_exits_pay_redirect() {
        let model = MachineModel::default();
        let block = vec![alu(0, &[])];
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let fall = [BlockVisit {
            block: 0,
            taken_exit: false,
        }; 4];
        let taken = [BlockVisit {
            block: 0,
            taken_exit: true,
        }; 4];
        let cf = simulate(&prog, &fall, &model);
        let ct = simulate(&prog, &taken, &model);
        assert!(ct > cf, "{ct} vs {cf}");
    }

    #[test]
    fn load_latency_stalls_dependent() {
        let model = MachineModel::default();
        let block = vec![TimedOp::new(OpKind::Load, Some(1), vec![0]), alu(2, &[1])];
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        let c = simulate(&prog, &visits, &model);
        assert_eq!(c, u64::from(model.lat_load) + 1);
    }

    #[test]
    fn scoreboard_persists_across_blocks() {
        let model = MachineModel::default();
        let b0 = vec![TimedOp::new(OpKind::Mul, Some(1), vec![0])];
        let b1 = vec![alu(2, &[1])];
        let prog = SchedProgram {
            blocks: vec![b0, b1],
        };
        let visits = [
            BlockVisit {
                block: 0,
                taken_exit: false,
            },
            BlockVisit {
                block: 1,
                taken_exit: false,
            },
        ];
        let c = simulate(&prog, &visits, &model);
        assert_eq!(c, u64::from(model.lat_mul) + 1);
    }

    #[test]
    fn wider_machines_are_never_slower() {
        let narrow = MachineModel {
            width: 1,
            ..MachineModel::default()
        };
        let wide = MachineModel {
            width: 8,
            ..MachineModel::default()
        };
        let block: Vec<TimedOp> = (0..10).map(|i| alu(i % 3, &[(i + 1) % 3])).collect();
        let prog = SchedProgram {
            blocks: vec![block],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }; 5];
        assert!(simulate(&prog, &visits, &wide) <= simulate(&prog, &visits, &narrow));
    }
}

#[cfg(test)]
mod mem_port_tests {
    use super::*;

    #[test]
    fn mem_ports_throttle_memory_streams() {
        let model = MachineModel::default(); // 2 mem ports, 6 wide
        let loads: Vec<TimedOp> = (0..8)
            .map(|i| TimedOp::new(OpKind::Load, Some(i), vec![]))
            .collect();
        let prog = SchedProgram {
            blocks: vec![loads],
        };
        let visits = [BlockVisit {
            block: 0,
            taken_exit: false,
        }];
        // 8 loads / 2 ports = 4 cycles even on a 6-wide machine.
        assert_eq!(simulate(&prog, &visits, &model), 4);
        // With 8 ports they fit the width limit instead.
        let wide = MachineModel {
            mem_ports: 8,
            width: 8,
            ..model
        };
        assert_eq!(simulate(&prog, &visits, &wide), 1);
    }
}
