//! Metric primitives: monotonic counters, max-gauges, fixed-bucket
//! histograms, and scoped span timers.
//!
//! Every primitive is lock-free (a handful of `Relaxed` atomics) and safe to
//! share across campaign worker threads. All recording paths are gated on
//! the global [`enabled`] flag, so a disabled metric costs
//! one relaxed atomic load and a predictable branch — the "zero-cost when
//! disabled" half of the overhead policy (DESIGN.md §Observability).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::enabled;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Add `n` events (no-op while instrumentation is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Reset to zero (test/report sectioning; not used on hot paths).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A high-water-mark gauge: keeps the maximum recorded value.
#[derive(Debug, Default)]
pub struct MaxGauge {
    v: AtomicU64,
}

impl MaxGauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Record an observation; the gauge keeps the maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.v.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current maximum.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets in a [`Histogram`]; bucket `k` counts values in
/// `[2ᵏ, 2ᵏ⁺¹)` (values of 0 land in bucket 0), so 40 buckets cover
/// nanosecond spans up to ~18 minutes without saturating.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency/value histogram with sum, count, and max.
///
/// The same shape as the campaign engine's detection-latency histogram, but
/// atomic so worker threads can record concurrently without merging.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        // AtomicU64 is not Copy; an inline-const block repeats the initializer.
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (no-op while instrumentation is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Record regardless of the global flag (for guards that already
    /// checked it when the span opened).
    #[inline]
    pub(crate) fn record_always(&self, v: u64) {
        let k = (63 - v.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[k].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Non-empty `(bucket_lo, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(k, c)| (1u64 << k, c.load(Ordering::Relaxed)))
            .filter(|&(_, c)| c > 0)
    }

    /// Reset all buckets and aggregates to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Open a span over this histogram: the guard records the elapsed
    /// nanoseconds on drop. When instrumentation is disabled the guard is
    /// inert and no clock is read.
    #[must_use]
    pub fn span(&self) -> SpanGuard<'_> {
        SpanGuard {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }
}

/// RAII timer returned by [`Histogram::span`]; records elapsed nanoseconds
/// into its histogram when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Abandon the span without recording (e.g. an error path whose timing
    /// would pollute the distribution).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record_always(ns);
        }
    }
}

/// A named counter resolved against the global registry on first use and
/// cached, so hot paths pay one `OnceLock` load instead of a map lookup.
///
/// ```
/// static INSTRS: talft_obs::LazyCounter = talft_obs::LazyCounter::new("demo.instrs");
/// talft_obs::set_enabled(true);
/// INSTRS.inc();
/// assert!(INSTRS.get() >= 1);
/// ```
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declare a counter under `name` (registered on first use).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn get_metric(&self) -> &'static Counter {
        self.cell
            .get_or_init(|| crate::registry::counter(self.name))
    }

    /// Add `n` events (no-op while disabled; the registry is not touched
    /// until the first enabled use).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.get_metric().add(n);
        }
    }

    /// Record one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 if never used while enabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.get().map_or(0, |c| c.get())
    }
}

/// A named max-gauge with the same lazy-registration scheme as
/// [`LazyCounter`].
#[derive(Debug)]
pub struct LazyMaxGauge {
    name: &'static str,
    cell: OnceLock<&'static MaxGauge>,
}

impl LazyMaxGauge {
    /// Declare a gauge under `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Record an observation; the gauge keeps the maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| crate::registry::max_gauge(self.name))
                .record(v);
        }
    }

    /// Current maximum (0 if never used while enabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.get().map_or(0, |g| g.get())
    }
}

/// A named histogram with the same lazy-registration scheme as
/// [`LazyCounter`].
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declare a histogram under `name`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    #[inline]
    fn get_metric(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| crate::registry::histogram(self.name))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.get_metric().record_always(v);
        }
    }

    /// Open a span; elapsed nanoseconds are recorded on drop. Inert (no
    /// clock read, no registration) while instrumentation is disabled.
    #[must_use]
    pub fn span(&self) -> SpanGuard<'static> {
        if enabled() {
            self.get_metric().span()
        } else {
            SpanGuard {
                hist: never_hist(),
                start: None,
            }
        }
    }

    /// The underlying histogram, if it has been touched while enabled.
    #[must_use]
    pub fn try_get(&self) -> Option<&'static Histogram> {
        self.cell.get().copied()
    }
}

/// Shared inert histogram backing disabled [`LazyHistogram::span`] guards.
fn never_hist() -> &'static Histogram {
    static NEVER: Histogram = Histogram::new();
    &NEVER
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_enabled_guard;

    #[test]
    fn counter_respects_enable_flag() {
        let _g = test_enabled_guard();
        let c = Counter::new();
        crate::set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        crate::set_enabled(true);
        c.add(3);
        assert_eq!(c.get(), 3);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_keeps_max() {
        let _g = test_enabled_guard();
        crate::set_enabled(true);
        let g = MaxGauge::new();
        g.record(5);
        g.record(2);
        g.record(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_sum_mean_max() {
        let _g = test_enabled_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.0).abs() < 1e-9);
        // 0 and 1 → bucket 1; 2 and 3 → bucket 2; 9 → bucket 8.
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 2), (8, 1)]);
    }

    #[test]
    fn span_records_elapsed_ns() {
        let _g = test_enabled_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        {
            let _span = h.span();
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() > 0, "a span must record a nonzero latency");
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let _g = test_enabled_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        h.span().cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn disabled_span_reads_no_clock() {
        let _g = test_enabled_guard();
        crate::set_enabled(false);
        let h = Histogram::new();
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 0);
    }
}
