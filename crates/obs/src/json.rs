//! A dependency-free JSON document model: construction, stable
//! pretty-printing, and a small validating parser.
//!
//! The workspace is hermetic (no `serde`), but every bench bin emits a
//! machine-readable `--json` report and CI must be able to *validate* that
//! output without external tooling. [`Json`] covers both directions:
//! objects keep insertion order so report schemas serialize byte-stably,
//! and [`Json::parse`] accepts exactly RFC 8259 documents (it is used by
//! `perfreport --check` as the CI smoke gate).
//!
//! ```
//! use talft_obs::Json;
//!
//! let doc = Json::obj([
//!     ("schema", Json::str("talft.demo.v1")),
//!     ("total", Json::U64(3)),
//!     ("ratio", Json::F64(1.34)),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).expect("self-emitted JSON re-parses");
//! assert_eq!(back.get("total").and_then(Json::as_u64), Some(3));
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order (schema stability);
/// numbers distinguish unsigned/signed/float so `u64` metric values
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, cycle counts).
    U64(u64),
    /// Signed integer (trace values, addresses).
    I64(i64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned (or non-negative signed)
    /// integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document (RFC 8259; rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    // Round-trippable and stable: shortest repr via {v:?}
                    // always keeps a decimal point or exponent.
                    write!(f, "{v:?}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                // Scalar-only arrays print inline (histogram bucket pairs).
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Object(o) if !o.is_empty()));
                if scalar {
                    write!(f, "[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        item.write_indented(f, indent)?;
                    }
                    return write!(f, "]");
                }
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(f, "{:1$}", "", (indent + 1) * 2)?;
                    item.write_indented(f, indent + 1)?;
                    if i + 1 < items.len() {
                        write!(f, ",")?;
                    }
                    writeln!(f)?;
                }
                write!(f, "{:1$}]", "", indent * 2)
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    write!(f, "{:1$}", "", (indent + 1) * 2)?;
                    write_escaped(f, k)?;
                    write!(f, ": ")?;
                    v.write_indented(f, indent + 1)?;
                    if i + 1 < fields.len() {
                        write!(f, ",")?;
                    }
                    writeln!(f)?;
                }
                write!(f, "{:1$}}}", "", indent * 2)
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to U+FFFD like lossy decode.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                char::from(c),
                                self.pos
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_and_ordered() {
        let doc = Json::obj([
            ("b", Json::U64(2)),
            ("a", Json::U64(1)),
            ("list", Json::Array(vec![Json::U64(1), Json::U64(2)])),
        ]);
        let s = doc.to_string();
        // Insertion order, not sorted: schema authors control layout.
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("[1, 2]"));
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let doc = Json::obj([
            ("null", Json::Null),
            ("t", Json::Bool(true)),
            ("u", Json::U64(u64::MAX)),
            ("i", Json::I64(-42)),
            ("f", Json::F64(1.25)),
            ("s", Json::str("quote \" slash \\ nl \n tab \t")),
            ("nested", Json::obj([("k", Json::Array(vec![]))])),
        ]);
        let back = Json::parse(&doc.to_string()).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("{'a': 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_foreign_json() {
        let v = Json::parse("\r\n {\"a\": [1, -2, 3.5e2, \"\\u0041\\n\"], \"b\": {\"c\": null}} ")
            .expect("valid");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[3].as_str(),
            Some("A\n")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::I64(7)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::I64(-1).as_u64(), None);
    }
}
