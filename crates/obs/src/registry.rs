//! The global metric registry: named metrics, stable snapshots, JSON
//! serialization.
//!
//! Metrics are registered on first use and live for the process lifetime
//! (leaked allocations — a bounded, name-keyed set). Names are dotted paths
//! (`"checker.instrs"`, `"campaign.verdict.sdc"`); snapshots iterate a
//! `BTreeMap`, so serialized output is deterministically ordered and safe to
//! diff across runs — the schema-stability contract the bench bins' `--json`
//! reports rely on.

use std::collections::BTreeMap;
use std::sync::RwLock;

use crate::json::Json;
use crate::metrics::{Counter, Histogram, MaxGauge};

/// One registered metric.
// Each Metric is leaked exactly once per name at registration; the histogram
// variant's bucket array dominating the enum size costs nothing per-site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Metric {
    /// Monotonic event counter.
    Counter(Counter),
    /// High-water-mark gauge.
    MaxGauge(MaxGauge),
    /// Log₂-bucket histogram.
    Histogram(Histogram),
}

fn registry() -> &'static RwLock<BTreeMap<&'static str, &'static Metric>> {
    static REGISTRY: RwLock<BTreeMap<&'static str, &'static Metric>> = RwLock::new(BTreeMap::new());
    &REGISTRY
}

fn register_with(name: &'static str, make: impl FnOnce() -> Metric) -> &'static Metric {
    if let Some(m) = registry().read().expect("obs registry poisoned").get(name) {
        return m;
    }
    let mut w = registry().write().expect("obs registry poisoned");
    // Double-checked: another thread may have registered between the locks.
    if let Some(m) = w.get(name) {
        return m;
    }
    let leaked: &'static Metric = Box::leak(Box::new(make()));
    w.insert(name, leaked);
    leaked
}

/// Get-or-register the counter `name`.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
#[must_use]
pub fn counter(name: &'static str) -> &'static Counter {
    match register_with(name, || Metric::Counter(Counter::new())) {
        Metric::Counter(c) => c,
        other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
    }
}

/// Get-or-register the max-gauge `name`.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
#[must_use]
pub fn max_gauge(name: &'static str) -> &'static MaxGauge {
    match register_with(name, || Metric::MaxGauge(MaxGauge::new())) {
        Metric::MaxGauge(g) => g,
        other => panic!("metric {name:?} already registered as {other:?}, wanted a max-gauge"),
    }
}

/// Get-or-register the histogram `name`.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
#[must_use]
pub fn histogram(name: &'static str) -> &'static Histogram {
    match register_with(name, || Metric::Histogram(Histogram::new())) {
        Metric::Histogram(h) => h,
        other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
    }
}

/// Reset every registered metric to zero (report sectioning: `perfreport`
/// resets between phases so each phase's numbers are attributable).
pub fn reset_all() {
    for m in registry().read().expect("obs registry poisoned").values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::MaxGauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// A point-in-time copy of every registered metric, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `name → value` for counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// `name → maximum` for max-gauges.
    pub max_gauges: BTreeMap<&'static str, u64>,
    /// `name → (count, sum, max, mean, non-empty buckets)` for histograms.
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
}

/// Histogram aggregate inside a [`Snapshot`].
#[derive(Debug, Clone, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Non-empty `(bucket_lo, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// Take a snapshot of the whole registry. Zero-valued metrics are included
/// (they are part of the schema once registered).
#[must_use]
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for (&name, m) in registry().read().expect("obs registry poisoned").iter() {
        match m {
            Metric::Counter(c) => {
                s.counters.insert(name, c.get());
            }
            Metric::MaxGauge(g) => {
                s.max_gauges.insert(name, g.get());
            }
            Metric::Histogram(h) => {
                s.histograms.insert(
                    name,
                    HistSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        mean: h.mean(),
                        buckets: h.buckets().collect(),
                    },
                );
            }
        }
    }
    s
}

impl Snapshot {
    /// Serialize to the stable JSON shape documented in DESIGN.md
    /// (§Observability): `{"counters": {...}, "max_gauges": {...},
    /// "histograms": {name: {count, sum, max, mean, buckets: [[lo, n], …]}}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), Json::U64(v)))
            .collect();
        let gauges = self
            .max_gauges
            .iter()
            .map(|(&k, &v)| (k.to_owned(), Json::U64(v)))
            .collect();
        let hists = self
            .histograms
            .iter()
            .map(|(&k, h)| {
                (
                    k.to_owned(),
                    Json::obj([
                        ("count", Json::U64(h.count)),
                        ("sum", Json::U64(h.sum)),
                        ("max", Json::U64(h.max)),
                        ("mean", Json::F64(h.mean)),
                        (
                            "buckets",
                            Json::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(lo, n)| Json::Array(vec![Json::U64(lo), Json::U64(n)]))
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect();
        Json::Object(vec![
            ("counters".to_owned(), Json::Object(counters)),
            ("max_gauges".to_owned(), Json::Object(gauges)),
            ("histograms".to_owned(), Json::Object(hists)),
        ])
    }

    /// Render a human-readable profile table (what `talftc --profile`
    /// prints): counters and gauges one per line, histograms with
    /// count/mean/max.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.max_gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            writeln!(out, "{k:width$}  {v}").expect("write to string");
        }
        for (k, v) in &self.max_gauges {
            writeln!(out, "{k:width$}  max {v}").expect("write to string");
        }
        for (k, h) in &self.histograms {
            writeln!(
                out,
                "{k:width$}  n {}  mean {:.0}  max {}",
                h.count, h.mean, h.max
            )
            .expect("write to string");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_enabled_guard;

    #[test]
    fn register_snapshot_reset_roundtrip() {
        let _g = test_enabled_guard();
        crate::set_enabled(true);
        counter("test.registry.counter").add(7);
        max_gauge("test.registry.gauge").record(41);
        histogram("test.registry.hist").record(100);
        let s = snapshot();
        assert_eq!(s.counters["test.registry.counter"], 7);
        assert_eq!(s.max_gauges["test.registry.gauge"], 41);
        assert_eq!(s.histograms["test.registry.hist"].count, 1);
        let js = s.to_json().to_string();
        assert!(js.contains("\"test.registry.counter\": 7"));
        let text = s.render_text();
        assert!(text.contains("test.registry.gauge"));
        reset_all();
        assert_eq!(counter("test.registry.counter").get(), 0);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let a = counter("test.registry.same") as *const _;
        let b = counter("test.registry.same") as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn kind_mismatch_panics() {
        let _ = counter("test.registry.kind");
        let err = std::panic::catch_unwind(|| max_gauge("test.registry.kind"));
        assert!(err.is_err());
    }
}
