//! `talft-obs` — dependency-free, zero-cost-when-disabled observability for
//! the talft workspace.
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows"; this crate is how the workspace finds out where time actually
//! goes. It provides three metric primitives ([`Counter`], [`MaxGauge`],
//! [`Histogram`] with RAII [`SpanGuard`] timers), a process-global
//! thread-safe [registry](mod@registry) keyed by dotted metric names, and a
//! dependency-free [`Json`] document model used both for metric snapshots
//! and for the bench bins' `--json` reports.
//!
//! # Overhead policy
//!
//! Instrumentation is **compiled in unconditionally** but gated on one
//! process-global `AtomicBool` ([`set_enabled`]). While disabled — the
//! default — every recording path is a single relaxed load plus a
//! well-predicted branch, spans read no clock, and nothing registers; the
//! `mutation` campaign gate measures this at under 2% wall-time overhead
//! (EXPERIMENTS.md E15). A feature flag was rejected deliberately: metrics
//! compiled out cannot be flipped on in the field, and dual compilation
//! modes would double the test matrix.
//!
//! Instrumented crates declare hot-path handles statically; the registry is
//! consulted once, on first *enabled* use:
//!
//! ```
//! use talft_obs::{LazyCounter, LazyHistogram};
//!
//! static QUERIES: LazyCounter = LazyCounter::new("doc.solver.queries");
//! static CHECK_NS: LazyHistogram = LazyHistogram::new("doc.check.ns");
//!
//! talft_obs::set_enabled(true);
//! {
//!     let _span = CHECK_NS.span(); // records elapsed ns on drop
//!     QUERIES.inc();
//! }
//! let snap = talft_obs::snapshot();
//! assert_eq!(snap.counters["doc.solver.queries"], 1);
//! assert_eq!(snap.histograms["doc.check.ns"].count, 1);
//! # talft_obs::set_enabled(false);
//! ```
//!
//! # Reports
//!
//! [`snapshot`] copies every registered metric into deterministically
//! ordered maps; [`Snapshot::to_json`] serializes them under the stable
//! schema documented in DESIGN.md (§Observability), and [`Json::parse`]
//! validates any such report — CI's `perfreport --check` smoke gate runs on
//! exactly that parser, so the toolchain needs no external JSON tooling:
//!
//! ```
//! use talft_obs::Json;
//!
//! talft_obs::set_enabled(true);
//! talft_obs::registry::counter("doc.report.events").add(5);
//! let report = talft_obs::snapshot().to_json().to_string();
//! let parsed = Json::parse(&report).expect("snapshots are valid JSON");
//! assert_eq!(
//!     parsed.get("counters").and_then(|c| c.get("doc.report.events")).and_then(Json::as_u64),
//!     Some(5),
//! );
//! # talft_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod registry;

pub use json::Json;
pub use metrics::{
    Counter, Histogram, LazyCounter, LazyHistogram, LazyMaxGauge, MaxGauge, SpanGuard, HIST_BUCKETS,
};
pub use registry::{reset_all, snapshot, HistSnapshot, Metric, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is currently recording. The single load every
/// disabled metric operation pays.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn instrumentation on or off process-wide. Off by default; bins flip
/// it on under `--profile`/`--json`, `perfreport` always records.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Test-only guard serializing tests that toggle the global flag, restoring
/// the previous state on drop.
#[cfg(test)]
pub(crate) fn test_enabled_guard() -> impl Drop {
    use std::sync::{Mutex, MutexGuard, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    struct Guard {
        prev: bool,
        _lock: MutexGuard<'static, ()>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            set_enabled(self.prev);
        }
    }
    let lock = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Guard {
        prev: enabled(),
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_in_fresh_process() {
        // Other tests toggle the flag under the guard lock; this only
        // asserts the *initial* static value semantics via a fresh flag.
        let fresh = AtomicBool::new(false);
        assert!(!fresh.load(Ordering::Relaxed));
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _g = test_enabled_guard();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
