//! Generic greedy test-case minimization.
//!
//! When a randomized test fails, the raw counterexample is usually huge; a
//! useful failure report needs the *smallest* input that still fails. This
//! module provides the dependency-free core of a shrinker: a greedy loop
//! that repeatedly replaces the current counterexample with the first
//! still-failing candidate its caller proposes, until no candidate fails
//! (a local minimum) or a check budget runs out. Determinism is inherited
//! from the caller: with a seeded candidate order and a deterministic
//! failure predicate, the minimum is reproducible from the seed alone.

/// Greedily minimize a failing input.
///
/// * `candidates(&cur)` proposes strictly "smaller" variants of `cur`, in
///   preference order (try the most aggressive reductions first).
/// * `still_fails(&x)` re-runs the failing property.
/// * `max_checks` bounds the total number of `still_fails` calls so a slow
///   property cannot hang the failure path (the current best is returned
///   when the budget runs out).
///
/// Returns the smallest still-failing input found. The initial input is
/// assumed to fail; it is returned unchanged if nothing smaller fails.
pub fn minimize<T, C, F>(initial: T, mut candidates: C, mut still_fails: F, max_checks: usize) -> T
where
    C: FnMut(&T) -> Vec<T>,
    F: FnMut(&T) -> bool,
{
    let mut cur = initial;
    let mut checks = 0usize;
    loop {
        let mut progressed = false;
        for cand in candidates(&cur) {
            if checks >= max_checks {
                return cur;
            }
            checks += 1;
            if still_fails(&cand) {
                cur = cand;
                progressed = true;
                break; // restart candidate generation from the new, smaller input
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Property: "fails" iff the vec still contains a 7. Minimal failing
    /// input under drop-one-element shrinking is `[7]`.
    #[test]
    fn minimizes_to_single_element() {
        let initial = vec![1, 7, 3, 9, 7, 2];
        let min = minimize(
            initial,
            |v: &Vec<i32>| {
                (0..v.len())
                    .map(|i| {
                        let mut w = v.clone();
                        w.remove(i);
                        w
                    })
                    .collect()
            },
            |v| v.contains(&7),
            1000,
        );
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn budget_zero_returns_initial() {
        let min = minimize(
            vec![1, 2, 3],
            |v: &Vec<i32>| vec![v[1..].to_vec()],
            |_| true,
            0,
        );
        assert_eq!(min, vec![1, 2, 3]);
    }

    #[test]
    fn returns_initial_when_nothing_smaller_fails() {
        let min = minimize(42i64, |&x| vec![x / 2, x - 1], |&x| x == 42, 100);
        assert_eq!(min, 42);
    }
}
