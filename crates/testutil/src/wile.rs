//! Seed-reproducible random Wile program generation with integrated
//! shrinking — the generative side of the property tests and the mutation
//! oracle.
//!
//! Programs are built from a structured recipe ([`StmtR`]/[`ExprR`]) over a
//! fixed variable pool `v0..v4`, an input array `a[8]`, and an output
//! window `out[16]`, then rendered to concrete Wile source. Keeping the
//! recipe (not the source string) as the generator's value lets
//! [`shrink_candidates`] propose structurally smaller programs — drop a
//! statement, splice a branch body in place of its `if`, unroll a loop to
//! its body, collapse an expression to a literal — which
//! [`crate::shrink::minimize`] then drives to a local minimum.
//!
//! Everything is deterministic from the [`crate::SplitMix64`] seed; no
//! external crates (the repo builds hermetically).

use crate::SplitMix64;

/// A recipe for one random statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtR {
    /// `vN = e;`
    Assign(u8, ExprR),
    /// `a[i] = v;`
    StoreA(ExprR, ExprR),
    /// `out[i] = v;`
    StoreOut(ExprR, ExprR),
    /// Bounds-refined store — the `assume_in_range` guard shape:
    /// `if (i >= 0) { if (i < 8) { a[i] = v; } }`. Checking the compiled
    /// branches issues range entailments on top of the masked-index
    /// obligations, so fuzzed corpora exercise the interval pre-solver
    /// with inequality queries, not just store-pair equalities.
    GuardedStoreA(ExprR, ExprR),
    /// `if (c) { then } else { else }`
    If(ExprR, Vec<StmtR>, Vec<StmtR>),
    /// Bounded loop: `var lN = 0; while (lN < trip) { body; lN = lN + 1; }`.
    Loop(u8, Vec<StmtR>),
}

/// A recipe for one random expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprR {
    /// Small integer literal.
    Lit(i8),
    /// Pool variable `vN` (mod 5).
    Var(u8),
    /// `a[i]` read.
    ReadA(Box<ExprR>),
    /// Binary arithmetic/bitwise op (index mod 8 into `+ - * & | ^ << >>`).
    Bin(u8, Box<ExprR>, Box<ExprR>),
    /// Comparison (index mod 6 into `< <= > >= == !=`).
    Cmp(u8, Box<ExprR>, Box<ExprR>),
}

/// Generate a random expression of at most `depth` levels.
pub fn random_expr(r: &mut SplitMix64, depth: u32) -> ExprR {
    if depth == 0 || r.chance(2, 5) {
        return if r.chance(1, 2) {
            ExprR::Lit(r.range_i64(-128, 128) as i8)
        } else {
            ExprR::Var(r.below(5) as u8)
        };
    }
    match r.below(3) {
        0 => ExprR::ReadA(Box::new(random_expr(r, depth - 1))),
        1 => ExprR::Bin(
            r.below(8) as u8,
            Box::new(random_expr(r, depth - 1)),
            Box::new(random_expr(r, depth - 1)),
        ),
        _ => ExprR::Cmp(
            r.below(6) as u8,
            Box::new(random_expr(r, depth - 1)),
            Box::new(random_expr(r, depth - 1)),
        ),
    }
}

/// Generate between `lo` and `hi` (exclusive) random statements.
pub fn random_stmts(r: &mut SplitMix64, depth: u32, lo: usize, hi: usize) -> Vec<StmtR> {
    let n = lo + r.index(hi - lo);
    (0..n).map(|_| random_stmt(r, depth)).collect()
}

/// Generate one random statement of at most `depth` nesting levels.
pub fn random_stmt(r: &mut SplitMix64, depth: u32) -> StmtR {
    let leaf = |r: &mut SplitMix64| match r.below(4) {
        0 => StmtR::Assign(r.below(5) as u8, random_expr(r, 3)),
        1 => StmtR::StoreA(random_expr(r, 3), random_expr(r, 3)),
        2 => StmtR::StoreOut(random_expr(r, 3), random_expr(r, 3)),
        _ => StmtR::GuardedStoreA(random_expr(r, 2), random_expr(r, 2)),
    };
    if depth == 0 || r.chance(4, 6) {
        leaf(r)
    } else if r.chance(1, 2) {
        StmtR::If(
            random_expr(r, 3),
            random_stmts(r, depth - 1, 0, 3),
            random_stmts(r, depth - 1, 0, 3),
        )
    } else {
        StmtR::Loop(2 + r.below(4) as u8, random_stmts(r, depth - 1, 1, 3))
    }
}

fn render_expr(e: &ExprR) -> String {
    match e {
        ExprR::Lit(n) => format!("({n})"),
        ExprR::Var(v) => format!("v{}", v % 5),
        ExprR::ReadA(i) => format!("a[{}]", render_expr(i)),
        ExprR::Bin(op, a, b) => {
            let ops = ["+", "-", "*", "&", "|", "^", "<<", ">>"];
            format!(
                "({} {} {})",
                render_expr(a),
                ops[*op as usize % 8],
                render_expr(b)
            )
        }
        ExprR::Cmp(op, a, b) => {
            let ops = ["<", "<=", ">", ">=", "==", "!="];
            format!(
                "({} {} {})",
                render_expr(a),
                ops[*op as usize % 6],
                render_expr(b)
            )
        }
    }
}

fn render_stmts(stmts: &[StmtR], loop_counter: &mut u32, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            StmtR::Assign(v, e) => {
                out.push_str(&format!("{pad}v{} = {};\n", v % 5, render_expr(e)));
            }
            StmtR::StoreA(i, v) => {
                out.push_str(&format!(
                    "{pad}a[{}] = {};\n",
                    render_expr(i),
                    render_expr(v)
                ));
            }
            StmtR::StoreOut(i, v) => {
                out.push_str(&format!(
                    "{pad}out[{}] = {};\n",
                    render_expr(i),
                    render_expr(v)
                ));
            }
            StmtR::GuardedStoreA(i, v) => {
                // Expressions are side-effect free, so re-rendering the
                // index in both guards and the store is sound.
                let (pad1, pad2) = ("  ".repeat(indent + 1), "  ".repeat(indent + 2));
                let (ie, ve) = (render_expr(i), render_expr(v));
                out.push_str(&format!("{pad}if ({ie} >= 0) {{\n"));
                out.push_str(&format!("{pad1}if ({ie} < 8) {{\n"));
                out.push_str(&format!("{pad2}a[{ie}] = {ve};\n"));
                out.push_str(&format!("{pad1}}} else {{\n{pad1}}}\n"));
                out.push_str(&format!("{pad}}} else {{\n{pad}}}\n"));
            }
            StmtR::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, loop_counter, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            StmtR::Loop(trip, body) => {
                let l = *loop_counter;
                *loop_counter += 1;
                out.push_str(&format!("{pad}var l{l} = 0;\n"));
                out.push_str(&format!("{pad}while (l{l} < {trip}) {{\n"));
                render_stmts(body, loop_counter, out, indent + 1);
                out.push_str(&format!("{}l{l} = l{l} + 1;\n", "  ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// Render a statement recipe as a complete, compilable Wile program.
#[must_use]
pub fn render_program(stmts: &[StmtR]) -> String {
    let mut body = String::new();
    let mut lc = 0;
    render_stmts(stmts, &mut lc, &mut body, 1);
    format!(
        "array a[8] = [3, 1, 4, 1, 5, 9, 2, 6];\noutput out[16];\nfunc main() {{\n  \
         var v0 = 1; var v1 = 2; var v2 = 3; var v3 = 4; var v4 = 5;\n{body}  \
         out[15] = v0 + v1 + v2 + v3 + v4;\n}}\n"
    )
}

fn is_trivial(e: &ExprR) -> bool {
    matches!(e, ExprR::Lit(_) | ExprR::Var(_))
}

/// Structurally smaller variants of `stmts`, most aggressive first: drop a
/// statement, replace an `if`/loop with one of its bodies, shrink nested
/// bodies recursively, collapse non-trivial expressions to `(1)`.
#[must_use]
pub fn shrink_candidates(stmts: &[StmtR]) -> Vec<Vec<StmtR>> {
    let mut out = Vec::new();
    // Drop one statement entirely.
    for i in 0..stmts.len() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
    }
    // Structural simplification in place.
    for i in 0..stmts.len() {
        let splice = |replacement: &[StmtR]| {
            let mut v = stmts.to_vec();
            v.splice(i..=i, replacement.iter().cloned());
            v
        };
        let replace = |s: StmtR| {
            let mut v = stmts.to_vec();
            v[i] = s;
            v
        };
        match &stmts[i] {
            StmtR::If(c, t, e) => {
                out.push(splice(t));
                out.push(splice(e));
                for tc in shrink_candidates(t) {
                    out.push(replace(StmtR::If(c.clone(), tc, e.clone())));
                }
                for ec in shrink_candidates(e) {
                    out.push(replace(StmtR::If(c.clone(), t.clone(), ec)));
                }
                if !is_trivial(c) {
                    out.push(replace(StmtR::If(ExprR::Lit(1), t.clone(), e.clone())));
                }
            }
            StmtR::Loop(trip, body) => {
                out.push(splice(body));
                for bc in shrink_candidates(body) {
                    out.push(replace(StmtR::Loop(*trip, bc)));
                }
                if *trip > 2 {
                    out.push(replace(StmtR::Loop(2, body.clone())));
                }
            }
            StmtR::Assign(v, e) if !is_trivial(e) => {
                out.push(replace(StmtR::Assign(*v, ExprR::Lit(1))));
            }
            StmtR::StoreA(idx, val) if !is_trivial(idx) || !is_trivial(val) => {
                out.push(replace(StmtR::StoreA(ExprR::Lit(0), ExprR::Lit(1))));
            }
            StmtR::StoreOut(idx, val) if !is_trivial(idx) || !is_trivial(val) => {
                out.push(replace(StmtR::StoreOut(ExprR::Lit(0), ExprR::Lit(1))));
            }
            StmtR::GuardedStoreA(idx, val) => {
                // Strip the guards first (the structurally bigger change),
                // then collapse the operands like a plain store.
                out.push(replace(StmtR::StoreA(idx.clone(), val.clone())));
                if !is_trivial(idx) || !is_trivial(val) {
                    out.push(replace(StmtR::GuardedStoreA(ExprR::Lit(0), ExprR::Lit(1))));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let a = random_stmts(&mut SplitMix64::new(11), 2, 1, 8);
        let b = random_stmts(&mut SplitMix64::new(11), 2, 1, 8);
        assert_eq!(a, b);
        assert_eq!(render_program(&a), render_program(&b));
    }

    #[test]
    fn rendered_programs_have_the_fixed_frame() {
        let stmts = random_stmts(&mut SplitMix64::new(5), 2, 1, 8);
        let src = render_program(&stmts);
        assert!(src.starts_with("array a[8]"));
        assert!(src.contains("func main()"));
        assert!(src.contains("out[15]"));
    }

    #[test]
    fn guarded_stores_render_the_in_range_guard_shape() {
        let stmts = vec![StmtR::GuardedStoreA(ExprR::Var(2), ExprR::Lit(7))];
        let src = render_program(&stmts);
        assert!(src.contains("if (v2 >= 0) {"), "{src}");
        assert!(src.contains("if (v2 < 8) {"), "{src}");
        assert!(src.contains("a[v2] = (7);"), "{src}");
    }

    #[test]
    fn guarded_stores_shrink_to_plain_stores() {
        let stmts = vec![StmtR::GuardedStoreA(
            ExprR::Bin(0, Box::new(ExprR::Var(0)), Box::new(ExprR::Lit(3))),
            ExprR::Var(1),
        )];
        let cands = shrink_candidates(&stmts);
        assert!(cands
            .iter()
            .any(|c| matches!(c.as_slice(), [StmtR::StoreA(..)])));
        assert!(cands.iter().any(|c| matches!(
            c.as_slice(),
            [StmtR::GuardedStoreA(ExprR::Lit(0), ExprR::Lit(1))]
        )));
    }

    #[test]
    fn shrink_candidates_are_structurally_smaller_or_simpler() {
        let stmts = vec![
            StmtR::Loop(3, vec![StmtR::Assign(0, ExprR::Var(1))]),
            StmtR::If(
                ExprR::Cmp(0, Box::new(ExprR::Var(0)), Box::new(ExprR::Lit(2))),
                vec![StmtR::StoreOut(ExprR::Lit(0), ExprR::Var(0))],
                vec![],
            ),
        ];
        let cands = shrink_candidates(&stmts);
        assert!(!cands.is_empty());
        // every candidate differs from the original
        assert!(cands.iter().all(|c| *c != stmts));
        // drop-one candidates exist for both statements
        assert!(cands.iter().any(|c| c.len() == 1));
    }

    #[test]
    fn shrinking_reaches_a_small_fixpoint() {
        // Property: program "fails" while it still contains a StoreOut.
        let has_store_out = |stmts: &Vec<StmtR>| {
            fn walk(s: &[StmtR]) -> bool {
                s.iter().any(|st| match st {
                    StmtR::StoreOut(..) => true,
                    StmtR::If(_, t, e) => walk(t) || walk(e),
                    StmtR::Loop(_, b) => walk(b),
                    _ => false,
                })
            }
            walk(stmts)
        };
        let initial = random_stmts(&mut SplitMix64::new(0xBEEF), 2, 6, 8);
        if !has_store_out(&initial) {
            return; // seed produced no store — nothing to shrink
        }
        let min = crate::shrink::minimize(
            initial,
            |s| shrink_candidates(s),
            |s| has_store_out(s),
            5_000,
        );
        assert!(has_store_out(&min));
        assert_eq!(min.len(), 1, "minimal failing program is one statement");
    }
}
