//! Dependency-free deterministic randomness and timing helpers.
//!
//! The repository must build in hermetic environments with no registry
//! access, so randomized tests, the fault-plan samplers, and the
//! micro-benchmarks all draw from this tiny crate instead of external
//! `rand`/`proptest`/`criterion`. Everything here is seed-reproducible:
//! the same seed always yields the same stream on every platform.

#![warn(missing_docs)]

pub mod shrink;
pub mod wile;

use std::time::Instant;

/// SplitMix64 — a tiny, high-quality, splittable PRNG (Steele et al.,
/// OOPSLA 2014). Deterministic across platforms; **not** cryptographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fork an independent stream (for parallel workers / sub-samplers).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64(self.next_u64() ^ 0xA5A5_A5A5_A5A5_A5A5)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for the small ranges used here.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform usize in `[0, n)`. `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform in the half-open range `[lo, hi)`. `lo < hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform u64 in `[lo, hi)`. `lo < hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick a uniform element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// Time `f` over `iters` iterations and return mean nanoseconds per
/// iteration — the plain-`Instant` stand-in for the criterion harness.
pub fn bench_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // one warmup pass keeps cold-start noise out of the mean
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

/// Render a mean-ns measurement the way the bench bins print rows.
#[must_use]
pub fn fmt_bench(name: &str, ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{name:<40} {:>12.3} ms/iter", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{name:<40} {:>12.3} µs/iter", ns / 1_000.0)
    } else {
        format!("{name:<40} {ns:>12.1} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn range_i64_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = a.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!((0..50).all(|_| r.chance(1, 1)));
        assert!((0..50).all(|_| !r.chance(0, 1)));
    }
}
