//! Exhaustive-in-prefix property tests for the operational semantics
//! (deterministic: the former random sampling is replaced by sweeping every
//! prefix/budget in the sampled range).

use std::sync::Arc;
use talft_isa::{assemble, Program};
use talft_machine::{run_program, step, Machine, Status};

fn store_loop_program() -> Arc<Program> {
    let src = r#"
.data
region out at 4096 len 8 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, B 5
loop:
  .pre { forall x:int, m:mem; r1: (G, int, x); r2: (B, int, x); mem: m; }
  and r5, r1, G 7
  add r5, r5, G 4096
  and r6, r2, B 7
  add r6, r6, B 4096
  stG r5, r1
  stB r6, r2
  sub r1, r1, G 1
  sub r2, r2, B 1
  mov r3, G @done
  mov r4, B @done
  bzG r1, r3
  bzB r2, r4
  mov r7, G @loop
  mov r8, B @loop
  jmpG r7
  jmpB r8
done:
  .pre { forall m:mem; mem: m; }
  halt
"#;
    Arc::new(assemble(src).expect("assembles").program)
}

/// The machine is deterministic: any two runs of the same program agree
/// step by step, at every prefix length.
#[test]
fn machine_is_deterministic() {
    let p = store_loop_program();
    for prefix in (0u64..200).step_by(7) {
        let mut a = Machine::boot(Arc::clone(&p));
        let mut b = Machine::boot(Arc::clone(&p));
        for _ in 0..prefix {
            let ea = step(&mut a);
            let eb = step(&mut b);
            assert_eq!(ea, eb, "prefix {prefix}");
        }
        assert_eq!(a.trace(), b.trace(), "prefix {prefix}");
        assert_eq!(a.status(), b.status(), "prefix {prefix}");
        assert_eq!(a.memory(), b.memory(), "prefix {prefix}");
    }
}

/// Traces only grow, statuses only leave `Running` once, and the step
/// counter advances exactly when running.
#[test]
fn trace_monotone_and_status_final() {
    let p = store_loop_program();
    for budget in (1u64..400).step_by(13) {
        let mut m = Machine::boot(Arc::clone(&p));
        let mut last_len = 0usize;
        let mut terminal_seen = false;
        for _ in 0..budget {
            let before = m.steps();
            step(&mut m);
            assert!(m.trace().len() >= last_len);
            last_len = m.trace().len();
            if terminal_seen {
                assert_eq!(m.steps(), before, "terminal machines do not step");
            }
            if !m.status().is_running() {
                terminal_seen = true;
            }
        }
    }
}

#[test]
fn full_run_is_golden() {
    let p = store_loop_program();
    let r = run_program(&p, 100_000);
    assert_eq!(r.status, Status::Halted);
    let values: Vec<i64> = r.trace.iter().map(|&(_, v)| v).collect();
    assert_eq!(values, vec![5, 4, 3, 2, 1]);
}
