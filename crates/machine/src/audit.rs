//! Dynamic color-flow auditing — the runtime mirror of typing Principle 2
//! ("green depends only on green, blue only on blue") and Principle 3
//! ("both colors co-sign dangerous actions").
//!
//! The operational semantics never inspects color tags (they are
//! "fictional"); a well-typed program nonetheless maintains strict color
//! discipline, and — because faults preserve tags — the discipline holds
//! even in faulty runs. An audit violation therefore indicates a checker or
//! compiler bug, never a fault. Campaigns and tests can run audited at
//! moderate cost.

use talft_isa::{Color, Instr, OpSrc, Reg};

use crate::state::{Machine, Status};
use crate::step::step;

/// One color-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Machine step count when observed.
    pub at_step: u64,
    /// The offending instruction.
    pub instr: String,
    /// What discipline was broken.
    pub reason: String,
}

/// Inspect the pending instruction (if any) against the color discipline.
/// Call immediately before [`step`] when `m.ir()` is `Some`.
#[must_use]
pub fn audit_pending(m: &Machine) -> Option<AuditViolation> {
    let instr = m.ir()?;
    let bad = |reason: String| {
        Some(AuditViolation {
            at_step: m.steps(),
            instr: instr.to_string(),
            reason,
        })
    };
    match *instr {
        Instr::Op { rs, src2, .. } => {
            let c1 = m.rcol(rs.into());
            let c2 = match src2 {
                OpSrc::Reg(rt) => m.rcol(rt.into()),
                OpSrc::Imm(v) => v.color,
            };
            if c1 != c2 {
                return bad(format!("ALU operands mix colors {c1}/{c2}"));
            }
            None
        }
        Instr::Ld { color, rs, .. } => {
            let c = m.rcol(rs.into());
            if c != color {
                return bad(format!("ld{color} address register is {c}"));
            }
            None
        }
        Instr::St { color, rd, rs } => {
            let ca = m.rcol(rd.into());
            let cv = m.rcol(rs.into());
            if ca != color || cv != color {
                return bad(format!("st{color} operands colored {ca}/{cv}"));
            }
            None
        }
        Instr::Bz { color, rz, rd } => {
            let cz = m.rcol(rz.into());
            let ct = m.rcol(rd.into());
            if cz != color || ct != color {
                return bad(format!("bz{color} operands colored {cz}/{ct}"));
            }
            // Principle 3: the latched intent in d must be green.
            if color == Color::Blue && m.rval(Reg::Dst) != 0 && m.rcol(Reg::Dst) != Color::Green {
                return bad("blue branch committing a non-green latched target".into());
            }
            None
        }
        Instr::Jmp { color, rd } => {
            let ct = m.rcol(rd.into());
            if ct != color {
                return bad(format!("jmp{color} target register is {ct}"));
            }
            if color == Color::Blue && m.rval(Reg::Dst) != 0 && m.rcol(Reg::Dst) != Color::Green {
                return bad("blue jump committing a non-green latched target".into());
            }
            None
        }
        Instr::Mov { .. } | Instr::Halt => None,
    }
}

/// Run to termination with auditing; returns the terminal status and every
/// violation observed (empty for well-typed programs).
pub fn run_audited(m: &mut Machine, max_steps: u64) -> (Status, Vec<AuditViolation>) {
    let mut violations = Vec::new();
    let start = m.steps();
    while m.status().is_running() && m.steps() - start < max_steps {
        if let Some(v) = audit_pending(m) {
            if violations.len() < 64 {
                violations.push(v);
            }
        }
        step(m);
    }
    (m.status(), violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_isa::assemble;

    #[test]
    fn well_typed_store_sequence_audits_clean() {
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        let mut m = Machine::boot(p);
        let (st, v) = run_audited(&mut m, 10_000);
        assert_eq!(st, Status::Halted);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cse_miscompilation_flagged_by_audit() {
        // The §2.2 bug: blue store with green operands — the audit sees the
        // discipline break that the type checker rejects statically.
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  stB r2, r1\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        let mut m = Machine::boot(p);
        let (st, v) = run_audited(&mut m, 10_000);
        assert_eq!(st, Status::Halted); // executes fine —
        assert!(!v.is_empty()); // — but the discipline violation is visible
        assert!(v[0].reason.contains("stB"));
    }

    #[test]
    fn mixed_color_alu_flagged() {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  \
                   mov r1, G 1\n  mov r2, B 2\n  add r3, r1, r2\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        let mut m = Machine::boot(p);
        let (_, v) = run_audited(&mut m, 1000);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("mix colors"));
    }

    #[test]
    fn faults_do_not_trigger_audits() {
        // Color tags are preserved by reg-zap, so faulty runs of well-typed
        // programs stay audit-clean (they may end in Fault, which is fine).
        use crate::fault::{inject, FaultSite};
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        for step_at in 0..10 {
            let mut m = Machine::boot(Arc::clone(&p));
            for _ in 0..step_at {
                step(&mut m);
            }
            inject(&mut m, FaultSite::Reg(talft_isa::Reg::r(1)), 777);
            let (_, v) = run_audited(&mut m, 10_000);
            assert!(
                v.is_empty(),
                "audit fired on a faulty-but-well-typed run: {v:?}"
            );
        }
    }
}
