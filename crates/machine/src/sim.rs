//! Similarity relations `· sim_Z ·` between machine states (paper Figure 9).
//!
//! Intuitively: under the empty zap tag related objects are identical; under
//! zap tag `c`, objects must be identical *except* values colored `c`, which
//! may have been arbitrarily corrupted. Queue entries are all (conceptually)
//! green, so queues of equal length are similar under `Z = G`.
//!
//! The fault-tolerance theorem (Theorem 4) asserts that a single-fault run
//! that survives to completion is `sim_c`-related to the fault-free run for
//! some color `c`; the campaign driver in `talft-faultsim` checks exactly
//! this.

use talft_isa::{CVal, Color, Reg, ZapTag};

use crate::state::Machine;

/// `v1 sim_Z v2` (rules `sim-val` / `sim-val-zap`): equal, or both of the
/// zapped color.
#[must_use]
pub fn sim_val(z: ZapTag, v1: CVal, v2: CVal) -> bool {
    if v1 == v2 {
        return true;
    }
    v1.color == v2.color && z.zaps(v1.color)
}

/// `R sim_Z R'` (rule `sim-R`): pointwise on every register.
#[must_use]
pub fn sim_regs(z: ZapTag, m1: &Machine, m2: &Machine) -> bool {
    if m1.num_gprs() != m2.num_gprs() {
        return false;
    }
    Reg::all(m1.num_gprs()).all(|r| sim_val(z, m1.reg(r), m2.reg(r)))
}

/// `Q sim_Z Q'` (rules `sim-Q-empty` / `sim-Q`): equal length; entries equal
/// unless the zap tag is green (queue contents are green values).
#[must_use]
pub fn sim_queue(z: ZapTag, m1: &Machine, m2: &Machine) -> bool {
    if m1.queue().len() != m2.queue().len() {
        return false;
    }
    if z.zaps(Color::Green) {
        return true;
    }
    m1.queue()
        .iter()
        .zip(m2.queue().iter())
        .all(|(a, b)| a == b)
}

/// `S1 sim_Z S2` (rule `sim-S`): same code and memory and pending `ir`,
/// similar registers and queues. (The paper's rule fixes `C`, `M`, and `ir`
/// to be *equal* across the two states.)
#[must_use]
pub fn sim_state(z: ZapTag, m1: &Machine, m2: &Machine) -> bool {
    m1.memory() == m2.memory() && m1.ir() == m2.ir() && sim_regs(z, m1, m2) && sim_queue(z, m1, m2)
}

/// `S1 sim_c S2` for *some* color `c` (the existential in Theorem 4).
#[must_use]
pub fn sim_some_color(m1: &Machine, m2: &Machine) -> bool {
    Color::BOTH
        .into_iter()
        .any(|c| sim_state(ZapTag::Zapped(c), m1, m2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject, FaultSite};
    use std::sync::Arc;
    use talft_isa::assemble;

    fn boot() -> Machine {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        Machine::boot(Arc::new(assemble(src).expect("ok").program))
    }

    #[test]
    fn sim_val_cases() {
        let z = ZapTag::Zapped(Color::Green);
        assert!(sim_val(ZapTag::None, CVal::green(1), CVal::green(1)));
        assert!(!sim_val(ZapTag::None, CVal::green(1), CVal::green(2)));
        assert!(sim_val(z, CVal::green(1), CVal::green(2)));
        assert!(!sim_val(z, CVal::blue(1), CVal::blue(2)));
        // colors must match even when zapped
        assert!(!sim_val(z, CVal::green(1), CVal::blue(1)));
    }

    #[test]
    fn identical_states_are_similar_under_empty_tag() {
        let m1 = boot();
        let m2 = boot();
        assert!(sim_state(ZapTag::None, &m1, &m2));
        assert!(sim_some_color(&m1, &m2));
    }

    #[test]
    fn zapped_register_breaks_empty_but_not_colored_sim() {
        let m1 = boot();
        let mut m2 = boot();
        inject(&mut m2, FaultSite::Reg(Reg::r(5)), 42); // r5 is green at boot
        assert!(!sim_state(ZapTag::None, &m1, &m2));
        assert!(sim_state(ZapTag::Zapped(Color::Green), &m1, &m2));
        assert!(!sim_state(ZapTag::Zapped(Color::Blue), &m1, &m2));
        assert!(sim_some_color(&m1, &m2));
    }

    #[test]
    fn queue_similarity_requires_equal_length() {
        let m1 = boot();
        let mut m2 = boot();
        m2.queue_mut().push_front((1, 2));
        assert!(!sim_queue(ZapTag::Zapped(Color::Green), &m1, &m2));
        let mut m1b = boot();
        m1b.queue_mut().push_front((9, 9));
        // different contents: only green zap tolerates
        assert!(sim_queue(ZapTag::Zapped(Color::Green), &m1b, &m2));
        assert!(!sim_queue(ZapTag::Zapped(Color::Blue), &m1b, &m2));
        assert!(!sim_queue(ZapTag::None, &m1b, &m2));
    }

    #[test]
    fn memory_divergence_breaks_similarity() {
        let m1 = boot();
        let mut m2 = boot();
        m2.mem_write(4096, 1);
        assert!(!sim_state(ZapTag::Zapped(Color::Green), &m1, &m2));
    }
}
