//! The small-step operational semantics `S ─s→k S'` (paper Figures 2–4 and
//! the failure rules of Appendix A.1).
//!
//! Each call to [`step`] applies exactly one non-faulty rule (`k = 0`);
//! faulty transitions (`k = 1`) are separate, explicit actions provided by
//! [`crate::fault`]. The observable decoration `s` is returned as the step's
//! [`StepEvent::output`] and accumulated in the machine's trace.

use talft_isa::{CVal, Color, Instr, OpSrc, Reg};

use crate::state::{Machine, OobLoadPolicy, Status, StuckReason};

/// What one step did (for tracing and audits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEvent {
    /// The rule that fired (paper rule names).
    pub rule: &'static str,
    /// Output written to the memory-mapped device, if any (`s`).
    pub output: Option<(i64, i64)>,
    /// Status after the step.
    pub status: Status,
}

impl StepEvent {
    fn plain(rule: &'static str, status: Status) -> Self {
        Self {
            rule,
            output: None,
            status,
        }
    }
}

/// Take one small step. Returns the event describing the rule that fired.
///
/// A machine that is not `Running` does not move (`StuckReason::NotRunning`).
pub fn step(m: &mut Machine) -> StepEvent {
    if !m.status().is_running() {
        return StepEvent::plain("(not running)", m.status());
    }
    m.bump_steps();
    match m.ir().copied() {
        None => fetch(m),
        Some(i) => {
            m.set_ir(None);
            exec(m, i)
        }
    }
}

/// Instruction fetch (rules `fetch` / `fetch-fail`).
fn fetch(m: &mut Machine) -> StepEvent {
    let g = m.rval(Reg::Pc(Color::Green));
    let b = m.rval(Reg::Pc(Color::Blue));
    if g != b {
        m.set_status(Status::Fault);
        return StepEvent::plain("fetch-fail", Status::Fault);
    }
    match m.program().instr(g).copied() {
        Some(i) => {
            m.set_ir(Some(i));
            StepEvent::plain("fetch", Status::Running)
        }
        None => {
            // No rule fires: the machine is stuck. (Well-typed programs
            // never reach this — Theorem 1.)
            let st = Status::Stuck(StuckReason::BadPc(g));
            m.set_status(st);
            StepEvent::plain("(stuck: bad pc)", st)
        }
    }
}

fn exec(m: &mut Machine, i: Instr) -> StepEvent {
    match i {
        Instr::Op { op, rd, rs, src2 } => {
            let a = m.rval(rs.into());
            let (b, color) = match src2 {
                // op2r: result colored like rt.
                OpSrc::Reg(rt) => (m.rval(rt.into()), m.rcol(rt.into())),
                // op1r: result colored like the immediate.
                OpSrc::Imm(v) => (v.val, v.color),
            };
            let r = op.eval(a, b);
            m.bump_pcs();
            m.set_reg(rd.into(), CVal::new(color, r));
            StepEvent::plain(
                match src2 {
                    OpSrc::Reg(_) => "op2r",
                    OpSrc::Imm(_) => "op1r",
                },
                Status::Running,
            )
        }
        Instr::Mov { rd, v } => {
            m.bump_pcs();
            m.set_reg(rd.into(), v);
            StepEvent::plain("mov", Status::Running)
        }
        Instr::St {
            color: Color::Green,
            rd,
            rs,
        } => {
            // stG-queue: push (Rval(rd), Rval(rs)) on the *front*.
            let pair = (m.rval(rd.into()), m.rval(rs.into()));
            m.queue_mut().push_front(pair);
            m.note_queue_depth();
            m.bump_pcs();
            StepEvent::plain("stG-queue", Status::Running)
        }
        Instr::St {
            color: Color::Blue,
            rd,
            rs,
        } => {
            // stB-mem / stB-mem-fail / stB-queue-fail: compare against the
            // *back* (oldest) pair and commit.
            match m.queue_mut().pop_back() {
                None => {
                    m.set_status(Status::Fault);
                    StepEvent::plain("stB-queue-fail", Status::Fault)
                }
                Some((nl, nv)) => {
                    if m.rval(rd.into()) == nl && m.rval(rs.into()) == nv {
                        m.mem_write(nl, nv);
                        m.emit((nl, nv));
                        m.bump_pcs();
                        StepEvent {
                            rule: "stB-mem",
                            output: Some((nl, nv)),
                            status: Status::Running,
                        }
                    } else {
                        m.set_status(Status::Fault);
                        StepEvent::plain("stB-mem-fail", Status::Fault)
                    }
                }
            }
        }
        Instr::Ld {
            color: Color::Green,
            rd,
            rs,
        } => {
            let addr = m.rval(rs.into());
            if let Some((_, v)) = m.queue_find(addr) {
                // ldG-queue: forward the pending (green) store.
                m.bump_pcs();
                m.set_reg(rd.into(), CVal::green(v));
                StepEvent::plain("ldG-queue", Status::Running)
            } else if let Some(v) = m.mem(addr) {
                m.bump_pcs();
                m.set_reg(rd.into(), CVal::green(v));
                StepEvent::plain("ldG-mem", Status::Running)
            } else {
                oob_load(m, rd.into(), Color::Green, "ldG")
            }
        }
        Instr::Ld {
            color: Color::Blue,
            rd,
            rs,
        } => {
            // ldB ignores the queue.
            let addr = m.rval(rs.into());
            if let Some(v) = m.mem(addr) {
                m.bump_pcs();
                m.set_reg(rd.into(), CVal::blue(v));
                StepEvent::plain("ldB-mem", Status::Running)
            } else {
                oob_load(m, rd.into(), Color::Blue, "ldB")
            }
        }
        Instr::Jmp {
            color: Color::Green,
            rd,
        } => {
            // jmpG / jmpG-fail: latch the intended target into d.
            if m.rval(Reg::Dst) == 0 {
                let v = m.reg(rd.into());
                m.bump_pcs();
                m.set_reg(Reg::Dst, v);
                StepEvent::plain("jmpG", Status::Running)
            } else {
                m.set_status(Status::Fault);
                StepEvent::plain("jmpG-fail", Status::Fault)
            }
        }
        Instr::Jmp {
            color: Color::Blue,
            rd,
        } => {
            // jmpB / jmpB-fail: compare and commit the transfer.
            let dval = m.rval(Reg::Dst);
            if dval != 0 && m.rval(rd.into()) == dval {
                let dv = m.reg(Reg::Dst);
                let rv = m.reg(rd.into());
                m.set_reg(Reg::Pc(Color::Green), dv);
                m.set_reg(Reg::Pc(Color::Blue), rv);
                m.set_reg(Reg::Dst, CVal::green(0));
                StepEvent::plain("jmpB", Status::Running)
            } else {
                m.set_status(Status::Fault);
                StepEvent::plain("jmpB-fail", Status::Fault)
            }
        }
        Instr::Bz { color, rz, rd } => {
            let z = m.rval(rz.into());
            let dval = m.rval(Reg::Dst);
            if z != 0 {
                // Untaken: requires d = 0 (else a prior bzG latched a target
                // the blue side now disagrees about — bz-untaken-fail).
                if dval == 0 {
                    m.bump_pcs();
                    StepEvent::plain("bz-untaken", Status::Running)
                } else {
                    m.set_status(Status::Fault);
                    StepEvent::plain("bz-untaken-fail", Status::Fault)
                }
            } else {
                match color {
                    Color::Green => {
                        // bzG-taken: conditional move of the target into d.
                        if dval == 0 {
                            let v = m.reg(rd.into());
                            m.bump_pcs();
                            m.set_reg(Reg::Dst, v);
                            StepEvent::plain("bzG-taken", Status::Running)
                        } else {
                            m.set_status(Status::Fault);
                            StepEvent::plain("bzG-taken-fail", Status::Fault)
                        }
                    }
                    Color::Blue => {
                        // bzB-taken: compare and commit.
                        if dval != 0 && m.rval(rd.into()) == dval {
                            let dv = m.reg(Reg::Dst);
                            let rv = m.reg(rd.into());
                            m.set_reg(Reg::Pc(Color::Green), dv);
                            m.set_reg(Reg::Pc(Color::Blue), rv);
                            m.set_reg(Reg::Dst, CVal::green(0));
                            StepEvent::plain("bzB-taken", Status::Running)
                        } else {
                            m.set_status(Status::Fault);
                            StepEvent::plain("bzB-taken-fail", Status::Fault)
                        }
                    }
                }
            }
        }
        Instr::Halt => {
            m.set_status(Status::Halted);
            StepEvent::plain("halt", Status::Halted)
        }
    }
}

fn oob_load(m: &mut Machine, rd: Reg, color: Color, base: &'static str) -> StepEvent {
    match m.oob_policy {
        OobLoadPolicy::Fault => {
            m.set_status(Status::Fault);
            StepEvent::plain(
                if base == "ldG" {
                    "ldG-fail"
                } else {
                    "ldB-fail"
                },
                Status::Fault,
            )
        }
        OobLoadPolicy::Value(v) => {
            m.bump_pcs();
            m.set_reg(rd, CVal::new(color, v));
            StepEvent::plain(
                if base == "ldG" {
                    "ldG-rand"
                } else {
                    "ldB-rand"
                },
                Status::Running,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_isa::assemble;

    fn boot(src: &str) -> Machine {
        Machine::boot(Arc::new(assemble(src).expect("assembles").program))
    }

    const PRE: &str = ".pre { forall m:mem; mem: m; }";

    #[test]
    fn paper_store_sequence_commits_once() {
        let src = format!(
            "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
             mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  \
             stB r4, r3\n  halt\n"
        );
        let mut m = boot(&src);
        let mut outputs = Vec::new();
        while m.status().is_running() {
            let ev = step(&mut m);
            if let Some(o) = ev.output {
                outputs.push(o);
            }
        }
        assert_eq!(m.status(), Status::Halted);
        assert_eq!(outputs, vec![(4096, 5)]);
        assert_eq!(m.trace(), &[(4096, 5)]);
        assert_eq!(m.mem(4096), Some(5));
        assert!(m.queue().is_empty());
    }

    #[test]
    fn fetch_fail_on_diverged_pcs() {
        let src = format!("\n.code\nmain:\n  {PRE}\n  halt\n");
        let mut m = boot(&src);
        m.set_reg(Reg::Pc(Color::Blue), CVal::blue(2)); // inject divergence
        let ev = step(&mut m);
        assert_eq!(ev.rule, "fetch-fail");
        assert_eq!(m.status(), Status::Fault);
    }

    #[test]
    fn stuck_on_bad_pc() {
        let src = format!("\n.code\nmain:\n  {PRE}\n  halt\n");
        let mut m = boot(&src);
        m.set_reg(Reg::Pc(Color::Green), CVal::green(99));
        m.set_reg(Reg::Pc(Color::Blue), CVal::blue(99));
        let ev = step(&mut m);
        assert_eq!(m.status(), Status::Stuck(StuckReason::BadPc(99)));
        assert_eq!(ev.status, m.status());
    }

    #[test]
    fn stb_mismatch_faults() {
        let src = format!(
            "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  {PRE}\n  \
             mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 6\n  mov r4, B 4096\n  \
             stB r4, r3\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault);
        assert!(m.trace().is_empty()); // nothing observable escaped
    }

    #[test]
    fn stb_on_empty_queue_faults() {
        let src = format!(
            "\n.data\nregion out at 4096 len 1 : int\n.code\nmain:\n  {PRE}\n  \
             mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault);
    }

    #[test]
    fn ldg_forwards_from_queue_ldb_reads_memory() {
        let src = format!(
            "\n.data\nregion out at 4096 len 1 : int = 7\n.code\nmain:\n  {PRE}\n  \
             mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  \
             ldG r5, r2\n  \
             mov r6, B 4096\n  ldB r7, r6\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Halted);
        // Green saw the pending store (5); blue read memory (7).
        assert_eq!(m.reg(Reg::r(5)), CVal::green(5));
        assert_eq!(m.reg(Reg::r(7)), CVal::blue(7));
    }

    #[test]
    fn oob_load_policies() {
        let src = format!("\n.code\nmain:\n  {PRE}\n  mov r1, G 12345\n  ldG r2, r1\n  halt\n");
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault); // default policy: ldG-fail

        let mut m2 = boot(&src).with_oob_policy(OobLoadPolicy::Value(-1));
        while m2.status().is_running() {
            step(&mut m2);
        }
        assert_eq!(m2.status(), Status::Halted); // ldG-rand
        assert_eq!(m2.reg(Reg::r(2)), CVal::green(-1));
    }

    #[test]
    fn jump_protocol_transfers_and_resets_d() {
        let src = format!(
            "\n.code\nmain:\n  {PRE}\n  \
             mov r1, G @target\n  mov r2, B @target\n  jmpG r1\n  jmpB r2\n  halt\ntarget:\n  {PRE}\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Halted);
        // We must have halted at `target` (address 6), not the inline halt (5).
        assert_eq!(m.rval(Reg::Pc(Color::Green)), 6);
        assert_eq!(m.reg(Reg::Dst), CVal::green(0));
    }

    #[test]
    fn jmpb_with_mismatched_target_faults() {
        let src = format!(
            "\n.code\nmain:\n  {PRE}\n  \
             mov r1, G @target\n  mov r2, B @main\n  jmpG r1\n  jmpB r2\n  halt\ntarget:\n  {PRE}\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault);
    }

    #[test]
    fn jmpg_with_nonzero_d_faults() {
        let src =
            format!("\n.code\nmain:\n  {PRE}\n  mov r1, G @main\n  jmpG r1\n  jmpG r1\n  halt\n");
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault); // second jmpG sees d ≠ 0
    }

    #[test]
    fn branch_protocol_taken_and_untaken() {
        // Taken: rz = 0 latches then commits.
        let taken = format!(
            "\n.code\nmain:\n  {PRE}\n  mov r1, G 0\n  mov r2, B 0\n  \
             mov r3, G @target\n  mov r4, B @target\n  bzG r1, r3\n  bzB r2, r4\n  halt\ntarget:\n  {PRE}\n  halt\n"
        );
        let mut m = boot(&taken);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Halted);
        assert_eq!(m.rval(Reg::Pc(Color::Green)), 8); // halted at target
        assert_eq!(m.reg(Reg::Dst), CVal::green(0));

        // Untaken: rz ≠ 0 falls through both halves.
        let untaken = taken
            .replace("mov r1, G 0", "mov r1, G 1")
            .replace("mov r2, B 0", "mov r2, B 1");
        let mut m = boot(&untaken);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Halted);
        assert_eq!(m.rval(Reg::Pc(Color::Green)), 7); // fell through to inline halt
    }

    #[test]
    fn bz_disagreement_faults() {
        // Green says taken (latches d), blue says untaken (rz' ≠ 0) with
        // d ≠ 0 ⇒ bz-untaken-fail.
        let src = format!(
            "\n.code\nmain:\n  {PRE}\n  mov r1, G 0\n  mov r2, B 1\n  \
             mov r3, G @target\n  mov r4, B @target\n  bzG r1, r3\n  bzB r2, r4\n  halt\ntarget:\n  {PRE}\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.status(), Status::Fault);
    }

    #[test]
    fn op_colors_follow_paper_rules() {
        let src = format!(
            "\n.code\nmain:\n  {PRE}\n  mov r1, B 3\n  mov r2, B 4\n  add r3, r1, r2\n  \
             add r4, r1, B 10\n  halt\n"
        );
        let mut m = boot(&src);
        while m.status().is_running() {
            step(&mut m);
        }
        assert_eq!(m.reg(Reg::r(3)), CVal::blue(7));
        assert_eq!(m.reg(Reg::r(4)), CVal::blue(13));
    }

    #[test]
    fn steps_and_events_are_counted() {
        let src = format!("\n.code\nmain:\n  {PRE}\n  halt\n");
        let mut m = boot(&src);
        let e1 = step(&mut m);
        assert_eq!(e1.rule, "fetch");
        let e2 = step(&mut m);
        assert_eq!(e2.rule, "halt");
        assert_eq!(m.steps(), 2);
        let e3 = step(&mut m);
        assert_eq!(e3.rule, "(not running)");
        assert_eq!(m.steps(), 2);
    }
}
