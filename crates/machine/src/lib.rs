//! The TAL_FT faulty hardware: small-step operational semantics, the Single
//! Event Upset fault model, similarity relations, and run helpers — §2 and
//! Figure 9 of *Fault-tolerant Typed Assembly Language* (Perry et al.,
//! PLDI 2007).
//!
//! * [`Machine`] — machine states `(R, C, M, Q, ir)` ([`state`]);
//! * [`step()`] — one operational rule per call, incl. every failure rule of
//!   Appendix A.1 ([`step`](mod@step));
//! * [`fault`] — the `reg-zap` / `Q-zap1` / `Q-zap2` transitions;
//! * [`sim`] — the `sim_Z` similarity relations of Figure 9;
//! * [`run`](mod@run) — whole-program execution with step budgets.
//!
//! The only externally observable behavior is the sequence of `(addr, value)`
//! pairs committed by blue stores (plus fault signals) — exactly the paper's
//! notion of observation.

#![warn(missing_docs)]

pub mod audit;
pub mod divergence;
pub mod fault;
pub mod run;
pub mod sim;
pub mod state;
pub mod step;

pub use audit::{audit_pending, run_audited, AuditViolation};
pub use divergence::action_gpr_masks;
pub use fault::{colored_reg_sites, inject, mutations, read_site, sites, FaultSite};
pub use run::{run, run_program, run_program_with_policy, RunResult};
pub use sim::{sim_queue, sim_regs, sim_some_color, sim_state, sim_val};
pub use state::{Machine, OobLoadPolicy, Output, Status, StuckReason};
pub use step::{step, StepEvent};
