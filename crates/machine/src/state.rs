//! Machine states `S = (R, C, M, Q, ir) | fault` (paper Figure 1) and the
//! step-level bookkeeping around them.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use talft_isa::{CVal, Color, Gpr, Instr, Program, Reg};

/// What to do when a load's address is outside `Dom(M)`.
///
/// Appendix A.1 gives *nondeterministic* rules for this case: the hardware
/// may signal a fault (`ldG-fail`/`ldB-fail`) or deliver an arbitrary value
/// (`ldG-rand`/`ldB-rand`). The policy resolves the nondeterminism so runs
/// are reproducible; campaigns exercise all branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OobLoadPolicy {
    /// Signal a hardware fault (`ld*-fail`).
    #[default]
    Fault,
    /// Deliver this fixed arbitrary value (`ld*-rand` with a chosen witness).
    Value(i64),
}

/// Why a machine cannot take a step (well-typed programs never get stuck —
/// Theorem 1; a stuck state in a campaign is a soundness violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckReason {
    /// Both program counters agree but point outside `Dom(C)`.
    BadPc(i64),
    /// The machine had already halted or faulted and was stepped again.
    NotRunning,
}

/// Execution status of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The machine can take further steps.
    Running,
    /// The hardware detected a transient fault (`fault` state).
    Fault,
    /// The `halt` pseudo-instruction was executed.
    Halted,
    /// No rule applies (see [`StuckReason`]).
    Stuck(StuckReason),
}

impl Status {
    /// Whether further steps are possible.
    #[must_use]
    pub fn is_running(self) -> bool {
        self == Status::Running
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Running => write!(f, "running"),
            Status::Fault => write!(f, "fault"),
            Status::Halted => write!(f, "halted"),
            Status::Stuck(StuckReason::BadPc(a)) => write!(f, "stuck (bad pc {a})"),
            Status::Stuck(StuckReason::NotRunning) => write!(f, "stuck (not running)"),
        }
    }
}

/// One observable output: an `(address, value)` pair committed by `stB`
/// (the `s` decorating the step judgment `S ─s→k S'`).
pub type Output = (i64, i64);

/// The TAL_FT abstract machine.
///
/// `R` is the register bank (GPRs plus `d`, `pcG`, `pcB`); `C` is the
/// (protected, immutable) code memory inside the [`Program`]; `M` is value
/// memory; `Q` is the store queue with **front = newest** (`stG` pushes the
/// front, `stB` pops the back, `find` scans front-to-back as in the paper).
///
/// Value memory and the output trace — the only unbounded components — are
/// **copy-on-write**: `Clone` shares them behind an `Arc`, and the first
/// write after a clone forks a private copy (`Arc::make_mut`). Campaign
/// engines clone a frontier machine once per fault plan, so a clone costs
/// O(registers + queue), not O(memory footprint).
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    gprs: Vec<CVal>,
    d: CVal,
    pc: [CVal; 2], // indexed by color
    mem: Arc<BTreeMap<i64, i64>>,
    queue: VecDeque<(i64, i64)>,
    ir: Option<Instr>,
    status: Status,
    /// Observable trace: every pair committed to memory, in order.
    trace: Arc<Vec<Output>>,
    /// Commutative XOR hash over `(addr, val)` memory entries, maintained
    /// incrementally by [`Machine::mem_write`]. Equal memories always have
    /// equal hashes, so a hash mismatch proves inequality in O(1) — the
    /// fast-fail path of [`Machine::execution_eq`]. (Hash equality still
    /// falls through to a deep comparison; collisions cost time, never
    /// soundness.)
    mem_hash: u64,
    steps: u64,
    max_queue_depth: usize,
    pub(crate) oob_policy: OobLoadPolicy,
}

/// Mix one `(addr, val)` memory entry into a 64-bit contribution
/// (SplitMix64-style finalizer). Entry contributions combine by XOR, which
/// makes the whole-memory hash order-independent and incrementally
/// updatable on overwrite.
fn mem_entry_hash(addr: i64, val: i64) -> u64 {
    let mut z = (addr as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(val as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Machine {
    /// Boot a machine at the program's entry: GPRs and `d` zeroed green,
    /// `pcG`/`pcB` at the entry address, memory from the program's regions,
    /// queue empty.
    #[must_use]
    pub fn boot(program: Arc<Program>) -> Self {
        let entry = program.entry;
        let mem = Arc::new(program.initial_memory());
        let mem_hash = mem
            .iter()
            .fold(0u64, |h, (&a, &v)| h ^ mem_entry_hash(a, v));
        let n = program.num_gprs;
        Self {
            program,
            gprs: vec![CVal::green(0); usize::from(n)],
            d: CVal::green(0),
            pc: [CVal::green(entry), CVal::blue(entry)],
            mem,
            queue: VecDeque::new(),
            ir: None,
            status: Status::Running,
            trace: Arc::new(Vec::new()),
            mem_hash,
            steps: 0,
            max_queue_depth: 0,
            oob_policy: OobLoadPolicy::default(),
        }
    }

    /// Set the out-of-bounds load policy (builder style).
    #[must_use]
    pub fn with_oob_policy(mut self, p: OobLoadPolicy) -> Self {
        self.oob_policy = p;
        self
    }

    /// The program this machine runs.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    pub(crate) fn set_status(&mut self, s: Status) {
        self.status = s;
    }

    /// Steps taken so far (fetches and executions both count, as in the
    /// paper's small-step semantics).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub(crate) fn bump_steps(&mut self) {
        self.steps += 1;
    }

    /// The observable output trace so far.
    #[must_use]
    pub fn trace(&self) -> &[Output] {
        &self.trace
    }

    /// The outputs committed after the first `watermark` — the streaming
    /// hook campaign engines use to compare a faulty run against the golden
    /// trace *as it is produced* instead of at termination.
    ///
    /// Returns an empty slice when fewer than `watermark` outputs exist.
    #[must_use]
    pub fn trace_since(&self, watermark: usize) -> &[Output] {
        self.trace.get(watermark..).unwrap_or(&[])
    }

    pub(crate) fn emit(&mut self, out: Output) {
        Arc::make_mut(&mut self.trace).push(out);
    }

    /// The pending instruction register (`ir`): `None` means the next step
    /// is a fetch.
    #[must_use]
    pub fn ir(&self) -> Option<&Instr> {
        self.ir.as_ref()
    }

    pub(crate) fn set_ir(&mut self, i: Option<Instr>) {
        self.ir = i;
    }

    // ---- register bank -----------------------------------------------------

    /// Read a register (colored).
    #[must_use]
    pub fn reg(&self, r: Reg) -> CVal {
        match r {
            Reg::Gpr(Gpr(n)) => self.gprs[usize::from(n)],
            Reg::Dst => self.d,
            Reg::Pc(c) => self.pc[pc_index(c)],
        }
    }

    /// Write a register (colored).
    pub fn set_reg(&mut self, r: Reg, v: CVal) {
        match r {
            Reg::Gpr(Gpr(n)) => self.gprs[usize::from(n)] = v,
            Reg::Dst => self.d = v,
            Reg::Pc(c) => self.pc[pc_index(c)] = v,
        }
    }

    /// `Rval(a)` — the integer payload.
    #[must_use]
    pub fn rval(&self, r: Reg) -> i64 {
        self.reg(r).val
    }

    /// `Rcol(a)` — the color tag.
    #[must_use]
    pub fn rcol(&self, r: Reg) -> Color {
        self.reg(r).color
    }

    /// `R++` — advance both program counters by one.
    pub(crate) fn bump_pcs(&mut self) {
        for c in Color::BOTH {
            let i = pc_index(c);
            self.pc[i] = self.pc[i].with_val(self.pc[i].val.wrapping_add(1));
        }
    }

    /// Number of GPRs.
    #[must_use]
    pub fn num_gprs(&self) -> u16 {
        self.program.num_gprs
    }

    // ---- memory and queue ---------------------------------------------------

    /// Read memory (`None` when `addr ∉ Dom(M)`).
    #[must_use]
    pub fn mem(&self, addr: i64) -> Option<i64> {
        self.mem.get(&addr).copied()
    }

    /// Whether `addr ∈ Dom(M)`.
    #[must_use]
    pub fn in_mem_dom(&self, addr: i64) -> bool {
        self.mem.contains_key(&addr)
    }

    /// Raw write used by `stB` commit (paper rule `stB-mem`: `M[nl ↦ nl']`,
    /// with no domain check — committed pairs have passed the dual-color
    /// comparison).
    pub(crate) fn mem_write(&mut self, addr: i64, val: i64) {
        let old = Arc::make_mut(&mut self.mem).insert(addr, val);
        if let Some(o) = old {
            self.mem_hash ^= mem_entry_hash(addr, o);
        }
        self.mem_hash ^= mem_entry_hash(addr, val);
    }

    /// The whole value memory (for similarity checks and harnesses).
    #[must_use]
    pub fn memory(&self) -> &BTreeMap<i64, i64> {
        &self.mem
    }

    /// The store queue, front (newest) first.
    #[must_use]
    pub fn queue(&self) -> &VecDeque<(i64, i64)> {
        &self.queue
    }

    /// Mutable access to the store queue (fault injection and test hooks;
    /// ordinary execution goes through [`crate::step()`]).
    pub fn queue_mut(&mut self) -> &mut VecDeque<(i64, i64)> {
        &mut self.queue
    }

    /// High-water mark of the store queue (hardware store-buffer sizing).
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    pub(crate) fn note_queue_depth(&mut self) {
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
    }

    /// `find(Q, n)`: the first (newest) pair with address `n`.
    #[must_use]
    pub fn queue_find(&self, addr: i64) -> Option<(i64, i64)> {
        self.queue.iter().copied().find(|&(a, _)| a == addr)
    }

    /// Index (0 = front/newest) of the entry [`Machine::queue_find`] would
    /// return. The batched campaign engine uses this to name the forwarded
    /// slot: with every queue *address* equal across lanes (address
    /// divergence demotes), all lanes forward from the same index.
    #[must_use]
    pub fn queue_find_index(&self, addr: i64) -> Option<usize> {
        self.queue.iter().position(|&(a, _)| a == addr)
    }

    // ---- whole-state comparison --------------------------------------------

    /// Whether this machine and `other` still share the same copy-on-write
    /// value memory (no write has forked them since the clone). Harness
    /// observability hook; not part of the machine semantics.
    #[must_use]
    pub fn memory_shared_with(&self, other: &Machine) -> bool {
        Arc::ptr_eq(&self.mem, &other.mem)
    }

    /// Full execution-state equality: two machines agree on every component
    /// that influences future execution (registers, pcs, `d`, memory, queue,
    /// `ir`, status, step count, trace, OOB policy). Because stepping is
    /// deterministic, `a.execution_eq(&b)` implies the two runs are
    /// indistinguishable from here on — the soundness basis for the campaign
    /// engine's convergence early-exit against golden checkpoints.
    ///
    /// The queue high-water statistic ([`Machine::max_queue_depth`]) is
    /// excluded: it never feeds back into execution. Comparison is ordered
    /// cheap-to-expensive: scalars, then the O(1) incremental memory hash
    /// (a mismatch proves the memories differ without walking them), then
    /// registers and queue, with the deep memory/trace comparisons last and
    /// behind `Arc` pointer fast paths.
    #[must_use]
    pub fn execution_eq(&self, other: &Machine) -> bool {
        self.steps == other.steps
            && self.status == other.status
            && self.oob_policy == other.oob_policy
            && self.ir == other.ir
            && self.pc == other.pc
            && self.d == other.d
            && self.mem_hash == other.mem_hash
            && self.queue.len() == other.queue.len()
            && self.trace.len() == other.trace.len()
            && self.gprs == other.gprs
            && self.queue == other.queue
            && (Arc::ptr_eq(&self.trace, &other.trace) || self.trace == other.trace)
            && (Arc::ptr_eq(&self.mem, &other.mem) || self.mem == other.mem)
    }

    /// Execution equality *modulo GPRs* for trace-verified continuations:
    /// compares every non-GPR component and returns the bitmask of GPR
    /// indices where the two machines differ (`None` when any non-GPR
    /// component differs).
    ///
    /// # Precondition (caller-guaranteed, not checked)
    ///
    /// Both machines run the **same program** and `self`'s committed outputs
    /// have been verified equal to the golden trace that `other` is a
    /// prefix-state of. Under that precondition, equal trace *lengths* imply
    /// equal traces, and — because the only memory write in the semantics is
    /// the `stB-mem` commit, which always emits the written pair — equal
    /// traces imply equal memories. That is what lets this comparison skip
    /// the O(|M|) and O(|trace|) deep walks that [`Machine::execution_eq`]
    /// must do; the incremental memory hash is still compared as a
    /// belt-and-suspenders guard. Register files wider than 64 GPRs cannot
    /// be masked: they compare for full equality and report `Some(0)` or
    /// `None`.
    #[must_use]
    pub fn diverged_gprs_trace_verified(&self, other: &Machine) -> Option<u64> {
        let non_gpr_eq = Arc::ptr_eq(&self.program, &other.program)
            && self.steps == other.steps
            && self.status == other.status
            && self.oob_policy == other.oob_policy
            && self.ir == other.ir
            && self.pc == other.pc
            && self.d == other.d
            && self.mem_hash == other.mem_hash
            && self.trace.len() == other.trace.len()
            && self.queue == other.queue;
        if !non_gpr_eq {
            return None;
        }
        if self.gprs.len() > 64 {
            return (self.gprs == other.gprs).then_some(0);
        }
        Some(
            self.gprs
                .iter()
                .zip(&other.gprs)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .fold(0u64, |m, (i, _)| m | (1 << i)),
        )
    }
}

pub(crate) fn pc_index(c: Color) -> usize {
    match c {
        Color::Green => 0,
        Color::Blue => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_logic::ExprArena;

    fn tiny() -> Arc<Program> {
        let mut arena = ExprArena::new();
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        let _ = &mut arena;
        Arc::new(talft_isa::assemble(src).expect("assembles").program)
    }

    #[test]
    fn boot_state_matches_paper_conventions() {
        let m = Machine::boot(tiny());
        assert_eq!(m.status(), Status::Running);
        assert_eq!(m.rval(Reg::Pc(Color::Green)), 1);
        assert_eq!(m.rval(Reg::Pc(Color::Blue)), 1);
        assert_eq!(m.rcol(Reg::Pc(Color::Green)), Color::Green);
        assert_eq!(m.rcol(Reg::Pc(Color::Blue)), Color::Blue);
        assert_eq!(m.reg(Reg::Dst), CVal::green(0));
        assert!(m.queue().is_empty());
        assert!(m.trace().is_empty());
        assert!(m.ir().is_none());
    }

    #[test]
    fn register_bank_read_write() {
        let mut m = Machine::boot(tiny());
        m.set_reg(Reg::r(3), CVal::blue(99));
        assert_eq!(m.reg(Reg::r(3)), CVal::blue(99));
        assert_eq!(m.rval(Reg::r(3)), 99);
        assert_eq!(m.rcol(Reg::r(3)), Color::Blue);
        m.set_reg(Reg::Dst, CVal::green(7));
        assert_eq!(m.rval(Reg::Dst), 7);
    }

    #[test]
    fn queue_find_scans_newest_first() {
        let mut m = Machine::boot(tiny());
        m.queue_mut().push_front((100, 1)); // older
        m.queue_mut().push_front((100, 2)); // newer
        assert_eq!(m.queue_find(100), Some((100, 2)));
        assert_eq!(m.queue_find(42), None);
    }

    #[test]
    fn clone_shares_memory_until_first_write() {
        let mut m = Machine::boot(tiny());
        let snap = m.clone();
        assert!(m.memory_shared_with(&snap), "clone must not deep-copy M");
        m.mem_write(4096, 7);
        assert!(!m.memory_shared_with(&snap), "first write forks the Arc");
        assert_eq!(m.mem(4096), Some(7));
        assert_eq!(snap.mem(4096), None, "the snapshot is unaffected");
    }

    #[test]
    fn clone_shares_trace_until_first_emit() {
        let mut m = Machine::boot(tiny());
        m.emit((1, 2));
        let snap = m.clone();
        m.emit((3, 4));
        assert_eq!(snap.trace(), &[(1, 2)]);
        assert_eq!(m.trace(), &[(1, 2), (3, 4)]);
    }

    #[test]
    fn execution_eq_covers_semantic_state_only() {
        let mut m = Machine::boot(tiny());
        let mut n = m.clone();
        assert!(m.execution_eq(&n));
        // The high-water statistic is not semantic state.
        n.queue_mut().push_front((1, 1));
        n.note_queue_depth();
        n.queue_mut().pop_front();
        assert!(m.execution_eq(&n));
        // Every semantic component breaks equality.
        n.set_reg(Reg::r(0), CVal::blue(1));
        assert!(!m.execution_eq(&n));
        n.set_reg(Reg::r(0), CVal::green(0));
        assert!(m.execution_eq(&n));
        n.mem_write(4096, 1);
        assert!(!m.execution_eq(&n));
        m.mem_write(4096, 1);
        assert!(m.execution_eq(&m.clone()));
        m.bump_steps();
        assert!(!m.execution_eq(&n));
    }

    #[test]
    fn mem_hash_tracks_content_not_history() {
        let mut a = Machine::boot(tiny());
        let mut b = Machine::boot(tiny());
        assert_eq!(a.mem_hash, b.mem_hash);
        // Different write orders, same final content ⇒ same hash.
        a.mem_write(10, 1);
        a.mem_write(20, 2);
        b.mem_write(20, 2);
        b.mem_write(10, 1);
        assert_eq!(a.mem_hash, b.mem_hash);
        // Overwrites retract the old entry's contribution.
        a.mem_write(10, 99);
        assert_ne!(a.mem_hash, b.mem_hash);
        a.mem_write(10, 1);
        assert_eq!(a.mem_hash, b.mem_hash);
        // And the hash always agrees with a from-scratch fold.
        let scratch = a
            .memory()
            .iter()
            .fold(0u64, |h, (&ad, &v)| h ^ mem_entry_hash(ad, v));
        assert_eq!(a.mem_hash, scratch);
    }

    #[test]
    fn bump_pcs_preserves_colors() {
        let mut m = Machine::boot(tiny());
        m.bump_pcs();
        assert_eq!(m.reg(Reg::Pc(Color::Green)), CVal::green(2));
        assert_eq!(m.reg(Reg::Pc(Color::Blue)), CVal::blue(2));
    }
}
