//! Machine states `S = (R, C, M, Q, ir) | fault` (paper Figure 1) and the
//! step-level bookkeeping around them.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use talft_isa::{CVal, Color, Gpr, Instr, Program, Reg};

/// What to do when a load's address is outside `Dom(M)`.
///
/// Appendix A.1 gives *nondeterministic* rules for this case: the hardware
/// may signal a fault (`ldG-fail`/`ldB-fail`) or deliver an arbitrary value
/// (`ldG-rand`/`ldB-rand`). The policy resolves the nondeterminism so runs
/// are reproducible; campaigns exercise all branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OobLoadPolicy {
    /// Signal a hardware fault (`ld*-fail`).
    #[default]
    Fault,
    /// Deliver this fixed arbitrary value (`ld*-rand` with a chosen witness).
    Value(i64),
}

/// Why a machine cannot take a step (well-typed programs never get stuck —
/// Theorem 1; a stuck state in a campaign is a soundness violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckReason {
    /// Both program counters agree but point outside `Dom(C)`.
    BadPc(i64),
    /// The machine had already halted or faulted and was stepped again.
    NotRunning,
}

/// Execution status of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The machine can take further steps.
    Running,
    /// The hardware detected a transient fault (`fault` state).
    Fault,
    /// The `halt` pseudo-instruction was executed.
    Halted,
    /// No rule applies (see [`StuckReason`]).
    Stuck(StuckReason),
}

impl Status {
    /// Whether further steps are possible.
    #[must_use]
    pub fn is_running(self) -> bool {
        self == Status::Running
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Running => write!(f, "running"),
            Status::Fault => write!(f, "fault"),
            Status::Halted => write!(f, "halted"),
            Status::Stuck(StuckReason::BadPc(a)) => write!(f, "stuck (bad pc {a})"),
            Status::Stuck(StuckReason::NotRunning) => write!(f, "stuck (not running)"),
        }
    }
}

/// One observable output: an `(address, value)` pair committed by `stB`
/// (the `s` decorating the step judgment `S ─s→k S'`).
pub type Output = (i64, i64);

/// The TAL_FT abstract machine.
///
/// `R` is the register bank (GPRs plus `d`, `pcG`, `pcB`); `C` is the
/// (protected, immutable) code memory inside the [`Program`]; `M` is value
/// memory; `Q` is the store queue with **front = newest** (`stG` pushes the
/// front, `stB` pops the back, `find` scans front-to-back as in the paper).
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    gprs: Vec<CVal>,
    d: CVal,
    pc: [CVal; 2], // indexed by color
    mem: BTreeMap<i64, i64>,
    queue: VecDeque<(i64, i64)>,
    ir: Option<Instr>,
    status: Status,
    /// Observable trace: every pair committed to memory, in order.
    trace: Vec<Output>,
    steps: u64,
    max_queue_depth: usize,
    pub(crate) oob_policy: OobLoadPolicy,
}

impl Machine {
    /// Boot a machine at the program's entry: GPRs and `d` zeroed green,
    /// `pcG`/`pcB` at the entry address, memory from the program's regions,
    /// queue empty.
    #[must_use]
    pub fn boot(program: Arc<Program>) -> Self {
        let entry = program.entry;
        let mem = program.initial_memory();
        let n = program.num_gprs;
        Self {
            program,
            gprs: vec![CVal::green(0); usize::from(n)],
            d: CVal::green(0),
            pc: [CVal::green(entry), CVal::blue(entry)],
            mem,
            queue: VecDeque::new(),
            ir: None,
            status: Status::Running,
            trace: Vec::new(),
            steps: 0,
            max_queue_depth: 0,
            oob_policy: OobLoadPolicy::default(),
        }
    }

    /// Set the out-of-bounds load policy (builder style).
    #[must_use]
    pub fn with_oob_policy(mut self, p: OobLoadPolicy) -> Self {
        self.oob_policy = p;
        self
    }

    /// The program this machine runs.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    pub(crate) fn set_status(&mut self, s: Status) {
        self.status = s;
    }

    /// Steps taken so far (fetches and executions both count, as in the
    /// paper's small-step semantics).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub(crate) fn bump_steps(&mut self) {
        self.steps += 1;
    }

    /// The observable output trace so far.
    #[must_use]
    pub fn trace(&self) -> &[Output] {
        &self.trace
    }

    /// The outputs committed after the first `watermark` — the streaming
    /// hook campaign engines use to compare a faulty run against the golden
    /// trace *as it is produced* instead of at termination.
    ///
    /// Returns an empty slice when fewer than `watermark` outputs exist.
    #[must_use]
    pub fn trace_since(&self, watermark: usize) -> &[Output] {
        self.trace.get(watermark..).unwrap_or(&[])
    }

    pub(crate) fn emit(&mut self, out: Output) {
        self.trace.push(out);
    }

    /// The pending instruction register (`ir`): `None` means the next step
    /// is a fetch.
    #[must_use]
    pub fn ir(&self) -> Option<&Instr> {
        self.ir.as_ref()
    }

    pub(crate) fn set_ir(&mut self, i: Option<Instr>) {
        self.ir = i;
    }

    // ---- register bank -----------------------------------------------------

    /// Read a register (colored).
    #[must_use]
    pub fn reg(&self, r: Reg) -> CVal {
        match r {
            Reg::Gpr(Gpr(n)) => self.gprs[usize::from(n)],
            Reg::Dst => self.d,
            Reg::Pc(c) => self.pc[pc_index(c)],
        }
    }

    /// Write a register (colored).
    pub fn set_reg(&mut self, r: Reg, v: CVal) {
        match r {
            Reg::Gpr(Gpr(n)) => self.gprs[usize::from(n)] = v,
            Reg::Dst => self.d = v,
            Reg::Pc(c) => self.pc[pc_index(c)] = v,
        }
    }

    /// `Rval(a)` — the integer payload.
    #[must_use]
    pub fn rval(&self, r: Reg) -> i64 {
        self.reg(r).val
    }

    /// `Rcol(a)` — the color tag.
    #[must_use]
    pub fn rcol(&self, r: Reg) -> Color {
        self.reg(r).color
    }

    /// `R++` — advance both program counters by one.
    pub(crate) fn bump_pcs(&mut self) {
        for c in Color::BOTH {
            let i = pc_index(c);
            self.pc[i] = self.pc[i].with_val(self.pc[i].val.wrapping_add(1));
        }
    }

    /// Number of GPRs.
    #[must_use]
    pub fn num_gprs(&self) -> u16 {
        self.program.num_gprs
    }

    // ---- memory and queue ---------------------------------------------------

    /// Read memory (`None` when `addr ∉ Dom(M)`).
    #[must_use]
    pub fn mem(&self, addr: i64) -> Option<i64> {
        self.mem.get(&addr).copied()
    }

    /// Whether `addr ∈ Dom(M)`.
    #[must_use]
    pub fn in_mem_dom(&self, addr: i64) -> bool {
        self.mem.contains_key(&addr)
    }

    /// Raw write used by `stB` commit (paper rule `stB-mem`: `M[nl ↦ nl']`,
    /// with no domain check — committed pairs have passed the dual-color
    /// comparison).
    pub(crate) fn mem_write(&mut self, addr: i64, val: i64) {
        self.mem.insert(addr, val);
    }

    /// The whole value memory (for similarity checks and harnesses).
    #[must_use]
    pub fn memory(&self) -> &BTreeMap<i64, i64> {
        &self.mem
    }

    /// The store queue, front (newest) first.
    #[must_use]
    pub fn queue(&self) -> &VecDeque<(i64, i64)> {
        &self.queue
    }

    /// Mutable access to the store queue (fault injection and test hooks;
    /// ordinary execution goes through [`crate::step()`]).
    pub fn queue_mut(&mut self) -> &mut VecDeque<(i64, i64)> {
        &mut self.queue
    }

    /// High-water mark of the store queue (hardware store-buffer sizing).
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    pub(crate) fn note_queue_depth(&mut self) {
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
    }

    /// `find(Q, n)`: the first (newest) pair with address `n`.
    #[must_use]
    pub fn queue_find(&self, addr: i64) -> Option<(i64, i64)> {
        self.queue.iter().copied().find(|&(a, _)| a == addr)
    }
}

pub(crate) fn pc_index(c: Color) -> usize {
    match c {
        Color::Green => 0,
        Color::Blue => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_logic::ExprArena;

    fn tiny() -> Arc<Program> {
        let mut arena = ExprArena::new();
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        let _ = &mut arena;
        Arc::new(talft_isa::assemble(src).expect("assembles").program)
    }

    #[test]
    fn boot_state_matches_paper_conventions() {
        let m = Machine::boot(tiny());
        assert_eq!(m.status(), Status::Running);
        assert_eq!(m.rval(Reg::Pc(Color::Green)), 1);
        assert_eq!(m.rval(Reg::Pc(Color::Blue)), 1);
        assert_eq!(m.rcol(Reg::Pc(Color::Green)), Color::Green);
        assert_eq!(m.rcol(Reg::Pc(Color::Blue)), Color::Blue);
        assert_eq!(m.reg(Reg::Dst), CVal::green(0));
        assert!(m.queue().is_empty());
        assert!(m.trace().is_empty());
        assert!(m.ir().is_none());
    }

    #[test]
    fn register_bank_read_write() {
        let mut m = Machine::boot(tiny());
        m.set_reg(Reg::r(3), CVal::blue(99));
        assert_eq!(m.reg(Reg::r(3)), CVal::blue(99));
        assert_eq!(m.rval(Reg::r(3)), 99);
        assert_eq!(m.rcol(Reg::r(3)), Color::Blue);
        m.set_reg(Reg::Dst, CVal::green(7));
        assert_eq!(m.rval(Reg::Dst), 7);
    }

    #[test]
    fn queue_find_scans_newest_first() {
        let mut m = Machine::boot(tiny());
        m.queue_mut().push_front((100, 1)); // older
        m.queue_mut().push_front((100, 2)); // newer
        assert_eq!(m.queue_find(100), Some((100, 2)));
        assert_eq!(m.queue_find(42), None);
    }

    #[test]
    fn bump_pcs_preserves_colors() {
        let mut m = Machine::boot(tiny());
        m.bump_pcs();
        assert_eq!(m.reg(Reg::Pc(Color::Green)), CVal::green(2));
        assert_eq!(m.reg(Reg::Pc(Color::Blue)), CVal::blue(2));
    }
}
