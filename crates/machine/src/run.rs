//! Whole-program execution helpers: run a machine to a terminal state with a
//! step budget, collecting the observable trace.

use std::sync::Arc;

use talft_isa::Program;
use talft_obs::{LazyCounter, LazyMaxGauge};

use crate::state::{Machine, OobLoadPolicy, Output, Status};
use crate::step::step;

static STEPS: LazyCounter = LazyCounter::new("machine.steps");
static RUNS: LazyCounter = LazyCounter::new("machine.runs");
static QUEUE_HWM: LazyMaxGauge = LazyMaxGauge::new("machine.queue.hwm");

/// Result of running a machine to termination (or budget exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Terminal status (`Running` means the step budget ran out).
    pub status: Status,
    /// The observable output trace, in commit order.
    pub trace: Vec<Output>,
    /// Steps taken.
    pub steps: u64,
}

impl RunResult {
    /// Whether the run finished cleanly (halted without hardware fault).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.status == Status::Halted
    }
}

/// Run `m` until it leaves `Running` or `max_steps` is exhausted.
pub fn run(m: &mut Machine, max_steps: u64) -> RunResult {
    let start = m.steps();
    while m.status().is_running() && m.steps() - start < max_steps {
        step(m);
    }
    // Recorded once per run, not per step, to keep the interpreter loop
    // uninstrumented (overhead policy, DESIGN.md §Observability).
    if talft_obs::enabled() {
        RUNS.inc();
        STEPS.add(m.steps() - start);
        QUEUE_HWM.record(m.max_queue_depth() as u64);
    }
    RunResult {
        status: m.status(),
        trace: m.trace().to_vec(),
        steps: m.steps() - start,
    }
}

/// Boot and run a program in one call.
pub fn run_program(program: &Arc<Program>, max_steps: u64) -> RunResult {
    let mut m = Machine::boot(Arc::clone(program));
    run(&mut m, max_steps)
}

/// Boot and run with an explicit out-of-bounds-load policy.
pub fn run_program_with_policy(
    program: &Arc<Program>,
    max_steps: u64,
    policy: OobLoadPolicy,
) -> RunResult {
    let mut m = Machine::boot(Arc::clone(program)).with_oob_policy(policy);
    run(&mut m, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    #[test]
    fn run_collects_trace_and_steps() {
        let src = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  \
                   .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  \
                   stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        let r = run_program(&p, 1000);
        assert!(r.halted());
        assert_eq!(r.trace, vec![(4096, 5)]);
        // 7 instructions, each fetch+exec = 2 steps
        assert_eq!(r.steps, 14);
    }

    #[test]
    fn budget_exhaustion_reports_running() {
        // tight infinite loop: jmpG/jmpB back to main
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  \
                   mov r1, G @main\n  mov r2, B @main\n  jmpG r1\n  jmpB r2\n  halt\n";
        let p = Arc::new(assemble(src).expect("ok").program);
        let r = run_program(&p, 50);
        assert_eq!(r.status, Status::Running);
        assert_eq!(r.steps, 50);
    }
}
