//! Cheap divergence probes between two machines running the same program —
//! the observability layer under the bit-parallel batched campaign engine
//! (`talft-faultsim::batch`, DESIGN.md §12).
//!
//! A batched campaign lane stays in the packed representation only while its
//! divergence from the shared golden replay is a *single same-color GPR
//! value*. These accessors let the engine (and its demotion tests) witness
//! exactly which component escaped: the GPR mask, a queue-depth delta (a
//! `stG`/`stB` executed differently), or a pc/`ir` split (control flow
//! forked). They are diagnostics over public machine state, not part of the
//! operational semantics, and make no precondition on the two machines
//! beyond sharing a program shape.

use talft_isa::{Color, Instr, Reg};

use crate::state::Machine;

/// GPR `(reads, writes)` bitmasks of a machine's pending action: the
/// instruction in `ir`, or nothing for a fetch (fetches read only the pcs).
///
/// `uses()` over-approximates the dynamic GPR reads of every operational
/// rule for the instruction (including its failure rules), and `def()` is
/// exactly the GPR written on the non-faulting rule — the contract the
/// golden-run liveness scan and the batched engine's read-demotion check
/// both rely on. Registers at index ≥ 64 cannot be represented and are
/// dropped from the masks; callers gate on `num_gprs ≤ 64`.
#[must_use]
pub fn action_gpr_masks(ir: Option<&Instr>) -> (u64, u64) {
    match ir {
        None => (0, 0),
        Some(i) => {
            let mut reads = 0u64;
            for g in i.uses() {
                if g.0 < 64 {
                    reads |= 1 << g.0;
                }
            }
            let writes = i.def().map_or(0, |g| if g.0 < 64 { 1 << g.0 } else { 0 });
            (reads, writes)
        }
    }
}

impl Machine {
    /// Bitmask of GPR indices (< 64) where the two machines hold different
    /// `CVal`s — value *or* color. Unlike
    /// [`Machine::diverged_gprs_trace_verified`] this makes no claim about
    /// the rest of the state; it is the raw register diff.
    #[must_use]
    pub fn gpr_divergence_mask(&self, other: &Machine) -> u64 {
        let n = self.num_gprs().min(other.num_gprs()).min(64);
        let mut mask = 0u64;
        for i in 0..n {
            if self.reg(Reg::r(i)) != other.reg(Reg::r(i)) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Signed difference in store-queue depth, `self − other`. A nonzero
    /// delta means a `stG` or `stB` executed on one side but not the other —
    /// the lane has escaped the single-register divergence shape.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn queue_depth_delta(&self, other: &Machine) -> i64 {
        self.queue().len() as i64 - other.queue().len() as i64
    }

    /// Whether control state has forked: either pc differs or the fetched
    /// `ir` differs. Once this is true the two runs are no longer executing
    /// the same action sequence.
    #[must_use]
    pub fn pc_diverged(&self, other: &Machine) -> bool {
        self.reg(Reg::Pc(Color::Green)) != other.reg(Reg::Pc(Color::Green))
            || self.reg(Reg::Pc(Color::Blue)) != other.reg(Reg::Pc(Color::Blue))
            || self.ir() != other.ir()
    }

    /// Whether the destination latch `d` holds different `CVal`s — value
    /// *or* color (a `bzG` that latched on one side only leaves the values
    /// equal but the colors split, and `sim_val` is color-aware). This is
    /// the divergence shape the batched engine's `d` shadow tracks.
    #[must_use]
    pub fn d_diverged(&self, other: &Machine) -> bool {
        self.reg(Reg::Dst) != other.reg(Reg::Dst)
    }

    /// Bitmask of store-queue slots (bit 0 = front/newest) whose *values*
    /// differ while the queues agree on depth and every address. `None`
    /// when the queues differ in shape — depth delta, any address mismatch,
    /// or depth beyond 64 — i.e. when the divergence is not expressible as
    /// a pure value shadow (a diverged *address* changes which entry later
    /// `ldG`s forward from, so the batched engine demotes instead).
    #[must_use]
    pub fn queue_value_divergence_mask(&self, other: &Machine) -> Option<u64> {
        let q1 = self.queue();
        let q2 = other.queue();
        if q1.len() != q2.len() || q1.len() > 64 {
            return None;
        }
        let mut mask = 0u64;
        for (i, (&(a1, v1), &(a2, v2))) in q1.iter().zip(q2.iter()).enumerate() {
            if a1 != a2 {
                return None;
            }
            if v1 != v2 {
                mask |= 1 << i;
            }
        }
        Some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_isa::{assemble, CVal};

    fn arc(src: &str) -> Arc<talft_isa::Program> {
        Arc::new(assemble(src).expect("assembles").program)
    }

    const PROG: &str = "\n.data\nregion out at 4096 len 1 : int output\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  mov r1, G 5\n  mov r2, G 4096\n  stG r2, r1\n  mov r3, B 5\n  mov r4, B 4096\n  stB r4, r3\n  halt\n";

    #[test]
    fn identical_machines_show_no_divergence() {
        let m = Machine::boot(arc(PROG));
        let n = m.clone();
        assert_eq!(m.gpr_divergence_mask(&n), 0);
        assert_eq!(m.queue_depth_delta(&n), 0);
        assert!(!m.pc_diverged(&n));
    }

    #[test]
    fn register_corruption_shows_in_gpr_mask_only() {
        let m = Machine::boot(arc(PROG));
        let mut n = m.clone();
        n.set_reg(Reg::r(3), CVal::green(99));
        assert_eq!(m.gpr_divergence_mask(&n), 1 << 3);
        assert_eq!(m.queue_depth_delta(&n), 0);
        assert!(!m.pc_diverged(&n));
        // Color-only flips count as divergence too (sim_c is color-aware).
        let mut c = m.clone();
        let old = c.reg(Reg::r(5));
        c.set_reg(Reg::r(5), CVal::blue(old.val));
        assert_eq!(m.gpr_divergence_mask(&c), 1 << 5);
    }

    #[test]
    fn d_and_queue_value_divergence_are_witnessed() {
        let m = Machine::boot(arc(PROG));
        let mut n = m.clone();
        assert!(!m.d_diverged(&n));
        assert_eq!(m.queue_value_divergence_mask(&n), Some(0));
        // A color-only `d` split counts: sim_val is color-aware.
        let old = n.reg(Reg::Dst);
        n.set_reg(Reg::Dst, CVal::blue(old.val));
        assert!(m.d_diverged(&n));
        // Value shadow: same depth, same addresses, one value differs.
        let mut a = m.clone();
        let mut b = m.clone();
        a.queue_mut().push_front((4096, 5));
        a.queue_mut().push_front((4097, 6));
        b.queue_mut().push_front((4096, 5));
        b.queue_mut().push_front((4097, 99));
        assert_eq!(a.queue_value_divergence_mask(&b), Some(1 << 0));
        // An address mismatch is not a value shadow.
        b.queue_mut()[1].0 = 5000;
        assert_eq!(a.queue_value_divergence_mask(&b), None);
        // Neither is a depth delta.
        b.queue_mut().clear();
        assert_eq!(a.queue_value_divergence_mask(&b), None);
    }

    #[test]
    fn queue_and_pc_divergence_are_detected() {
        let p = arc(PROG);
        let m = Machine::boot(Arc::clone(&p));
        let mut n = m.clone();
        // Step one side through the fetch+exec of `mov r1`: pc moves.
        crate::step(&mut n);
        assert!(m.pc_diverged(&n) || m.ir() != n.ir());
        // Run one side up to the stG (queue push) and compare depths.
        let mut q = Machine::boot(Arc::clone(&p));
        for _ in 0..6 {
            crate::step(&mut q);
        }
        assert!(q.queue_depth_delta(&m) > 0, "stG must have pushed");
        assert_eq!(m.queue_depth_delta(&q), -q.queue_depth_delta(&m));
    }

    #[test]
    fn action_masks_match_instruction_shape() {
        // A fetch (ir = None) touches no GPRs.
        assert_eq!(action_gpr_masks(None), (0, 0));
        let p = arc(PROG);
        let mut m = Machine::boot(p);
        crate::step(&mut m); // fetch: ir = mov r1, G 5
        let (reads, writes) = action_gpr_masks(m.ir());
        assert_eq!(reads, 0, "mov reads no GPRs");
        assert_eq!(writes, 1 << 1, "mov writes r1");
        for _ in 0..4 {
            crate::step(&mut m);
        }
        // ir = stG r2, r1: reads both, writes none.
        let (reads, writes) = action_gpr_masks(m.ir());
        assert_eq!(reads, (1 << 1) | (1 << 2));
        assert_eq!(writes, 0);
    }
}
