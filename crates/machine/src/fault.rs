//! The fault model: Single Event Upset transitions (paper §2.1).
//!
//! Exactly three operational rules introduce faults, and they are the only
//! way state may be corrupted:
//!
//! * `reg-zap` — replace any register's payload (color tag preserved);
//! * `Q-zap1` — corrupt the *address* of any store-queue entry;
//! * `Q-zap2` — corrupt the *value* of any store-queue entry.
//!
//! [`FaultSite`] names a location, [`inject`] performs the `─→1` transition,
//! and [`sites`] enumerates every site of a given machine state — the fan-out
//! used by exhaustive campaigns.

use talft_isa::Reg;

use crate::state::Machine;

/// A place a single-event upset can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `reg-zap` on this register.
    Reg(Reg),
    /// `Q-zap1` on the address of the queue entry at this index
    /// (0 = front/newest).
    QueueAddr(usize),
    /// `Q-zap2` on the value of the queue entry at this index.
    QueueVal(usize),
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Reg(r) => write!(f, "reg-zap {r}"),
            FaultSite::QueueAddr(i) => write!(f, "Q-zap1 [{i}].addr"),
            FaultSite::QueueVal(i) => write!(f, "Q-zap2 [{i}].val"),
        }
    }
}

/// Enumerate every fault site of the current state.
#[must_use]
pub fn sites(m: &Machine) -> Vec<FaultSite> {
    let mut out: Vec<FaultSite> = Reg::all(m.num_gprs()).map(FaultSite::Reg).collect();
    for i in 0..m.queue().len() {
        out.push(FaultSite::QueueAddr(i));
        out.push(FaultSite::QueueVal(i));
    }
    out
}

/// Enumerate the *register* fault sites together with their color tag and
/// payload — the basis for constructing **correlated** multi-fault plans
/// (two upsets striking the green and blue copies of one logical value, the
/// coordinated pattern that probes the boundary of the single-event-upset
/// model). Queue entries carry no color tag and are not listed.
#[must_use]
pub fn colored_reg_sites(m: &Machine) -> Vec<(FaultSite, talft_isa::Color, i64)> {
    Reg::all(m.num_gprs())
        .map(|r| (FaultSite::Reg(r), m.rcol(r), m.rval(r)))
        .collect()
}

/// The value currently stored at a fault site (useful for choosing a
/// corrupted replacement).
#[must_use]
pub fn read_site(m: &Machine, site: FaultSite) -> Option<i64> {
    match site {
        FaultSite::Reg(r) => Some(m.rval(r)),
        FaultSite::QueueAddr(i) => m.queue().get(i).map(|&(a, _)| a),
        FaultSite::QueueVal(i) => m.queue().get(i).map(|&(_, v)| v),
    }
}

/// Perform a faulty transition `S ─→1 S'`, writing `new_val` at `site`.
///
/// Register color tags are preserved (the tag "is fictional" and the
/// `reg-zap` rule keeps it). Returns `false` if the site no longer exists
/// (queue shrank), in which case the machine is unchanged.
pub fn inject(m: &mut Machine, site: FaultSite, new_val: i64) -> bool {
    match site {
        FaultSite::Reg(r) => {
            let old = m.reg(r);
            m.set_reg(r, old.with_val(new_val));
            true
        }
        FaultSite::QueueAddr(i) => match m.queue_mut().get_mut(i) {
            Some(slot) => {
                slot.0 = new_val;
                true
            }
            None => false,
        },
        FaultSite::QueueVal(i) => match m.queue_mut().get_mut(i) {
            Some(slot) => {
                slot.1 = new_val;
                true
            }
            None => false,
        },
    }
}

/// Representative corrupted values to try at a site holding `old`:
/// single-bit flips of low/high/sign bits, small offsets, zero, and a
/// large-magnitude constant. All distinct from `old`.
#[must_use]
pub fn mutations(old: i64) -> Vec<i64> {
    let candidates = [
        old ^ 1,
        old ^ (1 << 7),
        old ^ (1 << 31),
        old ^ (1i64 << 62),
        old.wrapping_add(1),
        old.wrapping_sub(1),
        0,
        -1,
        0x7fff_ffff,
        old.wrapping_neg(),
    ];
    let mut out = Vec::new();
    for c in candidates {
        if c != old && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use talft_isa::{assemble, CVal, Color};

    fn boot() -> Machine {
        let src = "\n.code\nmain:\n  .pre { forall m:mem; mem: m; }\n  halt\n";
        Machine::boot(Arc::new(assemble(src).expect("ok").program))
    }

    #[test]
    fn sites_cover_registers_and_queue() {
        let mut m = boot();
        let base = sites(&m);
        assert_eq!(base.len(), usize::from(m.num_gprs()) + 3); // + d, pcG, pcB
        m.queue_mut().push_front((1, 2));
        m.queue_mut().push_front((3, 4));
        let with_q = sites(&m);
        assert_eq!(with_q.len(), base.len() + 4);
    }

    #[test]
    fn inject_preserves_register_color() {
        let mut m = boot();
        m.set_reg(Reg::r(1), CVal::blue(10));
        assert!(inject(&mut m, FaultSite::Reg(Reg::r(1)), 999));
        assert_eq!(m.reg(Reg::r(1)), CVal::new(Color::Blue, 999));
    }

    #[test]
    fn inject_queue_entries() {
        let mut m = boot();
        m.queue_mut().push_front((100, 5));
        assert!(inject(&mut m, FaultSite::QueueAddr(0), 101));
        assert_eq!(m.queue()[0], (101, 5));
        assert!(inject(&mut m, FaultSite::QueueVal(0), 6));
        assert_eq!(m.queue()[0], (101, 6));
        assert!(!inject(&mut m, FaultSite::QueueVal(3), 0));
    }

    #[test]
    fn read_site_matches_state() {
        let mut m = boot();
        m.set_reg(Reg::Dst, CVal::green(77));
        assert_eq!(read_site(&m, FaultSite::Reg(Reg::Dst)), Some(77));
        assert_eq!(read_site(&m, FaultSite::QueueAddr(0)), None);
        m.queue_mut().push_front((8, 9));
        assert_eq!(read_site(&m, FaultSite::QueueAddr(0)), Some(8));
        assert_eq!(read_site(&m, FaultSite::QueueVal(0)), Some(9));
    }

    #[test]
    fn mutations_are_distinct_and_nontrivial() {
        for old in [0i64, 1, -1, 4096, i64::MAX, i64::MIN] {
            let ms = mutations(old);
            assert!(!ms.is_empty());
            assert!(ms.iter().all(|&v| v != old));
            let mut dedup = ms.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), ms.len());
        }
    }
}
