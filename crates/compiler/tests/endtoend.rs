//! End-to-end compiler tests: for each Wile program, the protected TAL_FT
//! output must (a) **type-check** under `talft-core` — i.e. be provably
//! fault tolerant, (b) run on the faulty machine with the same output trace
//! as the VIR reference interpreter, and (c) the baseline must match the
//! trace too (it is functional, just unprotected).

use talft_compiler::{compile, vir::interpret, CompileOptions, Compiled};
use talft_core::check_program;
use talft_machine::{run_program, Status};

fn build(src: &str) -> Compiled {
    compile(src, &CompileOptions::default()).expect("compiles")
}

fn assert_protected_checks(c: &mut Compiled) {
    let rep = check_program(&c.protected.program, &mut c.protected.arena)
        .expect("protected output must type-check");
    assert!(rep.blocks >= 1);
}

fn assert_traces_agree(c: &Compiled) {
    let reference = interpret(&c.vir, 5_000_000);
    assert!(reference.halted, "reference run must halt");
    let prot = run_program(&c.protected.program, 20_000_000);
    assert_eq!(prot.status, Status::Halted, "protected run must halt");
    assert_eq!(
        prot.trace, reference.trace,
        "protected trace must match VIR"
    );
    let base = run_program(&c.baseline.program, 20_000_000);
    assert_eq!(base.status, Status::Halted, "baseline run must halt");
    assert_eq!(base.trace, reference.trace, "baseline trace must match VIR");
}

fn full(src: &str) {
    let mut c = build(src);
    assert_protected_checks(&mut c);
    assert_traces_agree(&c);
}

#[test]
fn straight_line_store() {
    full("output out[1]; func main() { out[0] = 6 * 7; }");
}

#[test]
fn arithmetic_chains() {
    full(
        "output out[4]; func main() { var a = 12; var b = 30; \
         out[0] = a + b; out[1] = a - b; out[2] = a * b; out[3] = (a ^ b) & 63; }",
    );
}

#[test]
fn counting_loop() {
    full(
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 10) { s = s + i; i = i + 1; } out[0] = s; }",
    );
}

#[test]
fn array_sum_and_writeback() {
    full(
        "array tab[8] = [5, 1, 4, 2, 8, 6, 3, 7]; output out[8]; \
         func main() { var i = 0; var s = 0; \
         while (i < 8) { s = s + tab[i]; out[i] = s; i = i + 1; } }",
    );
}

#[test]
fn branches_both_paths() {
    full(
        "output out[8]; func main() { var i = 0; \
         while (i < 8) { if (i & 1 == 1) { out[i] = i * 10; } else { out[i] = i + 100; } \
         i = i + 1; } }",
    );
}

#[test]
fn nested_loops() {
    full(
        "output out[1]; func main() { var s = 0; var i = 0; \
         while (i < 5) { var j = 0; while (j < 5) { s = s + i * j; j = j + 1; } i = i + 1; } \
         out[0] = s; }",
    );
}

#[test]
fn functions_inline_correctly() {
    full(
        "output out[2]; \
         func sq(x) { return x * x; } \
         func hyp2(a, b) { return sq(a) + sq(b); } \
         func main() { out[0] = hyp2(3, 4); out[1] = sq(sq(2)); }",
    );
}

#[test]
fn memory_round_trip_through_scratch() {
    full(
        "array scratch[4]; output out[1]; \
         func main() { scratch[0] = 11; scratch[1] = scratch[0] * 2; \
         scratch[2] = scratch[1] + scratch[0]; out[0] = scratch[2]; }",
    );
}

#[test]
fn comparison_driven_control() {
    full(
        "output out[4]; func main() { var a = 3; var b = 7; \
         if (a < b) { out[0] = 1; } else { out[0] = 0; } \
         if (a >= b) { out[1] = 1; } else { out[1] = 0; } \
         if (a == 3 && b == 7) { out[2] = 1; } else { out[2] = 0; } \
         if (a == 4 || b == 7) { out[3] = 1; } else { out[3] = 0; } }",
    );
}

#[test]
fn shifts_and_masks() {
    full(
        "output out[4]; func main() { var x = 200; \
         out[0] = x >> 3; out[1] = x << 2; out[2] = x & 15; out[3] = x | 7; }",
    );
}

#[test]
fn baseline_is_rejected_by_the_checker() {
    // The unprotected baseline reuses one register set for both store
    // halves — the exact §2.2 pattern the type system exists to reject.
    let mut c = build("output out[1]; func main() { out[0] = 5; }");
    let err = check_program(&c.baseline.program, &mut c.baseline.arena);
    assert!(err.is_err(), "baseline must NOT type-check");
}

#[test]
fn unordered_schedule_exists_and_differs_in_timing_only() {
    let c = build(
        "array tab[8] = [1,2,3,4,5,6,7,8]; output out[8]; \
         func main() { var i = 0; while (i < 8) { out[i] = tab[i] * 3; i = i + 1; } }",
    );
    // Same number of ops per block in both protected schedules.
    for (a, b) in c
        .protected
        .sched
        .blocks
        .iter()
        .zip(c.protected_unordered_sched.blocks.iter())
    {
        assert_eq!(a.len(), b.len());
    }
}

#[test]
fn timing_views_have_sane_shapes() {
    let c = build(
        "output out[4]; func main() { var i = 0; \
         while (i < 4) { out[i] = i * i; i = i + 1; } }",
    );
    // protected blocks have ~2× the real ops of baseline blocks
    let real = |blocks: &[Vec<talft_sim::TimedOp>]| -> usize {
        blocks.iter().flatten().filter(|o| !o.free).count()
    };
    let p = real(&c.protected.sched.blocks);
    let b = real(&c.baseline.sched.blocks);
    assert!(p > b, "protected must execute more real ops ({p} vs {b})");
    assert!(p <= 3 * b, "duplication should not exceed ~3× ({p} vs {b})");
}

#[test]
fn inverted_loops_check_and_agree() {
    // Loop inversion must preserve semantics, type-check, and agree with
    // the non-inverted reference on every suite-style shape.
    let srcs = [
        "output out[1]; func main() { var i = 0; var s = 0; \
         while (i < 10) { s = s + i; i = i + 1; } out[0] = s; }",
        "output out[1]; func main() { var s = 0; var i = 0; \
         while (i < 5) { var j = 0; while (j < 5) { s = s + i * j; j = j + 1; } i = i + 1; } \
         out[0] = s; }",
        "output out[1]; func main() { var i = 0; while (i < 0) { i = i + 1; } out[0] = i; }",
        "array t[8] = [1,2,3,4,5,6,7,8]; output out[8]; func main() { var i = 0; \
         while (i < 8) { if (t[i] & 1 == 1) { out[i] = t[i]; } else { out[i] = 0 - t[i]; } \
         i = i + 1; } }",
    ];
    for src in srcs {
        let plain = compile(src, &CompileOptions::default()).expect("plain compiles");
        let mut inv = compile(
            src,
            &CompileOptions {
                invert_loops: true,
                ..CompileOptions::default()
            },
        )
        .expect("inverted compiles");
        check_program(&inv.protected.program, &mut inv.protected.arena)
            .expect("inverted output type-checks");
        let r_plain = interpret(&plain.vir, 5_000_000);
        let r_inv = interpret(&inv.vir, 5_000_000);
        assert_eq!(
            r_plain.trace, r_inv.trace,
            "inversion changed semantics\n{src}"
        );
        let run = run_program(&inv.protected.program, 20_000_000);
        assert_eq!(
            run.trace, r_plain.trace,
            "inverted machine trace diverged\n{src}"
        );
        // fewer dynamic block transitions per iteration
        assert!(r_inv.visits.len() <= r_plain.visits.len());
    }
}

#[test]
fn optimized_programs_check_and_agree() {
    // Pre-duplication optimization composes with the reliability
    // transformation: optimized output still type-checks and agrees.
    let srcs = [
        "output out[1]; func main() { out[0] = 2 + 3 * 4; }",
        "array t[8] = [3,1,4,1,5,9,2,6]; output out[8]; func main() { var i = 0; \
         while (i < 8) { var dead = t[i] * 0; out[i] = t[i] * 2 + dead; i = i + 1; } }",
        "output out[1]; func main() { var x = 9; var y = x + 0; var z = y * 1; out[0] = z; }",
    ];
    for src in srcs {
        let plain = compile(src, &CompileOptions::default()).expect("plain");
        let mut optd = compile(
            src,
            &CompileOptions {
                optimize: true,
                ..CompileOptions::default()
            },
        )
        .expect("optimized");
        check_program(&optd.protected.program, &mut optd.protected.arena)
            .expect("optimized output type-checks");
        let r1 = interpret(&plain.vir, 5_000_000);
        let r2 = interpret(&optd.vir, 5_000_000);
        assert_eq!(r1.trace, r2.trace, "optimizer changed semantics\n{src}");
        assert!(r2.dyn_instrs <= r1.dyn_instrs);
        let run = run_program(&optd.protected.program, 20_000_000);
        assert_eq!(run.trace, r1.trace);
    }
}

#[test]
fn for_loops_full_pipeline() {
    full(
        "array t[8] = [2,4,6,8,10,12,14,16]; output out[8]; \
         func main() { for (var i = 0; i < 8; i = i + 1) { out[i] = t[i] >> 1; } }",
    );
}
