//! List scheduling of duplicated blocks.
//!
//! Classic critical-path list scheduling over the intra-block dependence
//! graph produced by [`crate::dup`]. The `respect_ordering` switch keeps or
//! drops the `ordering_only` edges (the green≺blue constraint of §2.2),
//! producing the two protected schedules Figure 10 compares.

use talft_sim::{MachineModel, OpKind};

use crate::dup::{CInstr, DupBlock};

/// Map a colored instruction to its functional-unit class.
#[must_use]
pub fn op_kind(i: &CInstr) -> OpKind {
    match i {
        CInstr::Op { op, .. } => {
            if matches!(op, talft_logic::BinOp::Mul) {
                OpKind::Mul
            } else {
                OpKind::Alu
            }
        }
        CInstr::Movi { .. } | CInstr::MovLabel { .. } => OpKind::Alu,
        CInstr::Ld { .. } => OpKind::Load,
        CInstr::StG { .. } | CInstr::StB { .. } => OpKind::Store,
        CInstr::BzG { .. } | CInstr::BzB { .. } | CInstr::JmpG { .. } | CInstr::JmpB { .. } => {
            OpKind::Branch
        }
        CInstr::Halt => OpKind::Branch,
    }
}

/// Compute a schedule (a permutation of instruction indices) for one block.
///
/// Greedy cycle-by-cycle list scheduling: at each step pick, among ready
/// instructions (all predecessors scheduled), the one with the longest
/// critical path to the block exit; width-limited per cycle.
#[must_use]
pub fn schedule_block(
    block: &DupBlock,
    model: &MachineModel,
    respect_ordering: bool,
) -> Vec<usize> {
    let n = block.instrs.len();
    if n == 0 {
        return Vec::new();
    }
    // Adjacency with the chosen edge classes.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut npreds: Vec<usize> = vec![0; n];
    for e in &block.deps {
        if e.ordering_only && !respect_ordering {
            continue;
        }
        succs[e.from].push(e.to);
        npreds[e.to] += 1;
    }
    // Critical-path priority (longest latency-weighted path to a sink).
    let mut prio: Vec<u64> = vec![0; n];
    for i in (0..n).rev() {
        let lat = u64::from(model.latency(op_kind(&block.instrs[i])));
        let best_succ = succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = lat + best_succ;
    }

    let mut ready: Vec<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        // Pick the ready instruction with maximal priority (ties: original
        // order, keeping the result deterministic).
        let (k, &i) = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| (prio[i], std::cmp::Reverse(i)))
            .expect("dependence graph is acyclic, so something is ready");
        ready.remove(k);
        order.push(i);
        remaining -= 1;
        for &s in &succs[i] {
            npreds[s] -= 1;
            if npreds[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Validate that a schedule respects a block's (non-relaxed) dependences.
#[must_use]
pub fn schedule_respects_deps(block: &DupBlock, order: &[usize], respect_ordering: bool) -> bool {
    let mut pos = vec![0usize; block.instrs.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    block.deps.iter().all(|e| {
        if e.ordering_only && !respect_ordering {
            true
        } else {
            pos[e.from] < pos[e.to]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dup::duplicate;
    use crate::lower::lower;
    use crate::parse::parse;
    use crate::sema::analyze;

    fn dup_src(src: &str) -> crate::dup::DupProgram {
        let sem = analyze(&parse(src).expect("parses")).expect("sema");
        let vir = lower(&sem).expect("lowers");
        duplicate(&vir).0
    }

    const SRC: &str = "array tab[8] = [5, 4, 6, 1, 7, 2, 8, 3]; output out[8]; \
        func main() { var i = 0; var s = 0; \
        while (i < 8) { s = s + tab[i] * 3; out[i] = s; i = i + 1; } }";

    #[test]
    fn schedules_are_valid_permutations() {
        let d = dup_src(SRC);
        let model = MachineModel::default();
        for blk in &d.blocks {
            for ordering in [true, false] {
                let order = schedule_block(blk, &model, ordering);
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..blk.instrs.len()).collect::<Vec<_>>());
                assert!(schedule_respects_deps(blk, &order, ordering));
            }
        }
    }

    #[test]
    fn ordered_schedule_also_satisfies_relaxed_check() {
        let d = dup_src(SRC);
        let model = MachineModel::default();
        for blk in &d.blocks {
            let order = schedule_block(blk, &model, true);
            // an ordering-respecting schedule trivially passes the relaxed check
            assert!(schedule_respects_deps(blk, &order, false));
        }
    }

    #[test]
    fn blue_transfers_stay_terminal() {
        let d = dup_src(SRC);
        let model = MachineModel::default();
        for blk in &d.blocks {
            let order = schedule_block(blk, &model, true);
            if let Some(last) = order.last() {
                let i = &blk.instrs[*last];
                // the last scheduled instruction of a block with control is
                // the blue (committing) half or halt
                if blk
                    .instrs
                    .iter()
                    .any(|i| matches!(i, CInstr::BzB { .. } | CInstr::JmpB { .. } | CInstr::Halt))
                {
                    assert!(
                        matches!(i, CInstr::BzB { .. } | CInstr::JmpB { .. } | CInstr::Halt),
                        "unexpected terminal {i:?}"
                    );
                }
            }
        }
    }
}
