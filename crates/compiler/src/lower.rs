//! Lowering: analyzed Wile → VIR.
//!
//! Key decisions (see DESIGN.md):
//!
//! * **Masked indexing** — `arr[i]` lowers to `t = i & (len-1); a = base + t`
//!   so the TAL_FT checker can discharge the array-bounds obligation from
//!   the implicit `0 ≤ x & m ≤ m` atom bound. Address temporaries are
//!   block-local by construction, so bounds never need to cross labels.
//! * **Normalized conditions** — every condition lowers to a 0/1 value that
//!   is 1 when true; `bz` then branches to the false side on 0. This keeps
//!   the split-branch protocol uniform.
//! * **Layout discipline** — blocks are appended in final layout order and
//!   every `Bz` terminator's fall-through is the next block in layout (the
//!   machine's `bz` has no "else" target).

use std::collections::HashMap;

use talft_logic::BinOp;

use crate::ast::{AstBinOp, Expr, Stmt};
use crate::sema::SemProgram;
use crate::vir::{Block, BlockId, Terminator, VInstr, VOperand, VReg, VRegion, VirProgram};

/// A lowering error (undefined names and similar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lower an analyzed program to VIR (top-test loops).
pub fn lower(sem: &SemProgram) -> Result<VirProgram, LowerError> {
    lower_with(sem, false)
}

/// Lower with optional **loop inversion**: `while` loops become a guarded
/// bottom-test form (`if (c) do { … } while (c)`), merging the loop body and
/// its condition into one basic block. One block per iteration instead of
/// two — fewer front-end redirects and a larger scheduling window, the way
/// an optimizing IA-64 compiler (like the paper's VELOCITY) shapes loops.
pub fn lower_with(sem: &SemProgram, invert_loops: bool) -> Result<VirProgram, LowerError> {
    let mut lw = Lowerer {
        sem,
        blocks: vec![Block::default()],
        cur: 0,
        next_vreg: 0,
        env: HashMap::new(),
        invert_loops,
    };
    lw.stmts(&sem.body)?;
    lw.seal(Terminator::Halt);
    let regions = sem
        .arrays
        .iter()
        .map(|a| VRegion {
            name: a.name.clone(),
            base: a.base,
            len: a.len,
            init: a.init.clone(),
            output: a.output,
        })
        .collect();
    Ok(VirProgram {
        blocks: lw.blocks,
        regions,
        num_vregs: lw.next_vreg,
    })
}

struct Lowerer<'a> {
    sem: &'a SemProgram,
    blocks: Vec<Block>,
    cur: BlockId,
    next_vreg: u32,
    env: HashMap<String, VReg>,
    invert_loops: bool,
}

impl Lowerer<'_> {
    fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    fn emit(&mut self, i: VInstr) {
        self.blocks[self.cur].instrs.push(i);
    }

    /// Seal the current block with a terminator (if not already sealed).
    fn seal(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.cur];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    /// Open a new block at the end of the layout and make it current.
    fn open_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        let id = self.blocks.len() - 1;
        self.cur = id;
        id
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Let(name, e) => {
                let v = self.expr(e)?;
                // Copy into a dedicated register so later reassignments
                // don't clobber shared temporaries.
                let dst = self.fresh();
                self.emit(VInstr::Op {
                    op: BinOp::Add,
                    d: dst,
                    a: v,
                    b: VOperand::Imm(0),
                });
                self.env.insert(name.clone(), dst);
                Ok(())
            }
            Stmt::Assign(name, e) => {
                let v = self.expr(e)?;
                let dst = *self
                    .env
                    .get(name)
                    .ok_or_else(|| LowerError(format!("assignment to undeclared {name}")))?;
                self.emit(VInstr::Op {
                    op: BinOp::Add,
                    d: dst,
                    a: v,
                    b: VOperand::Imm(0),
                });
                Ok(())
            }
            Stmt::Store(arr, idx, val) => {
                let v = self.expr(val)?;
                let addr = self.array_addr(arr, idx)?;
                self.emit(VInstr::St { addr, val: v });
                Ok(())
            }
            Stmt::If(c, then, els) => {
                let z = self.cond(c)?;
                // layout: [then..] [els..] [join]
                let bz_block = self.cur;
                let then_id = self.open_block();
                self.stmts(then)?;
                let then_end = self.cur;
                let else_id = self.open_block();
                self.stmts(els)?;
                let else_end = self.cur;
                let join_id = self.open_block();
                self.blocks[bz_block].term = Some(Terminator::Bz {
                    z,
                    target: else_id,
                    fall: then_id,
                });
                if self.blocks[then_end].term.is_none() {
                    self.blocks[then_end].term = Some(Terminator::Jmp(join_id));
                }
                if self.blocks[else_end].term.is_none() {
                    self.blocks[else_end].term = Some(Terminator::Jmp(join_id));
                }
                Ok(())
            }
            Stmt::While(c, body) => {
                if self.invert_loops {
                    return self.while_inverted(c, body);
                }
                // layout: [header] [body..] [exit]
                let pre = self.cur;
                let header_id = self.open_block();
                self.seal_block(pre, Terminator::Jmp(header_id));
                let z = self.cond(c)?;
                let header_end = self.cur;
                let body_id = self.open_block();
                self.stmts(body)?;
                let body_end = self.cur;
                let exit_id = self.open_block();
                self.blocks[header_end].term = Some(Terminator::Bz {
                    z,
                    target: exit_id,
                    fall: body_id,
                });
                if self.blocks[body_end].term.is_none() {
                    self.blocks[body_end].term = Some(Terminator::Jmp(header_id));
                }
                Ok(())
            }
        }
    }

    /// Inverted (bottom-test) loop:
    /// `guard: if (!c) goto exit; body: …; if (c) goto body; exit:`
    fn while_inverted(&mut self, c: &crate::ast::Expr, body: &[Stmt]) -> Result<(), LowerError> {
        // layout: [guard] [body.. (bottom test)] [exit]
        let pre = self.cur;
        let guard_id = self.open_block();
        self.seal_block(pre, Terminator::Jmp(guard_id));
        let z0 = self.cond(c)?;
        let guard_end = self.cur;
        let body_id = self.open_block();
        self.stmts(body)?;
        // bottom test in the (possibly extended) body block: branch back on
        // true, i.e. bz on the inverted condition.
        let z = self.cond(c)?;
        let nz = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Xor,
            d: nz,
            a: z,
            b: VOperand::Imm(1),
        });
        let body_end = self.cur;
        let exit_id = self.open_block();
        self.blocks[guard_end].term = Some(Terminator::Bz {
            z: z0,
            target: exit_id,
            fall: body_id,
        });
        if self.blocks[body_end].term.is_none() {
            self.blocks[body_end].term = Some(Terminator::Bz {
                z: nz,
                target: body_id,
                fall: exit_id,
            });
        }
        Ok(())
    }

    fn seal_block(&mut self, b: BlockId, t: Terminator) {
        if self.blocks[b].term.is_none() {
            self.blocks[b].term = Some(t);
        }
    }

    /// `t = idx & mask; addr = t + base`.
    fn array_addr(&mut self, arr: &str, idx: &Expr) -> Result<VReg, LowerError> {
        let info = self
            .sem
            .array(arr)
            .ok_or_else(|| LowerError(format!("unknown array {arr}")))?;
        let (mask, base) = (info.mask, info.base);
        let i = self.expr(idx)?;
        let t = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::And,
            d: t,
            a: i,
            b: VOperand::Imm(mask),
        });
        let addr = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Add,
            d: addr,
            a: t,
            b: VOperand::Imm(base),
        });
        Ok(addr)
    }

    /// Lower a value expression.
    fn expr(&mut self, e: &Expr) -> Result<VReg, LowerError> {
        match e {
            Expr::Int(n) => {
                let d = self.fresh();
                self.emit(VInstr::Movi { d, imm: *n });
                Ok(d)
            }
            Expr::Var(name) => self
                .env
                .get(name)
                .copied()
                .ok_or_else(|| LowerError(format!("undefined variable {name}"))),
            Expr::Index(arr, idx) => {
                let addr = self.array_addr(arr, idx)?;
                let d = self.fresh();
                self.emit(VInstr::Ld { d, addr });
                Ok(d)
            }
            Expr::Neg(e) => {
                let v = self.expr(e)?;
                let zero = self.fresh();
                self.emit(VInstr::Movi { d: zero, imm: 0 });
                let d = self.fresh();
                self.emit(VInstr::Op {
                    op: BinOp::Sub,
                    d,
                    a: zero,
                    b: VOperand::Reg(v),
                });
                Ok(d)
            }
            Expr::Not(e) => {
                // !e = 1 - truth(e)
                let t = self.truth(e)?;
                let d = self.fresh();
                self.emit(VInstr::Op {
                    op: BinOp::Xor,
                    d,
                    a: t,
                    b: VOperand::Imm(1),
                });
                Ok(d)
            }
            Expr::Bin(op, a, b) => match op {
                AstBinOp::Add => self.simple_bin(BinOp::Add, a, b),
                AstBinOp::Sub => self.simple_bin(BinOp::Sub, a, b),
                AstBinOp::Mul => self.simple_bin(BinOp::Mul, a, b),
                AstBinOp::And => self.simple_bin(BinOp::And, a, b),
                AstBinOp::Or => self.simple_bin(BinOp::Or, a, b),
                AstBinOp::Xor => self.simple_bin(BinOp::Xor, a, b),
                AstBinOp::Shl => self.simple_bin(BinOp::Shl, a, b),
                AstBinOp::Shr => self.simple_bin(BinOp::Shr, a, b),
                AstBinOp::Lt => self.simple_bin(BinOp::Slt, a, b),
                AstBinOp::Gt => self.simple_bin(BinOp::Slt, b, a),
                AstBinOp::Ge => {
                    let lt = self.simple_bin(BinOp::Slt, a, b)?;
                    let d = self.fresh();
                    self.emit(VInstr::Op {
                        op: BinOp::Xor,
                        d,
                        a: lt,
                        b: VOperand::Imm(1),
                    });
                    Ok(d)
                }
                AstBinOp::Le => {
                    let gt = self.simple_bin(BinOp::Slt, b, a)?;
                    let d = self.fresh();
                    self.emit(VInstr::Op {
                        op: BinOp::Xor,
                        d,
                        a: gt,
                        b: VOperand::Imm(1),
                    });
                    Ok(d)
                }
                AstBinOp::Eq => {
                    let ne = self.ne01(a, b)?;
                    let d = self.fresh();
                    self.emit(VInstr::Op {
                        op: BinOp::Xor,
                        d,
                        a: ne,
                        b: VOperand::Imm(1),
                    });
                    Ok(d)
                }
                AstBinOp::Ne => self.ne01(a, b),
                AstBinOp::LAnd => {
                    let ta = self.truth(a)?;
                    let tb = self.truth(b)?;
                    let d = self.fresh();
                    self.emit(VInstr::Op {
                        op: BinOp::And,
                        d,
                        a: ta,
                        b: VOperand::Reg(tb),
                    });
                    Ok(d)
                }
                AstBinOp::LOr => {
                    let ta = self.truth(a)?;
                    let tb = self.truth(b)?;
                    let d = self.fresh();
                    self.emit(VInstr::Op {
                        op: BinOp::Or,
                        d,
                        a: ta,
                        b: VOperand::Reg(tb),
                    });
                    Ok(d)
                }
            },
            Expr::Call(f, _) => Err(LowerError(format!(
                "internal: call to {f} survived inlining"
            ))),
        }
    }

    fn simple_bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<VReg, LowerError> {
        let va = self.expr(a)?;
        // Immediate operand shortcut for literals.
        if let Expr::Int(n) = b {
            let d = self.fresh();
            self.emit(VInstr::Op {
                op,
                d,
                a: va,
                b: VOperand::Imm(*n),
            });
            return Ok(d);
        }
        let vb = self.expr(b)?;
        let d = self.fresh();
        self.emit(VInstr::Op {
            op,
            d,
            a: va,
            b: VOperand::Reg(vb),
        });
        Ok(d)
    }

    /// `(a != b)` as 0/1: `d = a ^ b; slt(0,d) | slt(d,0)`.
    fn ne01(&mut self, a: &Expr, b: &Expr) -> Result<VReg, LowerError> {
        let va = self.expr(a)?;
        let vb = self.expr(b)?;
        let d = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Xor,
            d,
            a: va,
            b: VOperand::Reg(vb),
        });
        self.nonzero01(d)
    }

    /// `truth(e)`: 1 iff `e != 0`. Comparisons are already 0/1.
    fn truth(&mut self, e: &Expr) -> Result<VReg, LowerError> {
        if let Expr::Bin(op, ..) = e {
            if matches!(
                op,
                AstBinOp::Lt
                    | AstBinOp::Le
                    | AstBinOp::Gt
                    | AstBinOp::Ge
                    | AstBinOp::Eq
                    | AstBinOp::Ne
                    | AstBinOp::LAnd
                    | AstBinOp::LOr
            ) {
                return self.expr(e);
            }
        }
        if let Expr::Not(_) = e {
            return self.expr(e);
        }
        let v = self.expr(e)?;
        self.nonzero01(v)
    }

    /// `1` iff `v != 0`: `slt(0,v) | slt(v,0)`.
    fn nonzero01(&mut self, v: VReg) -> Result<VReg, LowerError> {
        let zero = self.fresh();
        self.emit(VInstr::Movi { d: zero, imm: 0 });
        let pos = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Slt,
            d: pos,
            a: zero,
            b: VOperand::Reg(v),
        });
        let neg = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Slt,
            d: neg,
            a: v,
            b: VOperand::Imm(0),
        });
        let d = self.fresh();
        self.emit(VInstr::Op {
            op: BinOp::Or,
            d,
            a: pos,
            b: VOperand::Reg(neg),
        });
        Ok(d)
    }

    /// Lower a condition to a 0/1 truth value (1 = true).
    fn cond(&mut self, e: &Expr) -> Result<VReg, LowerError> {
        self.truth(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;
    use crate::vir::interpret;

    fn lower_src(src: &str) -> VirProgram {
        let ast = parse(src).expect("parses");
        let sem = analyze(&ast).expect("sema");
        lower(&sem).expect("lowers")
    }

    #[test]
    fn straight_line_program_runs() {
        let p = lower_src("output out[2]; func main() { out[0] = 7; out[1] = 7 * 6; }");
        let r = interpret(&p, 10_000);
        assert!(r.halted);
        assert_eq!(r.trace, vec![(4096, 7), (4097, 42)]);
    }

    #[test]
    fn while_loop_computes() {
        let p = lower_src(
            "output out[1]; func main() { var i = 0; var s = 0; \
             while (i < 10) { s = s + i; i = i + 1; } out[0] = s; }",
        );
        let r = interpret(&p, 100_000);
        assert!(r.halted);
        assert_eq!(r.trace, vec![(4096, 45)]);
    }

    #[test]
    fn if_else_both_sides() {
        let p = lower_src(
            "output out[2]; func main() { var x = 3; \
             if (x == 3) { out[0] = 1; } else { out[0] = 2; } \
             if (x != 3) { out[1] = 1; } else { out[1] = 2; } }",
        );
        let r = interpret(&p, 10_000);
        assert_eq!(r.trace, vec![(4096, 1), (4097, 2)]);
    }

    #[test]
    fn array_reads_and_masking() {
        let p = lower_src(
            "array tab[4] = [10, 20, 30, 40]; output out[4]; \
             func main() { var i = 0; while (i < 4) { out[i] = tab[i] + 1; i = i + 1; } }",
        );
        let r = interpret(&p, 100_000);
        let outs: Vec<i64> = r.trace.iter().map(|&(_, v)| v).collect();
        assert_eq!(outs, vec![11, 21, 31, 41]);
        // out-of-range indices wrap via the mask rather than escaping
        let p2 = lower_src(
            "array tab[4] = [10, 20, 30, 40]; output out[1]; \
             func main() { out[0] = tab[5]; }",
        );
        let r2 = interpret(&p2, 1000);
        assert_eq!(r2.trace, vec![(4100, 20)]); // 5 & 3 == 1
    }

    #[test]
    fn comparison_values() {
        let p = lower_src(
            "output out[8]; func main() { var a = 3; var b = 5; \
             out[0] = a < b; out[1] = a > b; out[2] = a <= b; \
             out[3] = a >= b; out[4] = a == b; out[5] = a != b; }",
        );
        let r = interpret(&p, 10_000);
        let outs: Vec<i64> = r.trace.iter().map(|&(_, v)| v).collect();
        assert_eq!(outs, vec![1, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn logical_ops_and_not() {
        let p = lower_src(
            "output out[4]; func main() { var a = 3; var b = 0; \
             out[0] = a && b; out[1] = a || b; out[2] = !a; out[3] = !b; }",
        );
        let r = interpret(&p, 10_000);
        let outs: Vec<i64> = r.trace.iter().map(|&(_, v)| v).collect();
        assert_eq!(outs, vec![0, 1, 0, 1]);
    }

    #[test]
    fn nested_loops_and_ifs() {
        let p = lower_src(
            "output out[1]; func main() { var s = 0; var i = 0; \
             while (i < 4) { var j = 0; while (j < 4) { \
             if ((i + j) & 1 == 1) { s = s + 1; } j = j + 1; } i = i + 1; } \
             out[0] = s; }",
        );
        let r = interpret(&p, 100_000);
        assert_eq!(r.trace, vec![(4096, 8)]);
    }

    #[test]
    fn every_bz_falls_to_next_block() {
        let p = lower_src(
            "output out[1]; func main() { var i = 0; \
             while (i < 3) { if (i == 1) { out[0] = i; } i = i + 1; } }",
        );
        for (bid, b) in p.blocks.iter().enumerate() {
            if let Some(Terminator::Bz { fall, .. }) = b.term {
                assert_eq!(fall, bid + 1, "bz fall-through must be next in layout");
            }
        }
    }

    #[test]
    fn negation_works() {
        let p = lower_src("output out[1]; func main() { var x = 5; out[0] = -x + 2; }");
        let r = interpret(&p, 1000);
        assert_eq!(r.trace, vec![(4096, -3)]);
    }
}
