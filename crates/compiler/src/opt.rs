//! VIR-level optimizations: local constant folding, copy propagation, and
//! global dead-code elimination.
//!
//! These run *before* the reliability transformation, mirroring VELOCITY's
//! pipeline (optimize, then duplicate, then allocate/schedule). Because
//! duplication comes after, the optimizer cannot create the §2.2 CSE bug —
//! and the end-to-end tests confirm that optimized programs still
//! type-check: conventional optimization and fault-tolerance typing compose
//! as long as the transformation order is respected (the paper's point is
//! that post-duplication optimization is the dangerous one).

use std::collections::HashMap;

use talft_logic::BinOp;

use crate::vir::{Terminator, VInstr, VOperand, VReg, VirProgram};

/// What a vreg is currently known to hold (within one block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Const(i64),
    /// Copy of another vreg as of that vreg's `version` at copy time.
    Copy(VReg, u32),
}

/// Run the optimizer pipeline to a fixpoint (bounded).
#[must_use]
pub fn optimize(p: &VirProgram) -> VirProgram {
    let mut cur = p.clone();
    for _ in 0..4 {
        let folded = fold_and_propagate(&cur);
        let cleaned = eliminate_dead_code(&folded);
        if cleaned == cur {
            break;
        }
        cur = cleaned;
    }
    cur
}

/// Local constant folding + copy propagation (per block).
#[must_use]
pub fn fold_and_propagate(p: &VirProgram) -> VirProgram {
    let mut out = p.clone();
    for block in &mut out.blocks {
        let mut known: HashMap<VReg, Value> = HashMap::new();
        let mut version: HashMap<VReg, u32> = HashMap::new();
        let bump = |version: &mut HashMap<VReg, u32>, r: VReg| {
            *version.entry(r).or_insert(0) += 1;
        };
        let resolve_reg = |known: &HashMap<VReg, Value>,
                           version: &HashMap<VReg, u32>,
                           r: VReg|
         -> (VReg, Option<i64>) {
            match known.get(&r) {
                Some(Value::Const(n)) => (r, Some(*n)),
                Some(Value::Copy(src, v)) if version.get(src).copied().unwrap_or(0) == *v => {
                    // chase one level (the fixpoint loop handles chains)
                    match known.get(src) {
                        Some(Value::Const(n)) => (*src, Some(*n)),
                        _ => (*src, None),
                    }
                }
                _ => (r, None),
            }
        };
        for instr in &mut block.instrs {
            match *instr {
                VInstr::Movi { d, imm } => {
                    bump(&mut version, d);
                    known.insert(d, Value::Const(imm));
                }
                VInstr::Op { op, d, a, b } => {
                    let (ra, ca) = resolve_reg(&known, &version, a);
                    let (rb, cb) = match b {
                        VOperand::Reg(r) => {
                            let (rr, c) = resolve_reg(&known, &version, r);
                            (VOperand::Reg(rr), c)
                        }
                        VOperand::Imm(n) => (VOperand::Imm(n), Some(n)),
                    };
                    bump(&mut version, d);
                    match (ca, cb) {
                        (Some(x), Some(y)) => {
                            let v = op.eval(x, y);
                            *instr = VInstr::Movi { d, imm: v };
                            known.insert(d, Value::Const(v));
                        }
                        _ => {
                            // algebraic identities: x+0, x-0, x*1, x|0, x^0
                            let identity = matches!(
                                (op, cb),
                                (
                                    BinOp::Add
                                        | BinOp::Sub
                                        | BinOp::Or
                                        | BinOp::Xor
                                        | BinOp::Shl
                                        | BinOp::Shr,
                                    Some(0)
                                ) | (BinOp::Mul, Some(1))
                            );
                            if identity {
                                // d = copy of ra
                                *instr = VInstr::Op {
                                    op: BinOp::Add,
                                    d,
                                    a: ra,
                                    b: VOperand::Imm(0),
                                };
                                let srcv = version.get(&ra).copied().unwrap_or(0);
                                known.insert(d, Value::Copy(ra, srcv));
                            } else {
                                *instr = VInstr::Op {
                                    op,
                                    d,
                                    a: ra,
                                    b: rb,
                                };
                                known.remove(&d);
                            }
                        }
                    }
                }
                VInstr::Ld { d, addr } => {
                    let (ra, _) = resolve_reg(&known, &version, addr);
                    bump(&mut version, d);
                    known.remove(&d);
                    *instr = VInstr::Ld { d, addr: ra };
                }
                VInstr::St { addr, val } => {
                    let (ra, _) = resolve_reg(&known, &version, addr);
                    let (rv, _) = resolve_reg(&known, &version, val);
                    *instr = VInstr::St { addr: ra, val: rv };
                }
            }
        }
        // propagate into the terminator's condition
        if let Some(Terminator::Bz { z, target, fall }) = block.term {
            let (rz, _) = resolve_reg(&known, &version, z);
            block.term = Some(Terminator::Bz {
                z: rz,
                target,
                fall,
            });
        }
    }
    out
}

/// Global dead-code elimination over VIR (stores and terminators are roots).
#[must_use]
pub fn eliminate_dead_code(p: &VirProgram) -> VirProgram {
    let nblocks = p.blocks.len();
    let nregs = p.num_vregs as usize;
    // Per-block liveness over vregs.
    let succs: Vec<Vec<usize>> = p
        .blocks
        .iter()
        .map(|b| match b.term.expect("sealed") {
            Terminator::Jmp(t) => vec![t],
            Terminator::Bz { target, fall, .. } => vec![target, fall],
            Terminator::Halt => vec![],
        })
        .collect();
    let mut live_in = vec![vec![false; nregs]; nblocks];
    let mut live_out = vec![vec![false; nregs]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut out = vec![false; nregs];
            for &s in &succs[b] {
                for (k, &v) in live_in[s].iter().enumerate() {
                    if v {
                        out[k] = true;
                    }
                }
            }
            // backward through the block
            let mut inn = out.clone();
            if let Some(Terminator::Bz { z, .. }) = p.blocks[b].term {
                inn[z.0 as usize] = true;
            }
            for i in p.blocks[b].instrs.iter().rev() {
                if let Some(d) = i.def() {
                    inn[d.0 as usize] = false;
                }
                for u in i.uses() {
                    inn[u.0 as usize] = true;
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    // Sweep: drop pure defs whose target is dead at that point.
    let mut out = p.clone();
    for (bid, block) in out.blocks.iter_mut().enumerate() {
        let mut live = live_out[bid].clone();
        if let Some(Terminator::Bz { z, .. }) = block.term {
            live[z.0 as usize] = true;
        }
        let mut keep = vec![true; block.instrs.len()];
        for (idx, i) in block.instrs.iter().enumerate().rev() {
            let is_pure_def = !matches!(i, VInstr::St { .. });
            if is_pure_def {
                if let Some(d) = i.def() {
                    if !live[d.0 as usize] {
                        keep[idx] = false;
                        continue;
                    }
                }
            }
            if let Some(d) = i.def() {
                live[d.0 as usize] = false;
            }
            for u in i.uses() {
                live[u.0 as usize] = true;
            }
        }
        let mut k = keep.iter();
        block.instrs.retain(|_| *k.next().expect("keep mask"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parse::parse;
    use crate::sema::analyze;
    use crate::vir::interpret;

    fn vir_of(src: &str) -> VirProgram {
        lower(&analyze(&parse(src).expect("parse")).expect("sema")).expect("lower")
    }

    #[test]
    fn constants_fold_to_movi() {
        let p = vir_of("output out[1]; func main() { out[0] = 2 + 3 * 4; }");
        let o = optimize(&p);
        // all arithmetic folded away: only movis + the store address chain
        let arith = o.blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, VInstr::Op { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(arith, 0, "multiply should fold: {:?}", o.blocks[0].instrs);
        let r = interpret(&o, 10_000);
        assert_eq!(r.trace, vec![(4096, 14)]);
    }

    #[test]
    fn dead_defs_are_removed() {
        let p =
            vir_of("output out[1]; func main() { var dead = 1 + 2; var live = 7; out[0] = live; }");
        let o = optimize(&p);
        assert!(
            o.static_len() < p.static_len(),
            "DCE should shrink ({} vs {})",
            o.static_len(),
            p.static_len()
        );
        assert_eq!(interpret(&o, 10_000).trace, vec![(4096, 7)]);
    }

    #[test]
    fn stores_and_branches_are_roots() {
        let p = vir_of(
            "output out[2]; func main() { var i = 0; \
             while (i < 2) { out[i] = i; i = i + 1; } }",
        );
        let o = optimize(&p);
        let r1 = interpret(&p, 100_000);
        let r2 = interpret(&o, 100_000);
        assert_eq!(r1.trace, r2.trace);
        assert!(r2.dyn_instrs <= r1.dyn_instrs);
    }

    #[test]
    fn optimizer_preserves_suite_semantics() {
        for k in talft_suite_like_sources() {
            let p = vir_of(k);
            let o = optimize(&p);
            let r1 = interpret(&p, 5_000_000);
            let r2 = interpret(&o, 5_000_000);
            assert_eq!(r1.trace, r2.trace, "optimizer changed semantics of {k}");
            assert!(r2.dyn_instrs <= r1.dyn_instrs);
        }
    }

    fn talft_suite_like_sources() -> Vec<&'static str> {
        vec![
            "array t[8] = [3,1,4,1,5,9,2,6]; output out[8]; func main() { var i = 0; \
             while (i < 8) { out[i] = t[i] * 2 + 1; i = i + 1; } }",
            "output out[1]; func main() { var s = 0; var i = 0; \
             while (i < 10) { if (i & 1 == 0) { s = s + i * 0 + i; } i = i + 1; } out[0] = s; }",
            "output out[2]; func main() { var x = 5 * 1; var y = x + 0; out[0] = y; out[1] = y - 0; }",
        ]
    }

    #[test]
    fn copy_propagation_shortens_chains() {
        // y = x + 0; z = y + 0; out = z  ⇒  out = x (modulo the final copy)
        let p = vir_of(
            "output out[1]; func main() { var x = 9; var y = x + 0; var z = y + 0; out[0] = z; }",
        );
        let o = optimize(&p);
        assert!(o.static_len() < p.static_len());
        assert_eq!(interpret(&o, 10_000).trace, vec![(4096, 9)]);
    }
}
