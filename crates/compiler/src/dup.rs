//! The **reliability transformation**: duplicate every computation into a
//! green and a blue stream, split stores into `stG`/`stB` pairs and control
//! transfers into `jmpG`/`jmpB` (`bzG`/`bzB`) pairs — the transform the
//! paper added to the VELOCITY compiler "immediately before register
//! allocation and scheduling" (§5).
//!
//! Output is a per-block list of colored instructions ([`CInstr`]) over
//! colored virtual registers ([`CVReg`]), plus the dependence edges the
//! scheduler must respect. The green≺blue *ordering constraint* on paired
//! stores/jumps is emitted as a separate edge class so the Figure 10
//! ablation can drop it.

use talft_isa::Color;
use talft_logic::BinOp;

use crate::vir::{BlockId, Terminator, VInstr, VOperand, VReg, VirProgram};

/// A colored virtual register: the `color` copy of VIR register `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CVReg {
    /// The underlying VIR register.
    pub v: VReg,
    /// Which redundant stream this copy belongs to.
    pub color: Color,
}

impl CVReg {
    /// Dense index (for liveness bitsets): `2·v + color`.
    #[must_use]
    pub fn index(self) -> usize {
        (self.v.0 as usize) * 2 + usize::from(self.color == Color::Blue)
    }
}

/// Colored instructions — the scheduler's unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CInstr {
    /// ALU op within one color.
    Op {
        /// Operation.
        op: BinOp,
        /// Destination.
        d: CVReg,
        /// First source.
        a: CVReg,
        /// Second source (same color when a register).
        b: COperand,
    },
    /// Load a constant.
    Movi {
        /// Destination.
        d: CVReg,
        /// The constant.
        imm: i64,
    },
    /// Load a block label's address (resolved at emission).
    MovLabel {
        /// Destination.
        d: CVReg,
        /// Target block.
        block: BlockId,
    },
    /// Memory load of this color.
    Ld {
        /// Destination.
        d: CVReg,
        /// Address register.
        addr: CVReg,
    },
    /// Green store half: enqueue.
    StG {
        /// Address register (green).
        addr: CVReg,
        /// Value register (green).
        val: CVReg,
    },
    /// Blue store half: compare and commit.
    StB {
        /// Address register (blue).
        addr: CVReg,
        /// Value register (blue).
        val: CVReg,
    },
    /// Green conditional-branch half.
    BzG {
        /// Condition (green).
        z: CVReg,
        /// Target register (green).
        t: CVReg,
    },
    /// Blue conditional-branch half.
    BzB {
        /// Condition (blue).
        z: CVReg,
        /// Target register (blue).
        t: CVReg,
    },
    /// Green jump half.
    JmpG {
        /// Target register (green).
        t: CVReg,
    },
    /// Blue jump half.
    JmpB {
        /// Target register (blue).
        t: CVReg,
    },
    /// Stop.
    Halt,
}

impl CInstr {
    /// Registers read.
    #[must_use]
    pub fn uses(&self) -> Vec<CVReg> {
        match *self {
            CInstr::Op { a, b, .. } => match b {
                COperand::Reg(r) => vec![a, r],
                COperand::Imm(_) => vec![a],
            },
            CInstr::Movi { .. } | CInstr::MovLabel { .. } | CInstr::Halt => vec![],
            CInstr::Ld { addr, .. } => vec![addr],
            CInstr::StG { addr, val } | CInstr::StB { addr, val } => vec![addr, val],
            CInstr::BzG { z, t } | CInstr::BzB { z, t } => vec![z, t],
            CInstr::JmpG { t } | CInstr::JmpB { t } => vec![t],
        }
    }

    /// Register written, if any.
    #[must_use]
    pub fn def(&self) -> Option<CVReg> {
        match *self {
            CInstr::Op { d, .. }
            | CInstr::Movi { d, .. }
            | CInstr::MovLabel { d, .. }
            | CInstr::Ld { d, .. } => Some(d),
            _ => None,
        }
    }

    /// Whether this is a d-protocol instruction (their relative order is
    /// fixed: the destination register is a single hardware resource).
    #[must_use]
    pub fn uses_d_protocol(&self) -> bool {
        matches!(
            self,
            CInstr::BzG { .. } | CInstr::BzB { .. } | CInstr::JmpG { .. } | CInstr::JmpB { .. }
        )
    }
}

/// Second operand of a colored op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COperand {
    /// A colored register.
    Reg(CVReg),
    /// An immediate (colored at emission).
    Imm(i64),
}

/// A dependence edge `from must precede to` (indices into the block's
/// instruction list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Earlier instruction.
    pub from: usize,
    /// Later instruction.
    pub to: usize,
    /// Whether this edge exists *only* because of the green≺blue ordering
    /// constraint (dropped by the "without ordering" ablation).
    pub ordering_only: bool,
}

/// A duplicated block: colored instructions + dependence edges.
#[derive(Debug, Clone, Default)]
pub struct DupBlock {
    /// Colored instructions in naive (unscheduled) order.
    pub instrs: Vec<CInstr>,
    /// Dependence edges.
    pub deps: Vec<DepEdge>,
}

/// A duplicated program.
#[derive(Debug, Clone, Default)]
pub struct DupProgram {
    /// One duplicated block per VIR block (same ids/layout).
    pub blocks: Vec<DupBlock>,
}

fn g(v: VReg) -> CVReg {
    CVReg {
        v,
        color: Color::Green,
    }
}

fn b(v: VReg) -> CVReg {
    CVReg {
        v,
        color: Color::Blue,
    }
}

/// Apply the reliability transformation to a whole VIR program.
///
/// Fresh virtual registers are minted for branch-target temporaries; the
/// returned program shares block ids with the input.
pub fn duplicate(p: &VirProgram) -> (DupProgram, u32) {
    let mut next_vreg = p.num_vregs;
    let mut blocks = Vec::with_capacity(p.blocks.len());
    for (bid, block) in p.blocks.iter().enumerate() {
        let mut out = DupBlock::default();
        for i in &block.instrs {
            match *i {
                VInstr::Op { op, d, a, b: src2 } => {
                    let b2g = match src2 {
                        VOperand::Reg(r) => COperand::Reg(g(r)),
                        VOperand::Imm(n) => COperand::Imm(n),
                    };
                    let b2b = match src2 {
                        VOperand::Reg(r) => COperand::Reg(b(r)),
                        VOperand::Imm(n) => COperand::Imm(n),
                    };
                    out.instrs.push(CInstr::Op {
                        op,
                        d: g(d),
                        a: g(a),
                        b: b2g,
                    });
                    out.instrs.push(CInstr::Op {
                        op,
                        d: b(d),
                        a: b(a),
                        b: b2b,
                    });
                }
                VInstr::Movi { d, imm } => {
                    out.instrs.push(CInstr::Movi { d: g(d), imm });
                    out.instrs.push(CInstr::Movi { d: b(d), imm });
                }
                VInstr::Ld { d, addr } => {
                    out.instrs.push(CInstr::Ld {
                        d: g(d),
                        addr: g(addr),
                    });
                    out.instrs.push(CInstr::Ld {
                        d: b(d),
                        addr: b(addr),
                    });
                }
                VInstr::St { addr, val } => {
                    out.instrs.push(CInstr::StG {
                        addr: g(addr),
                        val: g(val),
                    });
                    out.instrs.push(CInstr::StB {
                        addr: b(addr),
                        val: b(val),
                    });
                }
            }
        }
        // Terminator.
        match block.term.expect("lowering seals every block") {
            Terminator::Jmp(t) => {
                if t != bid + 1 {
                    let tv = VReg(next_vreg);
                    next_vreg += 1;
                    out.instrs.push(CInstr::MovLabel { d: g(tv), block: t });
                    out.instrs.push(CInstr::MovLabel { d: b(tv), block: t });
                    out.instrs.push(CInstr::JmpG { t: g(tv) });
                    out.instrs.push(CInstr::JmpB { t: b(tv) });
                }
                // fall-through otherwise: no instructions
            }
            Terminator::Bz { z, target, fall } => {
                debug_assert_eq!(fall, bid + 1, "lowering layout discipline");
                let tv = VReg(next_vreg);
                next_vreg += 1;
                out.instrs.push(CInstr::MovLabel {
                    d: g(tv),
                    block: target,
                });
                out.instrs.push(CInstr::MovLabel {
                    d: b(tv),
                    block: target,
                });
                out.instrs.push(CInstr::BzG { z: g(z), t: g(tv) });
                out.instrs.push(CInstr::BzB { z: b(z), t: b(tv) });
            }
            Terminator::Halt => out.instrs.push(CInstr::Halt),
        }
        out.deps = dependence_edges(&out.instrs);
        blocks.push(out);
    }
    (DupProgram { blocks }, next_vreg)
}

/// Compute intra-block dependence edges:
///
/// * RAW / WAR / WAW through colored registers;
/// * same-color memory order: green memory ops (`stG`, `ldG`) are ordered
///   among themselves (the queue and its forwarding), as are blue ones
///   (`stB` commits, `ldB` reads memory);
/// * store pairs: `stG_i ≺ stB_i` plus FIFO pairing (edge class
///   `ordering_only` carries the relaxable green≺blue constraint — data
///   correctness already pins `stG_i` before `stB_i` *commits*, but the
///   paper's "without ordering" hardware correlates out-of-order pairs, so
///   those edges are marked relaxable);
/// * d-protocol order: `bzG`/`bzB`/`jmpG`/`jmpB` keep their relative order,
///   and every non-control instruction precedes the first blue transfer;
///   `jmp` pair edges are likewise `ordering_only`-relaxable.
fn dependence_edges(instrs: &[CInstr]) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    let mut push = |from: usize, to: usize, ordering_only: bool| {
        if from != to {
            edges.push(DepEdge {
                from,
                to,
                ordering_only,
            });
        }
    };

    // Register dependences.
    for (j, ij) in instrs.iter().enumerate() {
        for (i, ii) in instrs.iter().enumerate().take(j) {
            let raw = ii.def().is_some_and(|d| ij.uses().contains(&d));
            let war = ij.def().is_some_and(|d| ii.uses().contains(&d));
            let waw = match (ii.def(), ij.def()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if raw || war || waw {
                push(i, j, false);
            }
        }
    }

    // Memory order within each color; pair/ordering edges.
    let mut last_green_mem: Option<usize> = None;
    let mut last_blue_mem: Option<usize> = None;
    let mut pending_stg: Vec<usize> = Vec::new();
    for (j, i) in instrs.iter().enumerate() {
        match i {
            CInstr::StG { .. } => {
                if let Some(p) = last_green_mem {
                    push(p, j, false);
                }
                last_green_mem = Some(j);
                pending_stg.push(j);
            }
            CInstr::Ld { d, .. } if d.color == Color::Green => {
                if let Some(p) = last_green_mem {
                    push(p, j, false);
                }
                last_green_mem = Some(j);
            }
            CInstr::StB { .. } => {
                if let Some(p) = last_blue_mem {
                    push(p, j, false);
                }
                last_blue_mem = Some(j);
                // FIFO: this stB matches the oldest unmatched stG.
                if !pending_stg.is_empty() {
                    let m = pending_stg.remove(0);
                    push(m, j, true); // the relaxable green≺blue pair edge
                }
            }
            CInstr::Ld { d, .. } if d.color == Color::Blue => {
                if let Some(p) = last_blue_mem {
                    push(p, j, false);
                }
                last_blue_mem = Some(j);
            }
            _ => {}
        }
    }

    // d-protocol serialization and end-of-block control.
    let controls: Vec<usize> = instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.uses_d_protocol() || matches!(i, CInstr::Halt))
        .map(|(j, _)| j)
        .collect();
    for w in controls.windows(2) {
        // jmpG≺jmpB pair edges are the relaxable control-ordering ones;
        // everything else in the protocol keeps strict order.
        let relaxable = matches!(
            (&instrs[w[0]], &instrs[w[1]]),
            (CInstr::JmpG { .. }, CInstr::JmpB { .. })
        );
        push(w[0], w[1], relaxable);
    }
    // All non-control instructions must precede the first blue transfer
    // (instructions after it would be skipped on the taken path) and the
    // halt.
    let first_commit = instrs
        .iter()
        .position(|i| matches!(i, CInstr::BzB { .. } | CInstr::JmpB { .. } | CInstr::Halt));
    if let Some(fc) = first_commit {
        for (j, instr) in instrs.iter().enumerate() {
            if j != fc && !instr.uses_d_protocol() && !matches!(instr, CInstr::Halt) {
                if j < fc {
                    push(j, fc, false);
                } else {
                    // late instructions only exist when a bzB falls through
                    // into a jmp pair; keep them after the bzB
                    push(fc, j, false);
                }
            }
        }
    }
    edges
}

/// The **unprotected baseline** backend: the same VIR emitted single-color
/// (all green), with stores/transfers encoded as same-register pairs (the
/// only way the TAL_FT hardware can store at all). This is exactly the
/// "unreliable version" of the paper's evaluation: it executes correctly in
/// fault-free runs, the type checker rejects it (cf. the §2.2 CSE example),
/// and fault injection finds silent data corruption in it.
pub fn baseline(p: &VirProgram) -> (DupProgram, u32) {
    let mut next_vreg = p.num_vregs;
    let mut blocks = Vec::with_capacity(p.blocks.len());
    for (bid, block) in p.blocks.iter().enumerate() {
        let mut out = DupBlock::default();
        for i in &block.instrs {
            match *i {
                VInstr::Op { op, d, a, b: src2 } => {
                    let b2 = match src2 {
                        VOperand::Reg(r) => COperand::Reg(g(r)),
                        VOperand::Imm(n) => COperand::Imm(n),
                    };
                    out.instrs.push(CInstr::Op {
                        op,
                        d: g(d),
                        a: g(a),
                        b: b2,
                    });
                }
                VInstr::Movi { d, imm } => out.instrs.push(CInstr::Movi { d: g(d), imm }),
                VInstr::Ld { d, addr } => out.instrs.push(CInstr::Ld {
                    d: g(d),
                    addr: g(addr),
                }),
                VInstr::St { addr, val } => {
                    // same-register pair: the unprotected store idiom
                    out.instrs.push(CInstr::StG {
                        addr: g(addr),
                        val: g(val),
                    });
                    out.instrs.push(CInstr::StB {
                        addr: g(addr),
                        val: g(val),
                    });
                }
            }
        }
        match block.term.expect("lowering seals every block") {
            Terminator::Jmp(t) => {
                if t != bid + 1 {
                    let tv = VReg(next_vreg);
                    next_vreg += 1;
                    out.instrs.push(CInstr::MovLabel { d: g(tv), block: t });
                    out.instrs.push(CInstr::JmpG { t: g(tv) });
                    out.instrs.push(CInstr::JmpB { t: g(tv) });
                }
            }
            Terminator::Bz { z, target, fall } => {
                debug_assert_eq!(fall, bid + 1);
                let tv = VReg(next_vreg);
                next_vreg += 1;
                out.instrs.push(CInstr::MovLabel {
                    d: g(tv),
                    block: target,
                });
                out.instrs.push(CInstr::BzG { z: g(z), t: g(tv) });
                out.instrs.push(CInstr::BzB { z: g(z), t: g(tv) });
            }
            Terminator::Halt => out.instrs.push(CInstr::Halt),
        }
        out.deps = dependence_edges(&out.instrs);
        blocks.push(out);
    }
    (DupProgram { blocks }, next_vreg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parse::parse;
    use crate::sema::analyze;

    fn dup_src(src: &str) -> (DupProgram, crate::vir::VirProgram) {
        let sem = analyze(&parse(src).expect("parses")).expect("sema");
        let vir = lower(&sem).expect("lowers");
        let (d, _) = duplicate(&vir);
        (d, vir)
    }

    #[test]
    fn every_instr_is_duplicated() {
        let (d, vir) = dup_src("output out[1]; func main() { out[0] = 2 + 3; }");
        for (db, vb) in d.blocks.iter().zip(vir.blocks.iter()) {
            let colored = db
                .instrs
                .iter()
                .filter(|i| !matches!(i, CInstr::Halt))
                .count();
            // every VIR instr (and any jump materialization) appears twice
            assert!(colored >= vb.instrs.len() * 2);
        }
    }

    #[test]
    fn stores_become_pairs_with_relaxable_edge() {
        let (d, _) = dup_src("output out[1]; func main() { out[0] = 1; }");
        let b0 = &d.blocks[0];
        let stg = b0
            .instrs
            .iter()
            .position(|i| matches!(i, CInstr::StG { .. }))
            .expect("stG");
        let stb = b0
            .instrs
            .iter()
            .position(|i| matches!(i, CInstr::StB { .. }))
            .expect("stB");
        assert!(b0
            .deps
            .iter()
            .any(|e| e.from == stg && e.to == stb && e.ordering_only));
    }

    #[test]
    fn colors_never_mix_in_ops() {
        let (d, _) = dup_src(
            "output out[1]; func main() { var i = 0; var s = 0; \
             while (i < 5) { s = s + i * 2; i = i + 1; } out[0] = s; }",
        );
        for blk in &d.blocks {
            for i in &blk.instrs {
                if let CInstr::Op { d, a, b, .. } = i {
                    assert_eq!(d.color, a.color);
                    if let COperand::Reg(r) = b {
                        assert_eq!(d.color, r.color);
                    }
                }
            }
        }
    }

    #[test]
    fn branch_blocks_end_with_split_protocol() {
        let (d, vir) = dup_src(
            "output out[1]; func main() { var i = 0; \
             while (i < 3) { i = i + 1; } out[0] = i; }",
        );
        for (bid, vb) in vir.blocks.iter().enumerate() {
            if matches!(vb.term, Some(Terminator::Bz { .. })) {
                let instrs = &d.blocks[bid].instrs;
                let n = instrs.len();
                assert!(matches!(instrs[n - 1], CInstr::BzB { .. }));
                assert!(matches!(instrs[n - 2], CInstr::BzG { .. }));
            }
        }
    }

    #[test]
    fn fifo_pairing_of_multiple_stores() {
        let (d, _) = dup_src("output out[2]; func main() { out[0] = 1; out[1] = 2; }");
        let b0 = &d.blocks[0];
        let stgs: Vec<usize> = b0
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, CInstr::StG { .. }))
            .map(|(j, _)| j)
            .collect();
        let stbs: Vec<usize> = b0
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, CInstr::StB { .. }))
            .map(|(j, _)| j)
            .collect();
        assert_eq!(stgs.len(), 2);
        assert_eq!(stbs.len(), 2);
        // pair edges: stg[k] -> stb[k]
        for k in 0..2 {
            assert!(b0
                .deps
                .iter()
                .any(|e| e.from == stgs[k] && e.to == stbs[k] && e.ordering_only));
        }
    }

    #[test]
    fn dep_edges_are_acyclic_forward() {
        let (d, _) = dup_src(
            "output out[1]; func main() { var s = 0; var i = 0; \
             while (i < 4) { s = s + tabless(i); i = i + 1; } out[0] = s; } \
             func tabless(x) { return x * x + 1; }",
        );
        for blk in &d.blocks {
            for e in &blk.deps {
                assert!(e.from < e.to, "edges must point forward in naive order");
            }
        }
    }
}
