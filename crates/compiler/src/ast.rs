//! Abstract syntax of **Wile**, the small imperative source language our
//! reliability-transforming compiler accepts (the stand-in for the C inputs
//! the paper's VELOCITY compiler consumed; DESIGN.md §"Substitutions").
//!
//! Wile has 64-bit integers, global arrays (power-of-two sized, enabling the
//! masked-index bounds discipline), `while`/`if` control flow, and
//! non-recursive functions that are inlined by the frontend.

use std::fmt;

/// Binary operators at the source level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (logical)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (non-short-circuit; both sides evaluate)
    LAnd,
    /// `||` (non-short-circuit)
    LOr,
}

impl fmt::Display for AstBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AstBinOp::Add => "+",
            AstBinOp::Sub => "-",
            AstBinOp::Mul => "*",
            AstBinOp::And => "&",
            AstBinOp::Or => "|",
            AstBinOp::Xor => "^",
            AstBinOp::Shl => "<<",
            AstBinOp::Shr => ">>",
            AstBinOp::Lt => "<",
            AstBinOp::Le => "<=",
            AstBinOp::Gt => ">",
            AstBinOp::Ge => ">=",
            AstBinOp::Eq => "==",
            AstBinOp::Ne => "!=",
            AstBinOp::LAnd => "&&",
            AstBinOp::LOr => "||",
        };
        f.write_str(s)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable or constant reference.
    Var(String),
    /// `arr[index]`.
    Index(String, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not (`!e` — 1 if `e == 0`, else 0).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(AstBinOp, Box<Expr>, Box<Expr>),
    /// Function call (inlined by sema).
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = e;` — declare and initialize a local.
    Let(String, Expr),
    /// `x = e;`
    Assign(String, Expr),
    /// `arr[i] = e;`
    Store(String, Expr, Expr),
    /// `if (c) { .. } else { .. }` (else optional → empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>),
}

/// A function declaration: non-recursive, inlined at call sites; the body is
/// statements followed by a single trailing `return`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements (before the return).
    pub body: Vec<Stmt>,
    /// The returned expression.
    pub ret: Expr,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `array tab[LEN] = [a, b, c];` — a global array region; `output`
    /// arrays are the observable device window. Lengths must be powers of
    /// two.
    Array {
        /// Array name.
        name: String,
        /// Number of cells (power of two).
        len: i64,
        /// Initial values (zero-padded).
        init: Vec<i64>,
        /// Whether this is an observable output window.
        output: bool,
    },
    /// `const N = 8;`
    Const(String, i64),
    /// `func f(a, b) { ... return e; }`
    Func(FuncDecl),
}

/// A parsed Wile program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WileProgram {
    /// All top-level items in source order.
    pub items: Vec<Item>,
}

impl WileProgram {
    /// Find a function by name.
    #[must_use]
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }
}
