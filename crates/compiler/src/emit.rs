//! Emission: scheduled + allocated colored code → an annotated TAL_FT
//! [`Program`] that the `talft-core` checker accepts.
//!
//! Annotation synthesis (per block label):
//!
//! * one universally-quantified variable `v<k>` per live-in vreg *pair* —
//!   the green copy's register is typed `(G, int, v<k>)` and the blue
//!   copy's `(B, int, v<k>)`, which is exactly how the checker enforces
//!   Principle 4 (green/blue equality) at every block boundary;
//! * a fresh memory variable; an empty queue (store pairs never span
//!   blocks); `d = (G, int, 0)`; pcs at the label's address.
//!
//! Empty fall-through blocks share their successor's address and emit no
//! label of their own.

use std::sync::Arc;

use talft_isa::ty::ValTy;
use talft_isa::{
    BasicTy, CVal, CodeTy, Color, Gpr, Instr, OpSrc, Program, RegFileTy, RegTy, Region,
};
use talft_logic::{ExprArena, Kind};

use crate::dup::{CInstr, COperand, CVReg, DupProgram};
use crate::regalloc::{Allocation, Liveness};
use crate::vir::{VReg, VirProgram};

/// Emission error (internal invariant violations surface here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitError(pub String);

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EmitError {}

/// Emit a TAL_FT program. Returns the program, its expression arena, and
/// the per-block start addresses (used by the timing pipeline).
pub fn emit(
    vir: &VirProgram,
    dup: &DupProgram,
    orders: &[Vec<usize>],
    live: &Liveness,
    alloc: &Allocation,
    num_gprs: u16,
) -> Result<(Program, ExprArena, Vec<i64>), EmitError> {
    let mut arena = ExprArena::new();
    let nblocks = dup.blocks.len();

    // Block start addresses; empty blocks share the next block's address.
    let mut addr = vec![0i64; nblocks + 1];
    let mut next_addr = 1i64;
    for (slot, block) in addr.iter_mut().zip(&dup.blocks) {
        *slot = next_addr;
        next_addr += block.instrs.len() as i64;
    }
    addr[nblocks] = next_addr;

    let mut program = Program {
        num_gprs,
        entry: 1,
        ..Program::default()
    };
    for r in &vir.regions {
        program.regions.push(Region {
            name: r.name.clone(),
            base: r.base,
            len: r.len,
            elem: BasicTy::Int,
            init: r.init.clone(),
            output: r.output,
        });
    }

    // Entry must have no live-ins (the boot register file is untyped).
    if live.live_in[0].iter().any(|&b| b) {
        return Err(EmitError("entry block has live-in registers".into()));
    }

    for bid in 0..nblocks {
        let blk = &dup.blocks[bid];
        let is_empty = blk.instrs.is_empty();

        // Label + precondition (skip empty fall-through blocks: they share
        // the successor's address and contract).
        if !is_empty || bid == 0 {
            let label = if bid == 0 {
                "main".to_owned()
            } else {
                format!("b{bid}")
            };
            let this_addr = addr[bid];
            if !is_empty {
                program.labels.insert(label, this_addr);
                program
                    .preconds
                    .insert(this_addr, precond(&mut arena, bid, live, alloc, this_addr)?);
            } else {
                // empty entry block: alias main to the next address
                program.labels.insert(label, addr[bid + 1]);
            }
        }

        for &idx in &orders[bid] {
            let i = &blk.instrs[idx];
            program.instrs.push(lower_instr(i, alloc, &addr)?);
        }
    }

    if program.preconds.is_empty() || !program.preconds.contains_key(&1) {
        return Err(EmitError("entry block emitted no precondition".into()));
    }
    Ok((program, arena, addr))
}

fn phys(alloc: &Allocation, r: CVReg) -> Gpr {
    Gpr(alloc.phys(r))
}

fn lower_instr(i: &CInstr, alloc: &Allocation, addr: &[i64]) -> Result<Instr, EmitError> {
    Ok(match *i {
        CInstr::Op { op, d, a, b } => Instr::Op {
            op,
            rd: phys(alloc, d),
            rs: phys(alloc, a),
            src2: match b {
                COperand::Reg(r) => OpSrc::Reg(phys(alloc, r)),
                COperand::Imm(n) => OpSrc::Imm(CVal::new(d.color, n)),
            },
        },
        CInstr::Movi { d, imm } => Instr::Mov {
            rd: phys(alloc, d),
            v: CVal::new(d.color, imm),
        },
        CInstr::MovLabel { d, block } => Instr::Mov {
            rd: phys(alloc, d),
            v: CVal::new(
                d.color,
                *addr
                    .get(block)
                    .ok_or_else(|| EmitError(format!("bad block id {block}")))?,
            ),
        },
        CInstr::Ld { d, addr: a } => Instr::Ld {
            color: d.color,
            rd: phys(alloc, d),
            rs: phys(alloc, a),
        },
        CInstr::StG { addr: a, val } => Instr::St {
            color: Color::Green,
            rd: phys(alloc, a),
            rs: phys(alloc, val),
        },
        CInstr::StB { addr: a, val } => Instr::St {
            color: Color::Blue,
            rd: phys(alloc, a),
            rs: phys(alloc, val),
        },
        CInstr::BzG { z, t } => Instr::Bz {
            color: Color::Green,
            rz: phys(alloc, z),
            rd: phys(alloc, t),
        },
        CInstr::BzB { z, t } => Instr::Bz {
            color: Color::Blue,
            rz: phys(alloc, z),
            rd: phys(alloc, t),
        },
        CInstr::JmpG { t } => Instr::Jmp {
            color: Color::Green,
            rd: phys(alloc, t),
        },
        CInstr::JmpB { t } => Instr::Jmp {
            color: Color::Blue,
            rd: phys(alloc, t),
        },
        CInstr::Halt => Instr::Halt,
    })
}

/// Build the precondition for a block from its live-in set.
fn precond(
    arena: &mut ExprArena,
    bid: usize,
    live: &Liveness,
    alloc: &Allocation,
    this_addr: i64,
) -> Result<CodeTy, EmitError> {
    let mut delta = Vec::new();
    let mut regs = RegFileTy::new();

    // Group live-ins by underlying vreg so the green/blue copies share one
    // universally-quantified variable.
    let nbits = live.live_in[bid].len();
    let mut vreg_var: std::collections::BTreeMap<u32, talft_logic::VarId> =
        std::collections::BTreeMap::new();
    for k in 0..nbits {
        if !live.live_in[bid][k] {
            continue;
        }
        let v = (k / 2) as u32;
        let color = if k % 2 == 0 {
            Color::Green
        } else {
            Color::Blue
        };
        let var = *vreg_var.entry(v).or_insert_with(|| {
            let var = arena.var_id(&format!("v{v}_{bid}"));
            delta.push((var, Kind::Int));
            var
        });
        let cv = CVReg { v: VReg(v), color };
        let p = alloc
            .get(cv)
            .ok_or_else(|| EmitError(format!("live-in vreg {v} ({color}) unallocated")))?;
        let e = arena.var_expr(var);
        regs.set(
            talft_isa::Reg::Gpr(Gpr(p)),
            RegTy::Val(ValTy::new(color, BasicTy::Int, e)),
        );
    }

    // d, pcs, mem defaults.
    let zero = arena.int(0);
    regs.set(talft_isa::Reg::Dst, RegTy::int(Color::Green, zero));
    let a = arena.int(this_addr);
    regs.set(
        talft_isa::Reg::Pc(Color::Green),
        RegTy::Val(ValTy::new(Color::Green, BasicTy::Int, a)),
    );
    regs.set(
        talft_isa::Reg::Pc(Color::Blue),
        RegTy::Val(ValTy::new(Color::Blue, BasicTy::Int, a)),
    );
    let mvar = arena.var_id(&format!("m{bid}"));
    delta.push((mvar, Kind::Mem));
    let mem = arena.var_expr(mvar);

    Ok(CodeTy {
        delta,
        facts: Vec::new(),
        regs,
        queue: Vec::new(),
        mem,
    })
}

/// Convenience: wrap a program in an `Arc` (the machine's expected form).
#[must_use]
pub fn share(program: Program) -> Arc<Program> {
    Arc::new(program)
}
