//! The Wile → TAL_FT compiler: the reliability transformation of
//! *Fault-tolerant Typed Assembly Language* (Perry et al., PLDI 2007, §5),
//! reproduced end-to-end.
//!
//! Pipeline (mirroring the paper's modified VELOCITY):
//!
//! ```text
//! Wile source ─parse→ AST ─sema(inline, layout)→ flat AST
//!   ─lower→ VIR ─┬─ duplicate ─ schedule ─ regalloc ─ emit → TAL_FT (type-checks!)
//!                └─ baseline ── schedule ─ regalloc ─ emit → TAL_FT (unprotected)
//! ```
//!
//! Each variant also yields a [`talft_sim::SchedProgram`] timing view; the
//! protected variant additionally yields the *without-ordering* schedule of
//! the Figure 10 ablation (timing-only — the green≺blue constraint is
//! required for functional execution on the TAL_FT machine).
//!
//! # Example
//!
//! ```
//! use talft_compiler::{compile, CompileOptions};
//!
//! let src = "output out[1]; func main() { out[0] = 6 * 7; }";
//! let c = compile(src, &CompileOptions::default()).unwrap();
//! let run = talft_machine::run_program(&c.protected.program, 100_000);
//! assert_eq!(run.trace, vec![(4096, 42)]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod dup;
pub mod emit;
pub mod lower;
pub mod opt;
pub mod parse;
pub mod regalloc;
pub mod sched;
pub mod sema;
pub mod vir;

use std::sync::Arc;

use talft_isa::Program;
use talft_logic::ExprArena;
use talft_sim::{MachineModel, SchedProgram, TimedOp};

use crate::dup::{CInstr, DupProgram};
use crate::regalloc::Allocation;

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// GPR count of the target machine.
    pub num_gprs: u16,
    /// Timing model used for scheduling priorities.
    pub model: MachineModel,
    /// Lower loops in inverted (bottom-test) form — one block per iteration
    /// (see [`lower::lower_with`]). Off by default; the `loopshape` ablation
    /// measures its effect on the Figure 10 ratio.
    pub invert_loops: bool,
    /// Run the VIR optimizer (constant folding, copy propagation, DCE)
    /// before duplication (see [`opt`]). Off by default so the published
    /// Figure 10 numbers are measured on unoptimized lowering; the
    /// `optlevel` ablation measures its effect.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            num_gprs: 64,
            model: MachineModel::default(),
            invert_loops: false,
            optimize: false,
        }
    }
}

/// One emitted program variant.
#[derive(Debug)]
pub struct Artifact {
    /// The TAL_FT program.
    pub program: Arc<Program>,
    /// Arena owning the program's static expressions.
    pub arena: ExprArena,
    /// Per-block start addresses (index = VIR block id).
    pub block_addrs: Vec<i64>,
    /// Timing view of the emitted schedule.
    pub sched: SchedProgram,
}

/// The complete compilation result.
#[derive(Debug)]
pub struct Compiled {
    /// The mid-level IR (reference semantics; drives the timing replay).
    pub vir: vir::VirProgram,
    /// Protected (fault-tolerant) variant — passes `talft-core`'s checker.
    pub protected: Artifact,
    /// Timing view of the protected variant scheduled *without* the
    /// green≺blue ordering constraint (Figure 10's second series).
    pub protected_unordered_sched: SchedProgram,
    /// Unprotected baseline (functional, intentionally not fault-tolerant).
    pub baseline: Artifact,
}

/// A compilation error from any phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(parse::ParseError),
    /// Semantic analysis failed.
    Sema(sema::SemError),
    /// Lowering failed.
    Lower(lower::LowerError),
    /// Register allocation failed.
    Alloc(regalloc::AllocError),
    /// Emission failed.
    Emit(emit::EmitError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
            CompileError::Alloc(e) => write!(f, "allocation error: {e}"),
            CompileError::Emit(e) => write!(f, "emission error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile Wile source into protected and baseline TAL_FT programs plus
/// their timing views.
pub fn compile(src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let ast = parse::parse(src).map_err(CompileError::Parse)?;
    let sem = sema::analyze(&ast).map_err(CompileError::Sema)?;
    let mut vir = lower::lower_with(&sem, opts.invert_loops).map_err(CompileError::Lower)?;
    if opts.optimize {
        vir = opt::optimize(&vir);
    }

    // Protected variant.
    let (dup, nv) = dup::duplicate(&vir);
    let orders: Vec<Vec<usize>> = dup
        .blocks
        .iter()
        .map(|b| sched::schedule_block(b, &opts.model, true))
        .collect();
    let live = regalloc::liveness(&vir, &dup, &orders, nv);
    let alloc =
        regalloc::allocate(&dup, &orders, &live, opts.num_gprs).map_err(CompileError::Alloc)?;
    let (prog, arena, addrs) = emit::emit(&vir, &dup, &orders, &live, &alloc, opts.num_gprs)
        .map_err(CompileError::Emit)?;
    let protected = Artifact {
        program: Arc::new(prog),
        arena,
        block_addrs: addrs,
        sched: timing_view(&dup, &orders, &alloc, false),
    };

    // Unordered protected schedule (timing only). The relaxed hardware can
    // also execute any ordered schedule, so an optimizing compiler keeps the
    // better of the two per block; we do the same (standalone-block cost).
    let unordered: Vec<Vec<usize>> = dup
        .blocks
        .iter()
        .enumerate()
        .map(|(bid, b)| {
            let relaxed = sched::schedule_block(b, &opts.model, false);
            let ordered = &orders[bid];
            if block_cost(b, &relaxed, &alloc, &opts.model)
                < block_cost(b, ordered, &alloc, &opts.model)
            {
                relaxed
            } else {
                ordered.clone()
            }
        })
        .collect();
    let protected_unordered_sched = timing_view(&dup, &unordered, &alloc, false);

    // Baseline variant.
    let (bdup, bnv) = dup::baseline(&vir);
    let borders: Vec<Vec<usize>> = bdup
        .blocks
        .iter()
        .map(|b| sched::schedule_block(b, &opts.model, true))
        .collect();
    let blive = regalloc::liveness(&vir, &bdup, &borders, bnv);
    let balloc =
        regalloc::allocate(&bdup, &borders, &blive, opts.num_gprs).map_err(CompileError::Alloc)?;
    let (bprog, barena, baddrs) = emit::emit(&vir, &bdup, &borders, &blive, &balloc, opts.num_gprs)
        .map_err(CompileError::Emit)?;
    let baseline = Artifact {
        program: Arc::new(bprog),
        arena: barena,
        block_addrs: baddrs,
        sched: timing_view(&bdup, &borders, &balloc, true),
    };

    Ok(Compiled {
        vir,
        protected,
        protected_unordered_sched,
        baseline,
    })
}

/// Standalone issue cost of one block under a schedule (used to pick the
/// better of the ordered/relaxed schedules for the ablation).
fn block_cost(
    block: &dup::DupBlock,
    order: &[usize],
    alloc: &Allocation,
    model: &MachineModel,
) -> u64 {
    let one = DupProgram {
        blocks: vec![dup::DupBlock {
            instrs: block.instrs.clone(),
            deps: block.deps.clone(),
        }],
    };
    let view = timing_view(&one, &[order.to_vec()], alloc, false);
    talft_sim::simulate(
        &view,
        &[talft_sim::BlockVisit {
            block: 0,
            taken_exit: false,
        }],
        model,
    )
}

/// Convert a scheduled, allocated variant into the timing simulator's
/// per-block op lists. In `baseline` mode the redundant halves that a
/// conventional ISA would not execute are marked free (see
/// `talft_sim`'s module docs).
#[must_use]
pub fn timing_view(
    dup: &DupProgram,
    orders: &[Vec<usize>],
    alloc: &Allocation,
    baseline: bool,
) -> SchedProgram {
    let mut blocks = Vec::with_capacity(dup.blocks.len());
    for (bid, blk) in dup.blocks.iter().enumerate() {
        let mut ops = Vec::with_capacity(blk.instrs.len());
        for &idx in &orders[bid] {
            let i = &blk.instrs[idx];
            let kind = sched::op_kind(i);
            let dst = i.def().map(|d| alloc.phys(d));
            let srcs: Vec<u16> = i.uses().iter().map(|&u| alloc.phys(u)).collect();
            let mut op = TimedOp::new(kind, dst, srcs);
            if baseline {
                match i {
                    // A conventional ISA does these in one instruction;
                    // cost only one half of each pair.
                    CInstr::StB { .. }
                    | CInstr::JmpG { .. }
                    | CInstr::BzG { .. }
                    | CInstr::MovLabel { .. } => op = op.freed(),
                    // The committing control halves don't read a target
                    // register in the conventional encoding.
                    CInstr::JmpB { .. } => op.srcs.clear(),
                    CInstr::BzB { z, .. } => op.srcs = vec![alloc.phys(*z)],
                    _ => {}
                }
            }
            ops.push(op);
        }
        blocks.push(ops);
    }
    SchedProgram { blocks }
}
