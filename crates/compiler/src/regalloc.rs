//! Liveness analysis and linear-scan register allocation over colored
//! virtual registers.
//!
//! Colors impose no constraint on *physical* registers (a GPR can hold a
//! value of either color — colors live in values), so the allocator works
//! per colored vreg. Spilling is not implemented: TAL_FT spills would have
//! to round-trip through the store queue as dual-color pairs, and with the
//! Itanium-class register files the paper targets (64–128 GPRs) our kernels
//! never spill; exceeding pressure is a compile error (DESIGN.md).

use std::collections::BTreeMap;

use crate::dup::{CVReg, DupProgram};
use crate::vir::{Terminator, VirProgram};

/// Allocation result: colored vreg → physical GPR index.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    map: BTreeMap<CVReg, u16>,
    /// Highest physical register used + 1.
    pub used: u16,
}

impl Allocation {
    /// Physical register of a colored vreg.
    #[must_use]
    pub fn get(&self, r: CVReg) -> Option<u16> {
        self.map.get(&r).copied()
    }

    /// Physical register, panicking on unallocated vregs (a compiler bug).
    #[must_use]
    pub fn phys(&self, r: CVReg) -> u16 {
        self.get(r).expect("colored vreg was live but unallocated")
    }
}

/// Allocation failure: register pressure exceeded the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// How many physical registers were available.
    pub available: u16,
    /// Pressure high-water mark that did not fit.
    pub needed: usize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "register pressure too high: needs more than {} GPRs (live ≈ {}); \
             raise `.gprs` or simplify the kernel (TAL_FT spilling is not \
             implemented — see DESIGN.md)",
            self.available, self.needed
        )
    }
}

impl std::error::Error for AllocError {}

/// Per-block liveness of colored vregs.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// live-in sets per block (dense bitsets over `CVReg::index()`).
    pub live_in: Vec<Vec<bool>>,
    /// live-out sets per block.
    pub live_out: Vec<Vec<bool>>,
    nbits: usize,
}

/// Compute liveness over the scheduled colored program. `orders[b]` is the
/// schedule (permutation) of block `b`.
#[must_use]
pub fn liveness(
    vir: &VirProgram,
    dup: &DupProgram,
    orders: &[Vec<usize>],
    num_vregs: u32,
) -> Liveness {
    let nbits = num_vregs as usize * 2;
    let nblocks = dup.blocks.len();
    let succs: Vec<Vec<usize>> = vir
        .blocks
        .iter()
        .map(|b| match b.term.expect("sealed") {
            Terminator::Jmp(t) => vec![t],
            Terminator::Bz { target, fall, .. } => vec![target, fall],
            Terminator::Halt => vec![],
        })
        .collect();
    debug_assert!(succs.iter().all(|v| v.iter().all(|&b| b < nblocks)));

    // Per-block use/def in schedule order.
    let mut uses: Vec<Vec<bool>> = vec![vec![false; nbits]; nblocks];
    let mut defs: Vec<Vec<bool>> = vec![vec![false; nbits]; nblocks];
    for (bid, blk) in dup.blocks.iter().enumerate() {
        for &idx in &orders[bid] {
            let i = &blk.instrs[idx];
            for u in i.uses() {
                if !defs[bid][u.index()] {
                    uses[bid][u.index()] = true;
                }
            }
            if let Some(d) = i.def() {
                defs[bid][d.index()] = true;
            }
        }
    }

    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nbits]; nblocks];
    let mut live_out: Vec<Vec<bool>> = vec![vec![false; nbits]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bid in (0..nblocks).rev() {
            let mut out = vec![false; nbits];
            for &s in &succs[bid] {
                for (k, &v) in live_in[s].iter().enumerate() {
                    if v {
                        out[k] = true;
                    }
                }
            }
            let mut inn = uses[bid].clone();
            for k in 0..nbits {
                if out[k] && !defs[bid][k] {
                    inn[k] = true;
                }
            }
            if out != live_out[bid] || inn != live_in[bid] {
                live_out[bid] = out;
                live_in[bid] = inn;
                changed = true;
            }
        }
    }
    Liveness {
        live_in,
        live_out,
        nbits,
    }
}

/// Linear-scan allocation over global live intervals.
pub fn allocate(
    dup: &DupProgram,
    orders: &[Vec<usize>],
    live: &Liveness,
    num_gprs: u16,
) -> Result<Allocation, AllocError> {
    // Global positions: blocks in layout order.
    let mut base = vec![0usize; dup.blocks.len()];
    let mut pos = 0usize;
    for (bid, blk) in dup.blocks.iter().enumerate() {
        base[bid] = pos;
        pos += blk.instrs.len() + 1; // +1 for the block-boundary slot
    }
    let total = pos;

    // Intervals per colored vreg (by dense index).
    let mut start = vec![usize::MAX; live.nbits];
    let mut end = vec![0usize; live.nbits];
    let mut reg_of_index: Vec<Option<CVReg>> = vec![None; live.nbits];
    let touch = |k: usize, p: usize, start: &mut Vec<usize>, end: &mut Vec<usize>| {
        if p < start[k] {
            start[k] = p;
        }
        if p + 1 > end[k] {
            end[k] = p + 1;
        }
    };
    for (bid, blk) in dup.blocks.iter().enumerate() {
        for (sched_pos, &idx) in orders[bid].iter().enumerate() {
            let p = base[bid] + sched_pos;
            let i = &blk.instrs[idx];
            for u in i.uses() {
                reg_of_index[u.index()] = Some(u);
                touch(u.index(), p, &mut start, &mut end);
            }
            if let Some(d) = i.def() {
                reg_of_index[d.index()] = Some(d);
                touch(d.index(), p, &mut start, &mut end);
            }
        }
        for k in 0..live.nbits {
            if live.live_in[bid][k] {
                touch(k, base[bid], &mut start, &mut end);
            }
            if live.live_out[bid][k] {
                touch(
                    k,
                    base[bid] + dup.blocks[bid].instrs.len(),
                    &mut start,
                    &mut end,
                );
            }
        }
    }
    let _ = total;

    // Linear scan.
    let mut order: Vec<usize> = (0..live.nbits)
        .filter(|&k| start[k] != usize::MAX)
        .collect();
    order.sort_by_key(|&k| (start[k], k));
    let mut free: Vec<u16> = (0..num_gprs).rev().collect();
    let mut active: Vec<(usize, u16)> = Vec::new(); // (end, phys)
    let mut alloc = Allocation::default();
    for k in order {
        active.retain(|&(e, phys)| {
            if e <= start[k] {
                free.push(phys);
                false
            } else {
                true
            }
        });
        let Some(phys) = free.pop() else {
            return Err(AllocError {
                available: num_gprs,
                needed: active.len() + 1,
            });
        };
        active.push((end[k], phys));
        let r = reg_of_index[k].expect("interval implies occurrence");
        alloc.map.insert(r, phys);
        alloc.used = alloc.used.max(phys + 1);
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dup::duplicate;
    use crate::lower::lower;
    use crate::parse::parse;
    use crate::sched::schedule_block;
    use crate::sema::analyze;
    use talft_sim::MachineModel;

    fn pipeline(src: &str) -> (VirProgram, DupProgram, Vec<Vec<usize>>, u32) {
        let sem = analyze(&parse(src).expect("parses")).expect("sema");
        let vir = lower(&sem).expect("lowers");
        let (dup, nv) = duplicate(&vir);
        let model = MachineModel::default();
        let orders: Vec<Vec<usize>> = dup
            .blocks
            .iter()
            .map(|b| schedule_block(b, &model, true))
            .collect();
        (vir, dup, orders, nv)
    }

    const LOOP: &str = "array tab[8] = [1,2,3,4,5,6,7,8]; output out[8]; \
        func main() { var i = 0; var s = 0; \
        while (i < 8) { s = s + tab[i]; out[i] = s; i = i + 1; } }";

    #[test]
    fn loop_carried_values_are_live_at_header() {
        let (vir, dup, orders, nv) = pipeline(LOOP);
        let live = liveness(&vir, &dup, &orders, nv);
        // the loop header (block 1) must have live-in values (i, s pairs)
        let live_in_count = live.live_in[1].iter().filter(|&&b| b).count();
        assert!(
            live_in_count >= 4,
            "expected ≥ 2 pairs live-in, got {live_in_count}"
        );
    }

    #[test]
    fn allocation_succeeds_and_respects_no_aliasing() {
        let (vir, dup, orders, nv) = pipeline(LOOP);
        let live = liveness(&vir, &dup, &orders, nv);
        let alloc = allocate(&dup, &orders, &live, 64).expect("fits in 64 GPRs");
        // Distinct simultaneously-live colored vregs get distinct physical
        // registers: check per block that live-in regs are injective.
        for bid in 0..dup.blocks.len() {
            let mut seen = std::collections::HashSet::new();
            for k in 0..live.nbits {
                if live.live_in[bid][k] {
                    let r = CVReg {
                        v: crate::vir::VReg((k / 2) as u32),
                        color: if k % 2 == 0 {
                            talft_isa::Color::Green
                        } else {
                            talft_isa::Color::Blue
                        },
                    };
                    if let Some(p) = alloc.get(r) {
                        assert!(seen.insert(p), "physical register reused among live-ins");
                    }
                }
            }
        }
    }

    #[test]
    fn pressure_error_is_reported() {
        let (vir, dup, orders, nv) = pipeline(LOOP);
        let live = liveness(&vir, &dup, &orders, nv);
        let err = allocate(&dup, &orders, &live, 2).expect_err("2 GPRs cannot fit");
        assert_eq!(err.available, 2);
    }
}
