//! VIR — the compiler's virtual-register three-address IR, plus a reference
//! interpreter.
//!
//! VIR sits where the paper's reliability transformation sat in VELOCITY:
//! "immediately before register allocation and scheduling". Lowering
//! produces VIR; the duplication pass, the baseline backend, and the
//! schedulers all consume it. The interpreter provides (a) the reference
//! output trace for differential testing of compiled TAL_FT code and (b)
//! the dynamic block-visit sequence the timing simulator replays.

use std::collections::BTreeMap;

use talft_logic::BinOp;
use talft_sim::BlockVisit;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Second operand of an ALU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VOperand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate.
    Imm(i64),
}

/// A VIR instruction (straight-line part of a block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VInstr {
    /// `d = a op b`.
    Op {
        /// Operation.
        op: BinOp,
        /// Destination.
        d: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VOperand,
    },
    /// `d = imm`.
    Movi {
        /// Destination.
        d: VReg,
        /// The constant.
        imm: i64,
    },
    /// `d = M[addr]`.
    Ld {
        /// Destination.
        d: VReg,
        /// Address register.
        addr: VReg,
    },
    /// `M[addr] = val` (lowered to a `stG`/`stB` pair by duplication).
    St {
        /// Address register.
        addr: VReg,
        /// Value register.
        val: VReg,
    },
}

impl VInstr {
    /// Registers read.
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        match *self {
            VInstr::Op { a, b, .. } => match b {
                VOperand::Reg(r) => vec![a, r],
                VOperand::Imm(_) => vec![a],
            },
            VInstr::Movi { .. } => vec![],
            VInstr::Ld { addr, .. } => vec![addr],
            VInstr::St { addr, val } => vec![addr, val],
        }
    }

    /// Register written, if any.
    #[must_use]
    pub fn def(&self) -> Option<VReg> {
        match *self {
            VInstr::Op { d, .. } | VInstr::Movi { d, .. } | VInstr::Ld { d, .. } => Some(d),
            VInstr::St { .. } => None,
        }
    }
}

/// Basic-block id (also its position in the final code layout).
pub type BlockId = usize;

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Branch to `target` when `z == 0`; fall through to `fall` otherwise.
    /// Lowering guarantees `fall` is the next block in layout order.
    Bz {
        /// Condition register (branch taken when 0).
        z: VReg,
        /// Zero-target.
        target: BlockId,
        /// Fall-through block (next in layout).
        fall: BlockId,
    },
    /// Stop.
    Halt,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<VInstr>,
    /// Terminator (`Halt` by default until lowering seals the block).
    pub term: Option<Terminator>,
}

/// A data region at the VIR level (mirrors `talft_isa::Region`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VRegion {
    /// Name.
    pub name: String,
    /// Base address.
    pub base: i64,
    /// Length (power of two).
    pub len: i64,
    /// Initial contents.
    pub init: Vec<i64>,
    /// Output window flag.
    pub output: bool,
}

/// A whole VIR program. Blocks are in final layout order; block 0 is entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirProgram {
    /// Blocks in layout order.
    pub blocks: Vec<Block>,
    /// Data regions.
    pub regions: Vec<VRegion>,
    /// Number of virtual registers.
    pub num_vregs: u32,
}

impl VirProgram {
    /// Initial memory from the regions.
    #[must_use]
    pub fn initial_memory(&self) -> BTreeMap<i64, i64> {
        let mut m = BTreeMap::new();
        for r in &self.regions {
            for i in 0..r.len {
                let v = r
                    .init
                    .get(usize::try_from(i).expect("fits"))
                    .copied()
                    .unwrap_or(0);
                m.insert(r.base + i, v);
            }
        }
        m
    }

    /// Total static instruction count (excluding terminators).
    #[must_use]
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// Result of interpreting a VIR program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirRun {
    /// Observable stores `(addr, value)` in order.
    pub trace: Vec<(i64, i64)>,
    /// Dynamic block-visit sequence with taken-exit flags.
    pub visits: Vec<BlockVisit>,
    /// Dynamic instruction count.
    pub dyn_instrs: u64,
    /// Whether the run halted (vs. exhausting the step budget).
    pub halted: bool,
}

/// Interpret a VIR program (the reference semantics).
#[must_use]
pub fn interpret(p: &VirProgram, max_instrs: u64) -> VirRun {
    let mut regs = vec![0i64; p.num_vregs as usize];
    let mut mem = p.initial_memory();
    let mut trace = Vec::new();
    let mut visits = Vec::new();
    let mut dyn_instrs = 0u64;
    let mut bid = 0usize;
    let mut halted = false;

    'outer: while dyn_instrs < max_instrs && (visits.len() as u64) < max_instrs {
        let block = &p.blocks[bid];
        for i in &block.instrs {
            dyn_instrs += 1;
            match *i {
                VInstr::Op { op, d, a, b } => {
                    let bv = match b {
                        VOperand::Reg(r) => regs[r.0 as usize],
                        VOperand::Imm(n) => n,
                    };
                    regs[d.0 as usize] = op.eval(regs[a.0 as usize], bv);
                }
                VInstr::Movi { d, imm } => regs[d.0 as usize] = imm,
                VInstr::Ld { d, addr } => {
                    let a = regs[addr.0 as usize];
                    regs[d.0 as usize] = mem.get(&a).copied().unwrap_or(0);
                }
                VInstr::St { addr, val } => {
                    let a = regs[addr.0 as usize];
                    let v = regs[val.0 as usize];
                    mem.insert(a, v);
                    trace.push((a, v));
                }
            }
            if dyn_instrs >= max_instrs {
                visits.push(BlockVisit {
                    block: bid,
                    taken_exit: false,
                });
                break 'outer;
            }
        }
        let (next, taken) = match block.term.unwrap_or(Terminator::Halt) {
            Terminator::Jmp(t) => (t, t != bid + 1),
            Terminator::Bz { z, target, fall } => {
                if regs[z.0 as usize] == 0 {
                    (target, target != bid + 1)
                } else {
                    (fall, false)
                }
            }
            Terminator::Halt => {
                visits.push(BlockVisit {
                    block: bid,
                    taken_exit: false,
                });
                halted = true;
                break;
            }
        };
        visits.push(BlockVisit {
            block: bid,
            taken_exit: taken,
        });
        bid = next;
    }

    VirRun {
        trace,
        visits,
        dyn_instrs,
        halted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// out[0] = 5: movi a=addr; movi v=5; st.
    #[test]
    fn interpret_store() {
        let b = Block {
            instrs: vec![
                VInstr::Movi {
                    d: VReg(0),
                    imm: 5000,
                },
                VInstr::Movi { d: VReg(1), imm: 5 },
                VInstr::St {
                    addr: VReg(0),
                    val: VReg(1),
                },
            ],
            term: Some(Terminator::Halt),
        };
        let p = VirProgram {
            blocks: vec![b],
            regions: vec![VRegion {
                name: "out".into(),
                base: 5000,
                len: 1,
                init: vec![],
                output: true,
            }],
            num_vregs: 2,
        };
        let r = interpret(&p, 1000);
        assert!(r.halted);
        assert_eq!(r.trace, vec![(5000, 5)]);
        assert_eq!(r.visits.len(), 1);
        assert_eq!(r.dyn_instrs, 3);
    }

    /// Count 3..0 with a bz loop; check visits and taken flags.
    #[test]
    fn interpret_loop() {
        // b0: i = 3            → jmp b1 (fallthrough)
        // b1: z = slt(0, i)  [1 while i > 0]... use i directly: bz i → b3
        // b2: i = i - 1        → jmp b1 (taken, backward)
        // b3: halt
        let b0 = Block {
            instrs: vec![VInstr::Movi { d: VReg(0), imm: 3 }],
            term: Some(Terminator::Jmp(1)),
        };
        let b1 = Block {
            instrs: vec![],
            term: Some(Terminator::Bz {
                z: VReg(0),
                target: 3,
                fall: 2,
            }),
        };
        let b2 = Block {
            instrs: vec![VInstr::Op {
                op: BinOp::Sub,
                d: VReg(0),
                a: VReg(0),
                b: VOperand::Imm(1),
            }],
            term: Some(Terminator::Jmp(1)),
        };
        let b3 = Block {
            instrs: vec![],
            term: Some(Terminator::Halt),
        };
        let p = VirProgram {
            blocks: vec![b0, b1, b2, b3],
            regions: vec![],
            num_vregs: 1,
        };
        let r = interpret(&p, 1000);
        assert!(r.halted);
        // b0, (b1, b2) ×3, b1(taken to b3), b3
        assert_eq!(r.visits.len(), 2 + 2 * 3 + 1);
        // back edges from b2 are taken
        assert!(r
            .visits
            .iter()
            .filter(|v| v.block == 2)
            .all(|v| v.taken_exit));
        // the final b1 exit (to b3) is taken
        let last_b1 = r
            .visits
            .iter()
            .rev()
            .find(|v| v.block == 1)
            .expect("b1 visited");
        assert!(last_b1.taken_exit);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let b0 = Block {
            instrs: vec![],
            term: Some(Terminator::Jmp(0)),
        };
        let p = VirProgram {
            blocks: vec![b0],
            regions: vec![],
            num_vregs: 0,
        };
        let r = interpret(&p, 10);
        assert!(!r.halted);
    }

    #[test]
    fn loads_default_to_zero_off_region() {
        let b = Block {
            instrs: vec![
                VInstr::Movi {
                    d: VReg(0),
                    imm: 12345,
                },
                VInstr::Ld {
                    d: VReg(1),
                    addr: VReg(0),
                },
            ],
            term: Some(Terminator::Halt),
        };
        let p = VirProgram {
            blocks: vec![b],
            regions: vec![],
            num_vregs: 2,
        };
        let r = interpret(&p, 100);
        assert!(r.halted);
    }
}
