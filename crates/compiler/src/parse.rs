//! Lexer and recursive-descent parser for Wile.

use std::fmt;

use crate::ast::{AstBinOp, Expr, FuncDecl, Item, Stmt, WileProgram};

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
}

#[derive(Debug)]
struct LTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<LTok>, ParseError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            let two = if i + 1 < bytes.len() {
                &raw[i..i + 2]
            } else {
                ""
            };
            match c {
                '/' if two == "//" => break,
                '#' => break,
                c if c.is_whitespace() => i += 1,
                _ if matches!(two, "==" | "!=" | "<=" | ">=" | "<<" | ">>" | "&&" | "||") => {
                    let p = match two {
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "<<" => "<<",
                        ">>" => ">>",
                        "&&" => "&&",
                        _ => "||",
                    };
                    out.push(LTok {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 2;
                }
                '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '=' | '+' | '-' | '*' | '&'
                | '|' | '^' | '<' | '>' | '!' => {
                    let p = match c {
                        '(' => "(",
                        ')' => ")",
                        '{' => "{",
                        '}' => "}",
                        '[' => "[",
                        ']' => "]",
                        ',' => ",",
                        ';' => ";",
                        '=' => "=",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '&' => "&",
                        '|' => "|",
                        '^' => "^",
                        '<' => "<",
                        '>' => ">",
                        _ => "!",
                    };
                    out.push(LTok {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 1;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: i64 = raw[start..i].parse().map_err(|_| ParseError {
                        line,
                        msg: "integer literal out of range".into(),
                    })?;
                    out.push(LTok {
                        tok: Tok::Int(n),
                        line,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(LTok {
                        tok: Tok::Ident(raw[start..i].to_owned()),
                        line,
                    });
                }
                c => {
                    return Err(ParseError {
                        line,
                        msg: format!("unexpected character '{c}'"),
                    })
                }
            }
        }
    }
    Ok(out)
}

/// Parse Wile source text.
pub fn parse(src: &str) -> Result<WileProgram, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(WileProgram { items })
}

struct Parser {
    toks: Vec<LTok>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w == s)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|t| t.tok.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, p: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(q) if q == p => Ok(()),
            t => Err(self.err(format!("expected '{p}', found {t:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(w) => Ok(w),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Int(n) => Ok(n),
            Tok::Punct("-") => match self.next()? {
                Tok::Int(n) => Ok(n.wrapping_neg()),
                t => Err(self.err(format!("expected integer, found {t:?}"))),
            },
            t => Err(self.err(format!("expected integer, found {t:?}"))),
        }
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.peek_ident("array") || self.peek_ident("output") {
            let output = self.peek_ident("output");
            self.next()?;
            // `output` arrays may omit the `array` keyword: `output out[16];`
            if output && self.peek_ident("array") {
                self.next()?;
            }
            let name = self.ident()?;
            self.expect("[")?;
            let len = self.int_lit()?;
            self.expect("]")?;
            let mut init = Vec::new();
            if self.peek_punct("=") {
                self.expect("=")?;
                self.expect("[")?;
                while !self.peek_punct("]") {
                    init.push(self.int_lit()?);
                    if self.peek_punct(",") {
                        self.expect(",")?;
                    }
                }
                self.expect("]")?;
            }
            self.expect(";")?;
            Ok(Item::Array {
                name,
                len,
                init,
                output,
            })
        } else if self.peek_ident("const") {
            self.next()?;
            let name = self.ident()?;
            self.expect("=")?;
            let v = self.int_lit()?;
            self.expect(";")?;
            Ok(Item::Const(name, v))
        } else if self.peek_ident("func") {
            self.next()?;
            let name = self.ident()?;
            self.expect("(")?;
            let mut params = Vec::new();
            while !self.peek_punct(")") {
                params.push(self.ident()?);
                if self.peek_punct(",") {
                    self.expect(",")?;
                }
            }
            self.expect(")")?;
            self.expect("{")?;
            let mut body = Vec::new();
            let mut ret = Expr::Int(0);
            while !self.peek_punct("}") {
                if self.peek_ident("return") {
                    self.next()?;
                    ret = self.expr()?;
                    self.expect(";")?;
                    break;
                }
                body.push(self.stmt()?);
            }
            self.expect("}")?;
            Ok(Item::Func(FuncDecl {
                name,
                params,
                body,
                ret,
            }))
        } else {
            Err(self.err("expected `array`, `output`, `const`, or `func`"))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect("{")?;
        let mut out = Vec::new();
        while !self.peek_punct("}") {
            out.push(self.stmt()?);
        }
        self.expect("}")?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.peek_ident("var") {
            self.next()?;
            let name = self.ident()?;
            self.expect("=")?;
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.peek_ident("if") {
            self.next()?;
            self.expect("(")?;
            let c = self.expr()?;
            self.expect(")")?;
            let then = self.block()?;
            let els = if self.peek_ident("else") {
                self.next()?;
                if self.peek_ident("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.peek_ident("while") {
            self.next()?;
            self.expect("(")?;
            let c = self.expr()?;
            self.expect(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body));
        }
        if self.peek_ident("for") {
            // `for (init; cond; step) { body }` desugars to
            // `init; while (cond) { body; step; }` — the init statement is
            // returned wrapped in an `if (1)` so one Stmt carries the pair.
            self.next()?;
            self.expect("(")?;
            let init = self.simple_stmt()?;
            let cond = self.expr()?;
            self.expect(";")?;
            let step = self.simple_stmt_no_semi()?;
            self.expect(")")?;
            let mut body = self.block()?;
            body.push(step);
            return Ok(Stmt::If(
                crate::ast::Expr::Int(1),
                vec![init, Stmt::While(cond, body)],
                Vec::new(),
            ));
        }
        self.simple_stmt_tail()
    }

    /// A `var`/assignment/store statement terminated by `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.peek_ident("var") {
            self.next()?;
            let name = self.ident()?;
            self.expect("=")?;
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Let(name, e));
        }
        self.simple_stmt_tail()
    }

    /// An assignment/store without a trailing `;` (the `for` step clause).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        if self.peek_punct("[") {
            self.expect("[")?;
            let idx = self.expr()?;
            self.expect("]")?;
            self.expect("=")?;
            let v = self.expr()?;
            Ok(Stmt::Store(name, idx, v))
        } else {
            self.expect("=")?;
            let e = self.expr()?;
            Ok(Stmt::Assign(name, e))
        }
    }

    /// Trailing part of an assignment/store statement (name consumed next).
    fn simple_stmt_tail(&mut self) -> Result<Stmt, ParseError> {
        // assignment or array store
        let name = self.ident()?;
        if self.peek_punct("[") {
            self.expect("[")?;
            let idx = self.expr()?;
            self.expect("]")?;
            self.expect("=")?;
            let v = self.expr()?;
            self.expect(";")?;
            Ok(Stmt::Store(name, idx, v))
        } else {
            self.expect("=")?;
            let e = self.expr()?;
            self.expect(";")?;
            Ok(Stmt::Assign(name, e))
        }
    }

    // Precedence climbing: || < && < cmp < |,^ < & < shifts < +- < * < unary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.land()?;
        while self.peek_punct("||") {
            self.next()?;
            let r = self.land()?;
            e = Expr::Bin(AstBinOp::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp()?;
        while self.peek_punct("&&") {
            self.next()?;
            let r = self.cmp()?;
            e = Expr::Bin(AstBinOp::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.bitor()?;
        let op = match self.peek() {
            Some(Tok::Punct("<")) => Some(AstBinOp::Lt),
            Some(Tok::Punct("<=")) => Some(AstBinOp::Le),
            Some(Tok::Punct(">")) => Some(AstBinOp::Gt),
            Some(Tok::Punct(">=")) => Some(AstBinOp::Ge),
            Some(Tok::Punct("==")) => Some(AstBinOp::Eq),
            Some(Tok::Punct("!=")) => Some(AstBinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.next()?;
            let r = self.bitor()?;
            Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
        } else {
            Ok(e)
        }
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitand()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("|")) => AstBinOp::Or,
                Some(Tok::Punct("^")) => AstBinOp::Xor,
                _ => return Ok(e),
            };
            self.next()?;
            let r = self.bitand()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        while self.peek_punct("&") {
            self.next()?;
            let r = self.shift()?;
            e = Expr::Bin(AstBinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.addsub()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("<<")) => AstBinOp::Shl,
                Some(Tok::Punct(">>")) => AstBinOp::Shr,
                _ => return Ok(e),
            };
            self.next()?;
            let r = self.addsub()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn addsub(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => AstBinOp::Add,
                Some(Tok::Punct("-")) => AstBinOp::Sub,
                _ => return Ok(e),
            };
            self.next()?;
            let r = self.mul()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        while self.peek_punct("*") {
            self.next()?;
            let r = self.unary()?;
            e = Expr::Bin(AstBinOp::Mul, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek_punct("-") {
            self.next()?;
            let e = self.unary()?;
            return Ok(match e {
                Expr::Int(n) => Expr::Int(n.wrapping_neg()),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.peek_punct("!") {
            self.next()?;
            let e = self.unary()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::Int(n) => Ok(Expr::Int(n)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek_punct("(") {
                    self.expect("(")?;
                    let mut args = Vec::new();
                    while !self.peek_punct(")") {
                        args.push(self.expr()?);
                        if self.peek_punct(",") {
                            self.expect(",")?;
                        }
                    }
                    self.expect(")")?;
                    Ok(Expr::Call(name, args))
                } else if self.peek_punct("[") {
                    self.expect("[")?;
                    let idx = self.expr()?;
                    self.expect("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            t => Err(self.err(format!("unexpected token {t:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arrays_consts_and_main() {
        let src = r#"
// a tiny program
const N = 8;
array tab[8] = [1, 2, 3];
output out[16];
func main() {
  var i = 0;
  while (i < N) {
    out[i] = tab[i] * 2;
    i = i + 1;
  }
}
"#;
        let p = parse(src).expect("parses");
        assert_eq!(p.items.len(), 4);
        assert!(p.func("main").is_some());
        match &p.items[1] {
            Item::Array {
                name,
                len,
                init,
                output,
            } => {
                assert_eq!(name, "tab");
                assert_eq!(*len, 8);
                assert_eq!(init, &[1, 2, 3]);
                assert!(!output);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.items[2] {
            Item::Array { output, .. } => assert!(output),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("func main() { var x = 1 + 2 * 3; }").expect("parses");
        let f = p.func("main").expect("main");
        match &f.body[0] {
            Stmt::Let(_, Expr::Bin(AstBinOp::Add, a, b)) => {
                assert_eq!(**a, Expr::Int(1));
                assert!(matches!(**b, Expr::Bin(AstBinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparisons_do_not_chain() {
        assert!(parse("func main() { var x = 1 < 2 < 3; }").is_err());
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
func main() {
  var x = 0;
  if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }
}
"#;
        let p = parse(src).expect("parses");
        let f = p.func("main").expect("main");
        match &f.body[1] {
            Stmt::If(_, _, els) => assert!(matches!(els[0], Stmt::If(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn functions_with_return() {
        let src = r#"
func sq(x) { return x * x; }
func main() { var y = sq(5); }
"#;
        let p = parse(src).expect("parses");
        let f = p.func("sq").expect("sq");
        assert_eq!(f.params, vec!["x"]);
        assert_eq!(
            f.ret,
            Expr::Bin(
                AstBinOp::Mul,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Var("x".into()))
            )
        );
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse("func main() { var x = -5; var y = -x; }").expect("parses");
        let f = p.func("main").expect("main");
        assert_eq!(f.body[0], Stmt::Let("x".into(), Expr::Int(-5)));
        assert!(matches!(f.body[1], Stmt::Let(_, Expr::Neg(_))));
    }

    #[test]
    fn errors_have_lines() {
        let err = parse("func main() {\n  var = 3;\n}").expect_err("bad");
        assert_eq!(err.line, 2);
    }
}

#[cfg(test)]
mod for_tests {
    use super::*;

    #[test]
    fn for_loops_desugar_to_while() {
        let p = parse(
            "output out[8]; func main() { for (var i = 0; i < 8; i = i + 1) { out[i] = i; } }",
        )
        .expect("parses");
        let f = p.func("main").expect("main");
        // wrapped: If(1, [Let, While], [])
        match &f.body[0] {
            Stmt::If(Expr::Int(1), inner, _) => {
                assert!(matches!(inner[0], Stmt::Let(..)));
                match &inner[1] {
                    Stmt::While(_, body) => {
                        // step appended to the body
                        assert!(matches!(body.last(), Some(Stmt::Assign(..))));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_with_existing_variable() {
        parse("output out[4]; func main() { var i = 0; for (i = 1; i < 4; i = i + 1) { out[i] = i; } }")
            .expect("parses");
    }
}
