//! Semantic analysis: constant resolution, array layout, and function
//! inlining.
//!
//! The output is a single flat `main` body over globals-free expressions —
//! calls are gone (inlined), consts are folded to literals, and every array
//! has a concrete base address in the data space.

use std::collections::HashMap;

use talft_isa::DATA_BASE;

use crate::ast::{Expr, Item, Stmt, WileProgram};

/// A laid-out global array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Base address in the data space.
    pub base: i64,
    /// Length (power of two).
    pub len: i64,
    /// Index mask (`len - 1`).
    pub mask: i64,
    /// Initial contents.
    pub init: Vec<i64>,
    /// Observable output window?
    pub output: bool,
}

/// The analyzed program: arrays plus a flat, call-free `main` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemProgram {
    /// Laid-out arrays.
    pub arrays: Vec<ArrayInfo>,
    /// Inlined body of `main`.
    pub body: Vec<Stmt>,
}

impl SemProgram {
    /// Look up an array by name.
    #[must_use]
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemError(pub String);

impl std::fmt::Display for SemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SemError {}

/// Analyze a parsed program.
pub fn analyze(prog: &WileProgram) -> Result<SemProgram, SemError> {
    // Consts.
    let mut consts: HashMap<String, i64> = HashMap::new();
    for item in &prog.items {
        if let Item::Const(n, v) = item {
            if consts.insert(n.clone(), *v).is_some() {
                return Err(SemError(format!("duplicate const {n}")));
            }
        }
    }

    // Arrays, laid out sequentially from DATA_BASE.
    let mut arrays = Vec::new();
    let mut next = DATA_BASE;
    for item in &prog.items {
        if let Item::Array {
            name,
            len,
            init,
            output,
        } = item
        {
            if arrays.iter().any(|a: &ArrayInfo| a.name == *name) {
                return Err(SemError(format!("duplicate array {name}")));
            }
            if *len <= 0 || (*len & (*len - 1)) != 0 {
                return Err(SemError(format!(
                    "array {name} length {len} must be a positive power of two \
                     (the masked-index discipline; see DESIGN.md)"
                )));
            }
            if init.len() as i64 > *len {
                return Err(SemError(format!("array {name} initializer too long")));
            }
            arrays.push(ArrayInfo {
                name: name.clone(),
                base: next,
                len: *len,
                mask: *len - 1,
                init: init.clone(),
                output: *output,
            });
            next += *len;
        }
    }

    // Inline main.
    let main = prog
        .func("main")
        .ok_or_else(|| SemError("no `func main()`".into()))?;
    if !main.params.is_empty() {
        return Err(SemError("main must take no parameters".into()));
    }
    let mut inliner = Inliner {
        prog,
        consts: &consts,
        counter: 0,
        stack: Vec::new(),
    };
    let mut body = Vec::new();
    let rename = HashMap::new();
    let _ = inliner.inline_stmts(&main.body, &rename, &mut body)?;
    Ok(SemProgram { arrays, body })
}

struct Inliner<'a> {
    prog: &'a WileProgram,
    consts: &'a HashMap<String, i64>,
    counter: u64,
    stack: Vec<String>,
}

impl Inliner<'_> {
    fn fresh(&mut self, hint: &str) -> String {
        self.counter += 1;
        format!("{hint}${}", self.counter)
    }

    /// Inline a statement list; returns the rename map as of the end of the
    /// list (used to resolve a function's return expression).
    fn inline_stmts(
        &mut self,
        stmts: &[Stmt],
        rename: &HashMap<String, String>,
        out: &mut Vec<Stmt>,
    ) -> Result<HashMap<String, String>, SemError> {
        let mut rename = rename.clone();
        for s in stmts {
            match s {
                Stmt::Let(name, e) => {
                    let e = self.inline_expr(e, &rename, out)?;
                    let fresh = if rename.is_empty() && self.stack.is_empty() {
                        name.clone()
                    } else {
                        self.fresh(name)
                    };
                    rename.insert(name.clone(), fresh.clone());
                    out.push(Stmt::Let(fresh, e));
                }
                Stmt::Assign(name, e) => {
                    let e = self.inline_expr(e, &rename, out)?;
                    let name = rename.get(name).cloned().unwrap_or_else(|| name.clone());
                    out.push(Stmt::Assign(name, e));
                }
                Stmt::Store(arr, idx, val) => {
                    let idx = self.inline_expr(idx, &rename, out)?;
                    let val = self.inline_expr(val, &rename, out)?;
                    out.push(Stmt::Store(arr.clone(), idx, val));
                }
                Stmt::If(c, then, els) => {
                    let c = self.inline_expr(c, &rename, out)?;
                    let mut t2 = Vec::new();
                    let _ = self.inline_stmts(then, &rename, &mut t2)?;
                    let mut e2 = Vec::new();
                    let _ = self.inline_stmts(els, &rename, &mut e2)?;
                    out.push(Stmt::If(c, t2, e2));
                }
                Stmt::While(c, body) => {
                    // Calls inside a loop condition would need re-evaluation
                    // per iteration; hoisting would change semantics.
                    if contains_call(c) {
                        return Err(SemError(
                            "function calls are not allowed in while conditions \
                             (assign to a variable inside the loop instead)"
                                .into(),
                        ));
                    }
                    let c = self.inline_expr(c, &rename, &mut Vec::new())?;
                    let mut b2 = Vec::new();
                    let _ = self.inline_stmts(body, &rename, &mut b2)?;
                    out.push(Stmt::While(c, b2));
                }
            }
        }
        Ok(rename)
    }

    fn inline_expr(
        &mut self,
        e: &Expr,
        rename: &HashMap<String, String>,
        out: &mut Vec<Stmt>,
    ) -> Result<Expr, SemError> {
        Ok(match e {
            Expr::Int(n) => Expr::Int(*n),
            Expr::Var(name) => {
                if let Some(v) = self.consts.get(name) {
                    Expr::Int(*v)
                } else {
                    Expr::Var(rename.get(name).cloned().unwrap_or_else(|| name.clone()))
                }
            }
            Expr::Index(arr, idx) => {
                let idx = self.inline_expr(idx, rename, out)?;
                Expr::Index(arr.clone(), Box::new(idx))
            }
            Expr::Neg(e) => Expr::Neg(Box::new(self.inline_expr(e, rename, out)?)),
            Expr::Not(e) => Expr::Not(Box::new(self.inline_expr(e, rename, out)?)),
            Expr::Bin(op, a, b) => {
                let a = self.inline_expr(a, rename, out)?;
                let b = self.inline_expr(b, rename, out)?;
                Expr::Bin(*op, Box::new(a), Box::new(b))
            }
            Expr::Call(fname, args) => {
                let f = self
                    .prog
                    .func(fname)
                    .ok_or_else(|| SemError(format!("unknown function {fname}")))?
                    .clone();
                if self.stack.contains(fname) {
                    return Err(SemError(format!(
                        "recursive call to {fname} (Wile functions are inlined and \
                         must not recurse)"
                    )));
                }
                if args.len() != f.params.len() {
                    return Err(SemError(format!(
                        "{fname} expects {} arguments, got {}",
                        f.params.len(),
                        args.len()
                    )));
                }
                // Bind arguments to fresh temps (argument expressions are
                // inlined in the *caller's* context, before entering the
                // callee — nested calls to the same function are fine).
                let mut callee_rename = HashMap::new();
                for (p, a) in f.params.iter().zip(args.iter()) {
                    let av = self.inline_expr(a, rename, out)?;
                    let t = self.fresh(p);
                    out.push(Stmt::Let(t.clone(), av));
                    callee_rename.insert(p.clone(), t);
                }
                self.stack.push(fname.clone());
                // Inline the body; the returned map resolves the return
                // expression against the body's (renamed) locals.
                let final_rename = self.inline_stmts(&f.body, &callee_rename, out)?;
                let ret = self.inline_expr(&f.ret, &final_rename, out)?;
                let rv = self.fresh("ret");
                out.push(Stmt::Let(rv.clone(), ret));
                self.stack.pop();
                Expr::Var(rv)
            }
        })
    }
}

fn contains_call(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Var(_) => false,
        Expr::Index(_, i) => contains_call(i),
        Expr::Neg(e) | Expr::Not(e) => contains_call(e),
        Expr::Bin(_, a, b) => contains_call(a) || contains_call(b),
        Expr::Call(..) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn analyze_src(src: &str) -> Result<SemProgram, SemError> {
        analyze(&parse(src).expect("parses"))
    }

    #[test]
    fn arrays_laid_out_sequentially() {
        let p = analyze_src("array a[8]; array b[16]; output out[4]; func main() { var x = 0; }")
            .expect("ok");
        assert_eq!(p.array("a").map(|a| a.base), Some(DATA_BASE));
        assert_eq!(p.array("b").map(|a| a.base), Some(DATA_BASE + 8));
        assert_eq!(p.array("out").map(|a| a.base), Some(DATA_BASE + 24));
        assert_eq!(p.array("b").map(|a| a.mask), Some(15));
        assert!(p.array("out").is_some_and(|a| a.output));
    }

    #[test]
    fn non_power_of_two_rejected() {
        let err = analyze_src("array a[7]; func main() { var x = 0; }").expect_err("bad");
        assert!(err.0.contains("power of two"));
    }

    #[test]
    fn consts_fold() {
        let p = analyze_src("const N = 3; func main() { var x = N + 1; }").expect("ok");
        assert_eq!(
            p.body[0],
            Stmt::Let(
                "x".into(),
                Expr::Bin(
                    crate::ast::AstBinOp::Add,
                    Box::new(Expr::Int(3)),
                    Box::new(Expr::Int(1))
                )
            )
        );
    }

    #[test]
    fn calls_inline_with_renaming() {
        let p =
            analyze_src("func sq(x) { var t = x * x; return t; } func main() { var y = sq(5); }")
                .expect("ok");
        // prelude: x$1 = 5; t$2 = x$1 * x$1; ret$3 = t$2; y = ret$3
        assert!(p.body.len() >= 4);
        let names: Vec<&str> = p
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Let(n, _) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.iter().any(|n| n.starts_with("x$")));
        assert!(names.iter().any(|n| n.starts_with("t$")));
        assert!(names.contains(&"y"));
    }

    #[test]
    fn nested_calls_inline() {
        let p = analyze_src(
            "func inc(x) { return x + 1; } func twice(x) { return inc(inc(x)); } \
             func main() { var y = twice(1); }",
        )
        .expect("ok");
        assert!(p.body.len() >= 4);
    }

    #[test]
    fn recursion_rejected() {
        let err = analyze_src("func f(x) { return f(x); } func main() { var y = f(1); }")
            .expect_err("recursive");
        assert!(err.0.contains("recursive"));
    }

    #[test]
    fn call_in_while_condition_rejected() {
        let err = analyze_src(
            "func f(x) { return x; } func main() { var i = 0; while (f(i)) { i = 0; } }",
        )
        .expect_err("call in cond");
        assert!(err.0.contains("while conditions"));
    }

    #[test]
    fn missing_main_rejected() {
        let err = analyze_src("func helper() { return 0; }").expect_err("no main");
        assert!(err.0.contains("main"));
    }
}
