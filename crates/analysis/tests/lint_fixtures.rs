//! Positive + negative `.talft` fixtures for every `TF0xx` lint code.

use talft_analysis::lint_program;
use talft_core::{Diagnostic, Severity};
use talft_isa::assemble;

/// The canonical clean program: duplicated store pair, halts.
const CLEAN: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

/// Clean cross-block jump: latch then commit to an annotated label.
const CLEAN_JUMP: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r5, G @fin
  mov r6, B @fin
  jmpG r5
  jmpB r6
fin:
  .pre { forall m:mem; mem: m; }
  halt
"#;

fn lints(src: &str) -> Vec<Diagnostic> {
    let asm = assemble(src).expect("fixture assembles");
    lint_program(&asm.program)
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

fn find<'d>(diags: &'d [Diagnostic], code: &str) -> &'d Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code} in {diags:?}"))
}

#[test]
fn clean_programs_are_lint_free() {
    assert!(lints(CLEAN).is_empty(), "{:?}", lints(CLEAN));
    assert!(lints(CLEAN_JUMP).is_empty(), "{:?}", lints(CLEAN_JUMP));
}

#[test]
fn tf001_flags_color_mixing() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  add r2, r1, B 2
  halt
"#;
    let diags = lints(src);
    let d = find(&diags, "TF001");
    assert_eq!(d.severity, Severity::Error);
    let span = d.span.as_ref().expect("span");
    assert_eq!(span.addr, 2);
    assert_eq!(span.block_pos().as_deref(), Some("main+1"));
    assert!(d.render().starts_with("error[TF001]"));
    assert!(d.render().contains("--> main+1"));
}

#[test]
fn tf001_quiet_on_matching_colors() {
    assert!(!has(&lints(CLEAN), "TF001"));
}

#[test]
fn tf002_flags_unpaired_store_commit() {
    let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, B 5
  mov r2, B 4096
  stB r2, r1
  halt
"#;
    let diags = lints(src);
    let d = find(&diags, "TF002");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("empty store queue"));
    assert_eq!(d.span.as_ref().map(|s| s.addr), Some(3));
}

#[test]
fn tf002_quiet_on_balanced_pairs() {
    assert!(!has(&lints(CLEAN), "TF002"));
}

#[test]
fn tf003_flags_commit_without_latch() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, B @fin
  jmpB r1
fin:
  .pre { forall m:mem; mem: m; }
  halt
"#;
    let diags = lints(src);
    let d = find(&diags, "TF003");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("d is provably 0"));
    assert_eq!(d.span.as_ref().map(|s| s.addr), Some(2));
}

#[test]
fn tf003_quiet_when_green_latches_first() {
    assert!(!has(&lints(CLEAN_JUMP), "TF003"));
}

#[test]
fn tf004_warns_on_dead_definition() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  halt
"#;
    let diags = lints(src);
    let d = find(&diags, "TF004");
    assert_eq!(d.severity, Severity::Warning, "dead defs never reject");
    assert!(d.message.contains("never read"));
}

#[test]
fn tf004_quiet_when_both_halves_consumed() {
    assert!(!has(&lints(CLEAN), "TF004"));
}

#[test]
fn tf005_flags_fall_off_code_end() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  mov r2, G 2
"#;
    let diags = lints(src);
    let d = find(&diags, "TF005");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("past the end"));
}

#[test]
fn tf005_flags_blue_transfer_to_unannotated_address() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 3
  mov r2, B 3
  jmpG r1
  jmpB r2
  halt
"#;
    let diags = lints(src);
    let d = diags
        .iter()
        .find(|d| d.code == "TF005" && d.message.contains("annotation"))
        .expect("unannotated-target lint");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn tf005_quiet_on_proper_layout() {
    assert!(!has(&lints(CLEAN), "TF005"));
    assert!(!has(&lints(CLEAN_JUMP), "TF005"));
}

#[test]
fn tf006_warns_on_unresolvable_target() {
    let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r2, B 4096
  ldB r1, r2
  jmpB r1
"#;
    let diags = lints(src);
    let d = find(&diags, "TF006");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("cannot statically resolve"));
}

#[test]
fn tf006_quiet_on_constant_targets() {
    assert!(!has(&lints(CLEAN_JUMP), "TF006"));
}

fn solver_lints(src: &str) -> Vec<Diagnostic> {
    let mut asm = assemble(src).expect("fixture assembles");
    talft_analysis::lint_program_solver(&asm.program, &mut asm.arena)
}

#[test]
fn tf007_warns_when_queue_address_is_unbounded() {
    // The annotation promises a pending store to `a`, but no fact places
    // `a` inside the region — the witness names the unbounded atom.
    let src = r#"
.data
region out at 4096 len 4 : int output
.code
main:
  .pre { forall a:int, m:mem; r7: (B, int, 9); r8: (B, int, a); queue: [(a, 9)]; mem: m; }
  stB r8, r7
  halt
"#;
    let diags = solver_lints(src);
    let d = find(&diags, "TF007");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("not provably inside"), "{}", d.message);
    let note = d
        .notes
        .iter()
        .find(|n| n.starts_with("for region `out`"))
        .expect("witness note");
    assert!(note.contains("cannot prove"), "{note}");
    assert!(note.contains("no fact bounds `a`"), "{note}");
}

#[test]
fn tf007_quiet_when_facts_bound_the_address() {
    let src = r#"
.data
region out at 4096 len 4 : int output
.code
main:
  .pre { forall a:int, m:mem; fact a >= 4096; fact a < 4100;
         r7: (B, int, 9); r8: (B, int, a); queue: [(a, 9)]; mem: m; }
  stB r8, r7
  halt
"#;
    assert!(!has(&solver_lints(src), "TF007"), "{:?}", solver_lints(src));
}

#[test]
fn tf007_quiet_on_clean_programs_and_preserves_other_lints() {
    for src in [CLEAN, CLEAN_JUMP] {
        let solver = solver_lints(src);
        assert!(!has(&solver, "TF007"));
        assert_eq!(solver, lints(src), "TF007 must not perturb TF001–TF006");
    }
}

#[test]
fn diagnostics_emit_stable_json() {
    let src = r#"
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 1
  add r2, r1, B 2
  halt
"#;
    let diags = lints(src);
    let j = find(&diags, "TF001").to_json();
    assert_eq!(j.get("code").and_then(|v| v.as_str()), Some("TF001"));
    assert_eq!(j.get("severity").and_then(|v| v.as_str()), Some("error"));
    assert_eq!(j.get("addr").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(j.get("label").and_then(|v| v.as_str()), Some("main"));
}
