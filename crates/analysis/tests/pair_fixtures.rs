//! Hand-written `.talft` fixtures pinning each pair-cooperation rule
//! against **exhaustive** k=2 grids: every unordered pair of strikes from
//! the k=1 universe is executed, and every dynamic SDC must land on a
//! pair the compositional analyzer calls `Vulnerable`.
//!
//! The fixtures use `.gprs 9` to shrink the strike universe — the pair
//! grid is quadratic in it.

use std::sync::Arc;

use talft_analysis::{
    cross_validate_pairs, map_strike, prioritize_pairs, Cell, PairAnalyzer, PairClass, PairRule,
};
use talft_faultsim::{
    exhaustive_pair_plans, golden_run, golden_trace, plan_fault_grid_against, run_plan_campaign,
    run_plan_campaign_guided, CampaignConfig, PlanGrid,
};
use talft_isa::{assemble, Program};
use talft_machine::FaultSite;

/// Protected store pair: distinct registers feed the green and blue
/// sides, so no single strike can defeat the `stB` compare — only a
/// cooperating pair can (opposite sides struck to the same wrong value,
/// or a strike on the queue slot the compare reads).
const PROTECTED: &str = r#"
.gprs 9
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

/// The same store pair spanning a block boundary: the queue carries the
/// pending `(4096, 5)` entry across the label, declared by the `queue:`
/// annotation (hand-written `.talft` may span; compiled code never does).
const SPANNING: &str = r#"
.gprs 9
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
span:
  .pre { forall m:mem; mem: m; queue: [(4096, 5)]; }
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

fn arc(src: &str) -> Arc<Program> {
    Arc::new(assemble(src).expect("assembles").program)
}

/// The dynamic-to-static cell mapping (the oracle's own).
fn map_cell(grid: &PlanGrid, k: &talft_faultsim::Strike) -> Option<Cell> {
    map_strike(&grid.trace, k)
}

/// Exhaustive pair grid at stride 1, one mutation per site.
fn grid_of(p: &Arc<Program>) -> PlanGrid {
    let cfg = CampaignConfig {
        stride: 1,
        mutations_per_site: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(p, &cfg).expect("golden halts");
    let plans = exhaustive_pair_plans(p, &cfg, &golden);
    assert!(!plans.is_empty());
    plan_fault_grid_against(p, &cfg, &golden, &plans)
}

#[test]
fn opposite_side_cooperation_is_predicted() {
    let p = arc(PROTECTED);
    let grid = grid_of(&p);
    // Theorem 4 stops at k=1: the exhaustive pair grid *does* defeat the
    // protected store (both compare sides struck to the same wrong value).
    assert!(grid.sdc().count() > 0, "cooperating pairs reach SDC");
    let mut pa = PairAnalyzer::new(&p);
    assert!(pa.bailed().is_none());
    let s = cross_validate_pairs(&mut pa, &grid);
    assert!(s.holds(), "statically-safe SDC pair: {:?}", s.mismatches);
    assert!(s.checked > 0, "full pairs were classified");
    assert_eq!(s.skipped_order, 0);
    assert!(s.predicted_sdc > 0, "observed SDCs were predicted");
    // The canonical opposite-sides witness: the green value register
    // before the push, the blue value register before the compare.
    let v = pa
        .classify_pair(Cell::Gpr { addr: 2, reg: 1 }, Cell::Gpr { addr: 5, reg: 3 })
        .expect("covered");
    assert_eq!(v.class, PairClass::Vulnerable);
    assert_eq!(v.rule, Some(PairRule::OppositeSides { at: 6 }));
}

#[test]
fn detector_strikes_in_the_grid_are_predicted() {
    let p = arc(PROTECTED);
    let grid = grid_of(&p);
    let mut pa = PairAnalyzer::new(&p);
    let s = cross_validate_pairs(&mut pa, &grid);
    assert!(s.holds(), "{:?}", s.mismatches);
    // At least one dynamic defeat strikes the detector's own state: a
    // queue-slot strike cooperating with a blue-side strike. Map it back
    // and check the analyzer explains it.
    let queue_sdc = grid.sdc().find(|o| {
        o.applied == 2
            && o.strikes
                .iter()
                .any(|k| matches!(k.site, FaultSite::QueueAddr(_) | FaultSite::QueueVal(_)))
    });
    let o = queue_sdc.expect("a queue-slot strike participates in some SDC");
    let cells: Vec<Cell> = o
        .strikes
        .iter()
        .map(|k| map_cell(&grid, k).expect("pre-halt strikes map"))
        .collect();
    let v = pa.classify_pair(cells[0], cells[1]).expect("covered");
    assert_eq!(v.class, PairClass::Vulnerable);
    assert!(v.rule.is_some(), "a cooperation rule names the defeat");
}

#[test]
fn queue_spanning_pairs_validate_across_the_label() {
    let p = arc(SPANNING);
    let grid = grid_of(&p);
    assert!(
        grid.sdc().count() > 0,
        "the spanning pair is defeatable too"
    );
    let mut pa = PairAnalyzer::new(&p);
    assert!(pa.bailed().is_none());
    let s = cross_validate_pairs(&mut pa, &grid);
    assert!(s.holds(), "{:?}", s.mismatches);
    assert_eq!(
        s.skipped_depth, 0,
        "the queue: annotation matches the dynamic depth at every step"
    );
    assert!(s.predicted_sdc > 0);
    // The annotated block entry carries a static queue cell; striking it
    // plus the blue value register is the cross-label detector defeat.
    let v = pa
        .classify_pair(
            Cell::Queue { addr: 4, slot: 0 },
            Cell::Gpr { addr: 5, reg: 3 },
        )
        .expect("annotated slot is classified");
    assert_eq!(v.class, PairClass::Vulnerable);
}

#[test]
fn static_guidance_is_verdict_neutral_end_to_end() {
    let p = arc(PROTECTED);
    let cfg = CampaignConfig {
        stride: 1,
        mutations_per_site: 1,
        threads: 3,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&p, &cfg).expect("golden halts");
    let plans = exhaustive_pair_plans(&p, &cfg, &golden);
    let trace = golden_trace(&p, &cfg, &golden);
    let mut pa = PairAnalyzer::new(&p);
    let hot = prioritize_pairs(&mut pa, &trace, &plans);
    assert!(hot.iter().any(|&h| h), "some pairs are defeat candidates");
    assert!(!hot.iter().all(|&h| h), "guidance rules most pairs out");
    let baseline = run_plan_campaign(&p, &cfg, &golden, &plans);
    let guided = run_plan_campaign_guided(&p, &cfg, &golden, &plans, &hot);
    assert_eq!(guided, baseline, "static guidance must not change verdicts");
    assert!(baseline.sdc > 0, "the grid does contain defeats to find");
}

#[test]
fn post_compare_strikes_stay_safe_statically_and_dynamically() {
    let p = arc(PROTECTED);
    let grid = grid_of(&p);
    let mut pa = PairAnalyzer::new(&p);
    // Sequencing (rule c): r1 is consumed by the push and compare-checked;
    // a second strike on r1 *after* the stB cannot resurrect the first.
    let first = Cell::Gpr { addr: 2, reg: 1 };
    let late = Cell::Gpr { addr: 7, reg: 1 };
    let v = pa.classify_pair(first, late).expect("covered");
    assert_ne!(v.class, PairClass::Vulnerable);
    // The dynamic side agrees: no SDC outcome maps to that unordered pair.
    let s = cross_validate_pairs(&mut pa, &grid);
    assert!(s.holds(), "{:?}", s.mismatches);
    for o in grid.sdc() {
        let mut mapped: Vec<Option<Cell>> = o.strikes.iter().map(|k| map_cell(&grid, k)).collect();
        mapped.sort();
        assert_ne!(
            mapped,
            vec![Some(first), Some(late)],
            "a statically-sequenced-safe pair scored SDC"
        );
    }
}
