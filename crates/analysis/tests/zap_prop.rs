//! Property test: for fuzzed Wile programs, no statically-`Detected` or
//! `Benign` (instruction, site) cell is ever scored SDC by the k=1
//! campaign grid — on the protected *and* the unprotected output (the
//! claim is about analysis soundness, not about protection). Failures are
//! shrunk to a minimal Wile program before reporting.

use std::sync::Arc;

use talft_analysis::{analyze_zaps, cross_validate};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{single_fault_grid, CampaignConfig};
use talft_isa::Program;
use talft_testutil::wile::{random_stmts, render_program, shrink_candidates, StmtR};
use talft_testutil::{shrink::minimize, SplitMix64};

fn grid_cfg() -> CampaignConfig {
    CampaignConfig {
        stride: 13,
        mutations_per_site: 1,
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// `Ok(())` when the differential holds for this program, else a report.
fn check_program(program: &Arc<Program>) -> Result<(), String> {
    let report = analyze_zaps(program);
    if report.bailed.is_some() {
        // The analyzer refused to classify: nothing is claimed.
        return Ok(());
    }
    let Ok(grid) = single_fault_grid(program, &grid_cfg()) else {
        // Golden run did not converge; no grid to compare.
        return Ok(());
    };
    let s = cross_validate(&report, &grid);
    if s.holds() {
        Ok(())
    } else {
        Err(format!("{:?}", s.mismatches))
    }
}

/// The property over one fuzzed statement list.
fn holds(stmts: &[StmtR]) -> Result<(), String> {
    let src = render_program(stmts);
    let Ok(c) = compile(&src, &CompileOptions::default()) else {
        return Ok(()); // fuzzer occasionally emits uncompilable shapes
    };
    check_program(&Arc::new(c.protected.program.as_ref().clone()))
        .map_err(|e| format!("protected: {e}"))?;
    check_program(&Arc::new(c.baseline.program.as_ref().clone()))
        .map_err(|e| format!("baseline: {e}"))
}

#[test]
fn fuzzed_programs_admit_no_sdc_on_safe_cells() {
    let mut rng = SplitMix64::new(0xE17_5EED);
    for round in 0..4 {
        let stmts = random_stmts(&mut rng, 2, 1, 5);
        if let Err(first) = holds(&stmts) {
            let min = minimize(stmts, |s| shrink_candidates(s), |s| holds(s).is_err(), 64);
            let err = holds(&min).err().unwrap_or(first);
            panic!(
                "round {round}: static safety claim contradicted by campaign\n\
                 {err}\nminimal wile program:\n{}",
                render_program(&min)
            );
        }
    }
}
