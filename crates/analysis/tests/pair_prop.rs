//! Property test: for fuzzed Wile programs, no sampled k=2 plan scored
//! SDC by the campaign lands on a cell pair the compositional analyzer
//! calls safe — on the protected *and* the unprotected output (the claim
//! is about pair-analysis soundness, not about protection; protected
//! programs *do* lose at k=2, and every such loss must be predicted).
//! Failures are shrunk to a minimal Wile program before reporting.

use std::sync::Arc;

use talft_analysis::{cross_validate_pairs, PairAnalyzer};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{golden_run, multi_fault_plans, plan_fault_grid_against, CampaignConfig};
use talft_isa::Program;
use talft_testutil::wile::{random_stmts, render_program, shrink_candidates, StmtR};
use talft_testutil::{shrink::minimize, SplitMix64};

fn grid_cfg() -> CampaignConfig {
    CampaignConfig {
        stride: 13,
        mutations_per_site: 1,
        pair_samples: 96,
        threads: 1,
        ..CampaignConfig::default()
    }
}

/// `Ok(())` when the pair differential holds for this program.
fn check_program(program: &Arc<Program>) -> Result<(), String> {
    let mut pa = PairAnalyzer::new(program);
    if pa.bailed().is_some() {
        // The analyzer refused to classify: nothing is claimed.
        return Ok(());
    }
    let cfg = grid_cfg();
    let Ok(golden) = golden_run(program, &cfg) else {
        // Golden run did not converge; no grid to compare.
        return Ok(());
    };
    let plans = multi_fault_plans(program, &cfg, &golden, 2);
    let grid = plan_fault_grid_against(program, &cfg, &golden, &plans);
    let s = cross_validate_pairs(&mut pa, &grid);
    if s.holds() {
        Ok(())
    } else {
        Err(format!("{:?}", s.mismatches))
    }
}

/// The property over one fuzzed statement list.
fn holds(stmts: &[StmtR]) -> Result<(), String> {
    let src = render_program(stmts);
    let Ok(c) = compile(&src, &CompileOptions::default()) else {
        return Ok(()); // fuzzer occasionally emits uncompilable shapes
    };
    check_program(&Arc::new(c.protected.program.as_ref().clone()))
        .map_err(|e| format!("protected: {e}"))?;
    check_program(&Arc::new(c.baseline.program.as_ref().clone()))
        .map_err(|e| format!("baseline: {e}"))
}

#[test]
fn fuzzed_programs_admit_no_sdc_on_safe_pairs() {
    let mut rng = SplitMix64::new(0xE22_5EED);
    for round in 0..3 {
        let stmts = random_stmts(&mut rng, 2, 1, 5);
        if let Err(first) = holds(&stmts) {
            let min = minimize(stmts, |s| shrink_candidates(s), |s| holds(s).is_err(), 64);
            let err = holds(&min).err().unwrap_or(first);
            panic!(
                "round {round}: static pair-safety claim contradicted by campaign\n\
                 {err}\nminimal wile program:\n{}",
                render_program(&min)
            );
        }
    }
}
