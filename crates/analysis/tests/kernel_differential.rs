//! Suite-kernel differential: the static zap classifier cross-validated
//! against exhaustive-grid k=1 campaigns, and lint quietness on compiled
//! (checker-accepted) protected output.

use std::sync::Arc;

use talft_analysis::{
    analyze_zaps, cross_validate, cross_validate_pairs, error_count, lint_program, PairAnalyzer,
};
use talft_compiler::{compile, CompileOptions};
use talft_faultsim::{
    golden_run, multi_fault_plans, plan_fault_grid_against, single_fault_grid, CampaignConfig,
    Verdict,
};
use talft_suite::{kernels, Scale};

fn grid_cfg(stride: u64) -> CampaignConfig {
    CampaignConfig {
        stride,
        mutations_per_site: 1,
        ..CampaignConfig::default()
    }
}

#[test]
fn protected_kernels_are_lint_clean() {
    for k in kernels(Scale::Tiny) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let diags = lint_program(&c.protected.program);
        let errs: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == talft_core::Severity::Error)
            .collect();
        assert!(
            errs.is_empty(),
            "{}: checker-accepted output must be lint-clean, got {errs:?}",
            k.name
        );
    }
}

#[test]
fn static_verdicts_hold_against_sampled_grids() {
    // A strided grid over a few kernels; the exhaustive sweep is the
    // `lint` bench bin.
    for k in kernels(Scale::Tiny).into_iter().take(3) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        let program = Arc::new(c.protected.program.as_ref().clone());
        let report = analyze_zaps(&program);
        assert!(report.bailed.is_none(), "{}: {:?}", k.name, report.bailed);
        let grid = single_fault_grid(&program, &grid_cfg(41)).expect("golden halts");
        assert_eq!(
            grid.count(Verdict::Sdc),
            0,
            "{}: protected kernels admit no SDC",
            k.name
        );
        let s = cross_validate(&report, &grid);
        assert!(s.holds(), "{}: {:?}", k.name, s.mismatches);
        assert!(s.checked > 0, "{}: nothing compared", k.name);
        assert_eq!(
            s.unmapped, 0,
            "{}: executed cells must be classified",
            k.name
        );
    }
}

#[test]
fn baseline_sdc_lands_on_vulnerable_cells() {
    // The unprotected baseline *does* show SDC; every one must land on a
    // cell the static analysis flagged vulnerable (soundness both ways).
    let k = &kernels(Scale::Tiny)[0];
    let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
    let program = Arc::new(c.baseline.program.as_ref().clone());
    let report = analyze_zaps(&program);
    let (_, _, vulnerable) = report.tally();
    assert!(
        vulnerable > 0,
        "{}: an unduplicated program has vulnerable cells",
        k.name
    );
    let grid = single_fault_grid(&program, &grid_cfg(17)).expect("golden halts");
    let s = cross_validate(&report, &grid);
    assert!(s.holds(), "{}: {:?}", k.name, s.mismatches);
    if grid.count(Verdict::Sdc) > 0 {
        assert!(s.predicted_sdc > 0, "{}: SDCs were predicted", k.name);
    }
}

#[test]
fn pair_verdicts_hold_against_sampled_k2_grids() {
    // The stratified k=2 sample over a few kernels, protected and
    // baseline; the exhaustive pair sweep is the `pairs` bench bin.
    // Protected kernels are fair game for SDC here — Theorem 4 stops at
    // k=1 — but every loss must land on a statically-Vulnerable pair.
    let cfg = CampaignConfig {
        stride: 17,
        mutations_per_site: 1,
        pair_samples: 64,
        threads: 1,
        ..CampaignConfig::default()
    };
    for k in kernels(Scale::Tiny).into_iter().take(2) {
        let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
        for program in [&c.protected.program, &c.baseline.program] {
            let program = Arc::new(program.as_ref().clone());
            let mut pa = PairAnalyzer::new(&program);
            assert!(pa.bailed().is_none(), "{}: {:?}", k.name, pa.bailed());
            let golden = golden_run(&program, &cfg).expect("golden halts");
            let plans = multi_fault_plans(&program, &cfg, &golden, 2);
            let grid = plan_fault_grid_against(&program, &cfg, &golden, &plans);
            let s = cross_validate_pairs(&mut pa, &grid);
            assert!(s.holds(), "{}: {:?}", k.name, s.mismatches);
            assert!(s.checked > 0, "{}: nothing compared", k.name);
        }
    }
}

#[test]
fn error_count_counts_only_errors() {
    let k = &kernels(Scale::Tiny)[0];
    let c = compile(&k.source, &CompileOptions::default()).expect("compiles");
    let diags = lint_program(&c.protected.program);
    assert_eq!(
        error_count(&diags),
        diags
            .iter()
            .filter(|d| d.severity == talft_core::Severity::Error)
            .count()
    );
}
