//! Cross-validation of the static zap classifier against the dynamic
//! injection grids — the machine-checked static analogue of Theorem 4,
//! and, for fault *pairs*, of the k=2 boundary the theorem does not cover.
//!
//! Every dynamic strike `(at_step, site)` maps to a static cell via the
//! golden pc trace (`pc_by_step[at_step]` is the address of the in-flight
//! instruction). The mapping is valid for the *second* strike of a pair
//! too: a single one-sided fault cannot silently divert control (the pc
//! fetch compare and the `d`-guarded transfers fault first), so the faulty
//! run's executed-pc trace equals the golden trace until either detection
//! or the second strike — and the queue performs the same pushes and pops,
//! so slot indices translate the same way. A run detected *before* its
//! second strike never receives it (`applied < 2`) and degenerates to a
//! k=1 obligation on the strikes that did land.
//!
//! If a campaign scores a plan **SDC** while the static analysis
//! classified its cell (or cell pair) `Detected` or `Benign` — or failed
//! to map it at all — the analysis is unsound: a hard failure surfaced as
//! a [`Mismatch`] / [`PairMismatch`].

use talft_faultsim::{FaultGrid, FaultPlan, GoldenTrace, GridOutcome, PlanGrid, Strike, Verdict};
use talft_isa::Reg;
use talft_machine::FaultSite;

use crate::pair::{Cell, PairAnalyzer, PairClass};
use crate::zap::{ZapClass, ZapReport};

/// A dynamic SDC the static analysis claimed was safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// Golden step of the injection.
    pub at_step: u64,
    /// Static code address the step maps to.
    pub addr: i64,
    /// The zapped site.
    pub site: FaultSite,
    /// The corrupt value written.
    pub value: i64,
    /// The (wrong) static claim; `None` if the cell was never classified.
    pub class: Option<ZapClass>,
}

/// Outcome of cross-validating one program's grid against its report.
#[derive(Debug, Clone, Default)]
pub struct DiffSummary {
    /// Plans examined (including skipped ones).
    pub plans: usize,
    /// Plans whose cell was classified and compared.
    pub checked: usize,
    /// Plans skipped: strike at the final (halted) state — nothing
    /// executes after it, so no static cell corresponds.
    pub skipped_final: usize,
    /// Plans whose queue-slot index did not map to a static slot
    /// (dynamic depth disagreed with the static depth at that address).
    pub skipped_depth: usize,
    /// Plans whose address had no static classification at all.
    pub unmapped: usize,
    /// Dynamic SDCs on statically-safe cells: soundness violations.
    pub mismatches: Vec<Mismatch>,
    /// Dynamic SDCs on cells the analysis *did* flag vulnerable.
    pub predicted_sdc: usize,
}

impl DiffSummary {
    /// True when no dynamic SDC contradicts a static safety claim.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Look up the static class for one dynamic outcome.
fn classify(report: &ZapReport, addr: i64, o: &GridOutcome, queue_len: usize) -> Option<ZapClass> {
    match o.site {
        FaultSite::Reg(Reg::Gpr(g)) => report.gpr.get(&(addr, g.0)).copied(),
        FaultSite::Reg(Reg::Dst) => report.dst.get(&addr).copied(),
        FaultSite::Reg(Reg::Pc(_)) => report.pc.get(&addr).copied(),
        // Dynamic queue sites index from the front (newest); static slots
        // from the back (oldest), so site i maps to slot len - 1 - i.
        FaultSite::QueueAddr(i) | FaultSite::QueueVal(i) => {
            let slot = queue_len.checked_sub(1 + i)?;
            report.queue.get(&(addr, slot)).copied()
        }
    }
}

/// Compare every grid outcome against the static report.
#[must_use]
pub fn cross_validate(report: &ZapReport, grid: &FaultGrid) -> DiffSummary {
    let mut s = DiffSummary {
        plans: grid.outcomes.len(),
        ..DiffSummary::default()
    };
    for o in &grid.outcomes {
        if o.at_step >= grid.golden_steps {
            // The machine has already halted; the strike has no cell.
            s.skipped_final += 1;
            continue;
        }
        let addr = grid.pc_by_step[o.at_step as usize];
        let queue_len = grid.queue_len_by_step[o.at_step as usize];
        let class = classify(report, addr, o, queue_len);
        match class {
            Some(c) => {
                s.checked += 1;
                match (c, o.verdict) {
                    (ZapClass::Vulnerable, Verdict::Sdc) => s.predicted_sdc += 1,
                    (ZapClass::Detected | ZapClass::Benign, Verdict::Sdc) => {
                        s.mismatches.push(Mismatch {
                            at_step: o.at_step,
                            addr,
                            site: o.site,
                            value: o.value,
                            class: Some(c),
                        });
                    }
                    _ => {}
                }
            }
            None => {
                let is_queue = matches!(o.site, FaultSite::QueueAddr(_) | FaultSite::QueueVal(_));
                if is_queue {
                    s.skipped_depth += 1;
                } else {
                    s.unmapped += 1;
                }
                // An SDC the analysis never even saw is still a soundness
                // failure: the cell map must cover every executed state.
                if o.verdict == Verdict::Sdc {
                    s.mismatches.push(Mismatch {
                        at_step: o.at_step,
                        addr,
                        site: o.site,
                        value: o.value,
                        class: None,
                    });
                }
            }
        }
    }
    s
}

/// A dynamic pair SDC the static pair analysis claimed was safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMismatch {
    /// The plan's strikes, step-sorted.
    pub strikes: Vec<Strike>,
    /// Static cell each strike mapped to (`None` = final-state or
    /// depth-unmappable strike).
    pub cells: Vec<Option<Cell>>,
    /// The (wrong) static claim; `None` if the pair was never classified.
    pub class: Option<PairClass>,
}

/// Outcome of cross-validating one program's k=2 grid against the
/// compositional pair analyzer.
#[derive(Debug, Clone, Default)]
pub struct PairDiffSummary {
    /// Plans examined (including skipped ones).
    pub plans: usize,
    /// Plans with two effective, mappable strikes, classified as a pair.
    pub checked: usize,
    /// Plans that degenerated to a k=1 obligation: a strike landed on the
    /// final (halted) state, failed to inject (its site had vanished), or
    /// the run was detected before the second strike's step.
    pub degenerate: usize,
    /// Degenerate cause tally: a strike at/after the golden halt.
    pub skipped_final: usize,
    /// Degenerate cause tally: a queue strike whose dynamic slot had no
    /// static counterpart (depth disagreement).
    pub skipped_depth: usize,
    /// Plans that were not two-strike plans at all (not validated here).
    pub skipped_order: usize,
    /// Dynamic SDCs on statically-safe pairs: soundness violations.
    pub mismatches: Vec<PairMismatch>,
    /// Dynamic SDCs the pair analysis *did* flag vulnerable.
    pub predicted_sdc: usize,
}

impl PairDiffSummary {
    /// True when no dynamic SDC contradicts a static safety claim.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Map one strike to its static cell via the golden observables.
///
/// `None` means the strike has no cell: it lands at/after the golden halt
/// (nothing executes after it — and a detected-or-masked run of a k≤2 plan
/// is control-equal to golden, so it halts at the same step and the strike
/// is inert for the output trace), or its queue slot underflows the static
/// depth at that address.
#[must_use]
pub fn map_strike(trace: &GoldenTrace, s: &Strike) -> Option<Cell> {
    if s.at_step >= trace.golden_steps {
        return None;
    }
    let addr = trace.pc_by_step[s.at_step as usize];
    match s.site {
        FaultSite::Reg(Reg::Gpr(g)) => Some(Cell::Gpr { addr, reg: g.0 }),
        FaultSite::Reg(Reg::Dst) => Some(Cell::D { addr }),
        FaultSite::Reg(Reg::Pc(_)) => Some(Cell::Pc { addr }),
        FaultSite::QueueAddr(i) | FaultSite::QueueVal(i) => {
            let slot = trace.queue_len_by_step[s.at_step as usize].checked_sub(1 + i)?;
            Some(Cell::Queue { addr, slot })
        }
    }
}

/// Hotness mask for static-guided k=2 prioritization: a plan is *hot*
/// when the analyzer cannot rule it out — its mapped cell pair is
/// `Vulnerable`, or a strike escapes the cell map entirely. Feeding this
/// to [`run_plan_campaign_guided`](talft_faultsim::run_plan_campaign_guided)
/// runs the defeat candidates first; the guided engine is verdict-neutral,
/// so the report stays bit-identical either way.
#[must_use]
pub fn prioritize_pairs(
    analyzer: &mut PairAnalyzer<'_>,
    trace: &GoldenTrace,
    plans: &[FaultPlan],
) -> Vec<bool> {
    plans
        .iter()
        .map(|p| {
            if p.order() != 2 {
                return true;
            }
            let a = map_strike(trace, &p.strikes[0]);
            let b = map_strike(trace, &p.strikes[1]);
            match (a, b) {
                (Some(a), Some(b)) => match analyzer.classify_pair(a, b) {
                    Some(v) => v.class == ZapClass::Vulnerable,
                    None => true,
                },
                // A final-state strike degenerates to k=1: hot only if the
                // surviving member is k=1-vulnerable.
                (Some(c), None) | (None, Some(c)) => {
                    analyzer.k1_class(c) != Some(ZapClass::Detected)
                        && analyzer.k1_class(c) != Some(ZapClass::Benign)
                }
                (None, None) => false,
            }
        })
        .collect()
}

/// Compare every k=2 grid outcome against the compositional pair analyzer.
///
/// Obligations, per plan:
///
/// - **Two effective strikes** (`applied == 2`, both before the golden
///   halt): an SDC must land on a pair [`classify_pair`] calls
///   `Vulnerable`. A safe claim — or a pair the analyzer failed to map —
///   is a [`PairMismatch`].
/// - **Degenerate plans** (`applied < 2`, or a strike with no cell): at
///   most one strike influenced the trace, so an SDC must land on a cell
///   the k=1 report calls `Vulnerable`. Since the grid does not record
///   *which* strike failed to inject, any mapped `Vulnerable` member
///   discharges the obligation; none at all is a mismatch.
///
/// [`classify_pair`]: PairAnalyzer::classify_pair
#[must_use]
pub fn cross_validate_pairs(analyzer: &mut PairAnalyzer<'_>, grid: &PlanGrid) -> PairDiffSummary {
    let mut s = PairDiffSummary {
        plans: grid.outcomes.len(),
        ..PairDiffSummary::default()
    };
    for o in &grid.outcomes {
        if o.strikes.len() != 2 {
            s.skipped_order += 1;
            continue;
        }
        let cells: Vec<Option<Cell>> = o
            .strikes
            .iter()
            .map(|k| map_strike(&grid.trace, k))
            .collect();
        let sdc = o.verdict == Verdict::Sdc;
        let full = o.applied == 2 && cells.iter().all(Option::is_some);
        if full {
            let (a, b) = (cells[0].expect("mapped"), cells[1].expect("mapped"));
            match analyzer.classify_pair(a, b) {
                Some(v) => {
                    s.checked += 1;
                    if sdc {
                        if v.class == ZapClass::Vulnerable {
                            s.predicted_sdc += 1;
                        } else {
                            s.mismatches.push(PairMismatch {
                                strikes: o.strikes.clone(),
                                cells,
                                class: Some(v.class),
                            });
                        }
                    }
                }
                // An SDC on a pair the analyzer never even saw is still a
                // soundness failure: the cell map must cover every
                // executed state.
                None if sdc => s.mismatches.push(PairMismatch {
                    strikes: o.strikes.clone(),
                    cells,
                    class: None,
                }),
                None => s.degenerate += 1,
            }
            continue;
        }
        s.degenerate += 1;
        if o.strikes
            .iter()
            .any(|k| k.at_step >= grid.trace.golden_steps)
        {
            s.skipped_final += 1;
        }
        if o.strikes
            .iter()
            .zip(&cells)
            .any(|(k, c)| c.is_none() && k.at_step < grid.trace.golden_steps)
        {
            s.skipped_depth += 1;
        }
        if sdc {
            let predicted = cells
                .iter()
                .flatten()
                .any(|&c| analyzer.k1_class(c) == Some(ZapClass::Vulnerable));
            if predicted {
                s.predicted_sdc += 1;
            } else {
                s.mismatches.push(PairMismatch {
                    strikes: o.strikes.clone(),
                    cells,
                    class: None,
                });
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zap::analyze_zaps;
    use std::sync::Arc;
    use talft_faultsim::{single_fault_grid, CampaignConfig};
    use talft_isa::assemble;

    #[test]
    fn protected_store_grid_validates_exhaustively() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let program = Arc::new(asm.program);
        let report = analyze_zaps(&program);
        let cfg = CampaignConfig {
            stride: 1,
            mutations_per_site: 2,
            ..CampaignConfig::default()
        };
        let grid = single_fault_grid(&program, &cfg).expect("golden halts");
        assert_eq!(grid.count(Verdict::Sdc), 0, "Theorem 4 on the dynamic side");
        let s = cross_validate(&report, &grid);
        assert!(s.holds());
        assert!(s.checked > 0);
        assert_eq!(s.unmapped, 0, "every executed cell is classified");
        assert_eq!(s.skipped_depth, 0, "static depths match the golden run");
    }

    #[test]
    fn unprotected_store_sdc_lands_on_vulnerable_cells() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let program = Arc::new(asm.program);
        let report = analyze_zaps(&program);
        let cfg = CampaignConfig {
            stride: 1,
            mutations_per_site: 3,
            ..CampaignConfig::default()
        };
        let grid = single_fault_grid(&program, &cfg).expect("golden halts");
        let s = cross_validate(&report, &grid);
        assert!(
            s.holds(),
            "even on broken code, every SDC must land on a vulnerable cell: {:?}",
            s.mismatches
        );
        assert!(
            grid.count(Verdict::Sdc) == 0 || s.predicted_sdc > 0,
            "observed SDCs were predicted"
        );
    }
}
