//! Cross-validation of the static zap classifier against the dynamic k=1
//! injection grid — the machine-checked static analogue of Theorem 4.
//!
//! Every dynamic plan `(at_step, site)` maps to a static cell via the
//! golden pc trace (`pc_by_step[at_step]` is the address of the in-flight
//! instruction). If the campaign scores a plan **SDC** while the static
//! analysis classified its cell `Detected` or `Benign` (or failed to map
//! it at all), the analysis is unsound — a hard failure surfaced as a
//! [`Mismatch`].

use talft_faultsim::{FaultGrid, GridOutcome, Verdict};
use talft_isa::Reg;
use talft_machine::FaultSite;

use crate::zap::{ZapClass, ZapReport};

/// A dynamic SDC the static analysis claimed was safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// Golden step of the injection.
    pub at_step: u64,
    /// Static code address the step maps to.
    pub addr: i64,
    /// The zapped site.
    pub site: FaultSite,
    /// The corrupt value written.
    pub value: i64,
    /// The (wrong) static claim; `None` if the cell was never classified.
    pub class: Option<ZapClass>,
}

/// Outcome of cross-validating one program's grid against its report.
#[derive(Debug, Clone, Default)]
pub struct DiffSummary {
    /// Plans examined (including skipped ones).
    pub plans: usize,
    /// Plans whose cell was classified and compared.
    pub checked: usize,
    /// Plans skipped: strike at the final (halted) state — nothing
    /// executes after it, so no static cell corresponds.
    pub skipped_final: usize,
    /// Plans whose queue-slot index did not map to a static slot
    /// (dynamic depth disagreed with the static depth at that address).
    pub skipped_depth: usize,
    /// Plans whose address had no static classification at all.
    pub unmapped: usize,
    /// Dynamic SDCs on statically-safe cells: soundness violations.
    pub mismatches: Vec<Mismatch>,
    /// Dynamic SDCs on cells the analysis *did* flag vulnerable.
    pub predicted_sdc: usize,
}

impl DiffSummary {
    /// True when no dynamic SDC contradicts a static safety claim.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Look up the static class for one dynamic outcome.
fn classify(report: &ZapReport, addr: i64, o: &GridOutcome, queue_len: usize) -> Option<ZapClass> {
    match o.site {
        FaultSite::Reg(Reg::Gpr(g)) => report.gpr.get(&(addr, g.0)).copied(),
        FaultSite::Reg(Reg::Dst) => report.dst.get(&addr).copied(),
        FaultSite::Reg(Reg::Pc(_)) => report.pc.get(&addr).copied(),
        // Dynamic queue sites index from the front (newest); static slots
        // from the back (oldest), so site i maps to slot len - 1 - i.
        FaultSite::QueueAddr(i) | FaultSite::QueueVal(i) => {
            let slot = queue_len.checked_sub(1 + i)?;
            report.queue.get(&(addr, slot)).copied()
        }
    }
}

/// Compare every grid outcome against the static report.
#[must_use]
pub fn cross_validate(report: &ZapReport, grid: &FaultGrid) -> DiffSummary {
    let mut s = DiffSummary {
        plans: grid.outcomes.len(),
        ..DiffSummary::default()
    };
    for o in &grid.outcomes {
        if o.at_step >= grid.golden_steps {
            // The machine has already halted; the strike has no cell.
            s.skipped_final += 1;
            continue;
        }
        let addr = grid.pc_by_step[o.at_step as usize];
        let queue_len = grid.queue_len_by_step[o.at_step as usize];
        let class = classify(report, addr, o, queue_len);
        match class {
            Some(c) => {
                s.checked += 1;
                match (c, o.verdict) {
                    (ZapClass::Vulnerable, Verdict::Sdc) => s.predicted_sdc += 1,
                    (ZapClass::Detected | ZapClass::Benign, Verdict::Sdc) => {
                        s.mismatches.push(Mismatch {
                            at_step: o.at_step,
                            addr,
                            site: o.site,
                            value: o.value,
                            class: Some(c),
                        });
                    }
                    _ => {}
                }
            }
            None => {
                let is_queue = matches!(o.site, FaultSite::QueueAddr(_) | FaultSite::QueueVal(_));
                if is_queue {
                    s.skipped_depth += 1;
                } else {
                    s.unmapped += 1;
                }
                // An SDC the analysis never even saw is still a soundness
                // failure: the cell map must cover every executed state.
                if o.verdict == Verdict::Sdc {
                    s.mismatches.push(Mismatch {
                        at_step: o.at_step,
                        addr,
                        site: o.site,
                        value: o.value,
                        class: None,
                    });
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zap::analyze_zaps;
    use std::sync::Arc;
    use talft_faultsim::{single_fault_grid, CampaignConfig};
    use talft_isa::assemble;

    #[test]
    fn protected_store_grid_validates_exhaustively() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let program = Arc::new(asm.program);
        let report = analyze_zaps(&program);
        let cfg = CampaignConfig {
            stride: 1,
            mutations_per_site: 2,
            ..CampaignConfig::default()
        };
        let grid = single_fault_grid(&program, &cfg).expect("golden halts");
        assert_eq!(grid.count(Verdict::Sdc), 0, "Theorem 4 on the dynamic side");
        let s = cross_validate(&report, &grid);
        assert!(s.holds());
        assert!(s.checked > 0);
        assert_eq!(s.unmapped, 0, "every executed cell is classified");
        assert_eq!(s.skipped_depth, 0, "static depths match the golden run");
    }

    #[test]
    fn unprotected_store_sdc_lands_on_vulnerable_cells() {
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let program = Arc::new(asm.program);
        let report = analyze_zaps(&program);
        let cfg = CampaignConfig {
            stride: 1,
            mutations_per_site: 3,
            ..CampaignConfig::default()
        };
        let grid = single_fault_grid(&program, &cfg).expect("golden halts");
        let s = cross_validate(&report, &grid);
        assert!(
            s.holds(),
            "even on broken code, every SDC must land on a vulnerable cell: {:?}",
            s.mismatches
        );
        assert!(
            grid.count(Verdict::Sdc) == 0 || s.predicted_sdc > 0,
            "observed SDCs were predicted"
        );
    }
}
