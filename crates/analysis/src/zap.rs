//! Static zap-vulnerability classification: the per-cell analogue of the
//! k=1 injection campaign.
//!
//! A **cell** is a (code address, fault site) pair: zap register `r` (or
//! `d`, or a pc, or a store-queue slot) in a machine state about to fetch
//! or execute the instruction at that address. Each cell is classified:
//!
//! * [`ZapClass::Detected`] — some path routes the corruption into a
//!   dual-compare (`stB`, `jmpB`, `bzB`, a `d`-guard, the fetch pc check),
//!   so the machine faults before corrupt data can escape; the corruption
//!   may also die or be masked first.
//! * [`ZapClass::Benign`] — the corruption provably dies (overwritten or
//!   never consumed) without meeting any compare: at worst a dissimilar
//!   final state, never a wrong output.
//! * [`ZapClass::Vulnerable`] — some path lets the corruption reach
//!   *both* sides of a compare (or the analysis had to bail), so a wrong
//!   output can be committed: potential silent data corruption.
//!
//! The soundness argument mirrors Theorem 4: outputs happen only at `stB`
//! commits and control transfers only at `jmpB`/`bzB` commits, all of
//! which compare a green value against a blue one. A single zap that
//! taints only one side either trips the compare (detected) or — because
//! the compare passed — held the golden value all along, which is why the
//! may-taint transfer *sanitizes* compared registers on pass edges.
//! `Detected`/`Benign` cells therefore admit no SDC, which is exactly what
//! [`cross_validate`](crate::diff::cross_validate) checks against the
//! dynamic [`FaultGrid`](talft_faultsim::FaultGrid).
//!
//! Special sites need no fixpoint:
//!
//! * **pc zaps** are detected by the very next fetch (`pcG` vs `pcB`),
//!   healed by a committed transfer (both pcs overwritten), or masked by
//!   `halt` — never silent. Classified `Detected` everywhere.
//! * **`d` zaps**: every consumer of `d` guards it (`jmpG`/`bzG`/untaken
//!   `bz` require `d = 0`; `jmpB`/taken `bzB` require `rd = d`), so the
//!   zap faults at the first consumer — `Detected` when a `jmp`/`bz` is
//!   reachable, `Benign` otherwise.

use std::collections::BTreeMap;

use talft_isa::{Color, Gpr, Instr, OpSrc, Program};

use crate::cfg::Cfg;
use crate::live::{liveness, Liveness};

/// Static verdict for one (address, site) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZapClass {
    /// Routed into a dual-compare: the machine faults (or masks) — no SDC.
    Detected,
    /// Provably dies without consequence — no SDC.
    Benign,
    /// May corrupt both sides of a compare: SDC possible.
    Vulnerable,
}

impl std::fmt::Display for ZapClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZapClass::Detected => write!(f, "detected"),
            ZapClass::Benign => write!(f, "benign"),
            ZapClass::Vulnerable => write!(f, "vulnerable"),
        }
    }
}

/// Static coverage over every reachable cell of a program.
#[derive(Debug, Clone, Default)]
pub struct ZapReport {
    /// GPR cells, keyed `(addr, register index)`.
    pub gpr: BTreeMap<(i64, u16), ZapClass>,
    /// Store-queue slot cells, keyed `(addr, slot index from the back)`
    /// (slot 0 = oldest = next to be popped by `stB`).
    pub queue: BTreeMap<(i64, usize), ZapClass>,
    /// pc cells (one per address; green and blue are symmetric).
    pub pc: BTreeMap<i64, ZapClass>,
    /// `d` (destination latch) cells.
    pub dst: BTreeMap<i64, ZapClass>,
    /// Set when the analyzer refused to classify (then all maps are empty).
    pub bailed: Option<String>,
}

impl ZapReport {
    fn classes(&self) -> impl Iterator<Item = ZapClass> + '_ {
        self.gpr
            .values()
            .chain(self.queue.values())
            .chain(self.pc.values())
            .chain(self.dst.values())
            .copied()
    }

    /// Cell counts as `(detected, benign, vulnerable)`.
    #[must_use]
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in self.classes() {
            match c {
                ZapClass::Detected => t.0 += 1,
                ZapClass::Benign => t.1 += 1,
                ZapClass::Vulnerable => t.2 += 1,
            }
        }
        t
    }

    /// Total classified cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.classes().count()
    }

    /// Fraction of cells provably safe (detected or benign); the static
    /// analogue of campaign fault coverage. 1.0 for an empty report.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let (d, b, v) = self.tally();
        let total = d + b + v;
        if total == 0 {
            1.0
        } else {
            (d + b) as f64 / total as f64
        }
    }

    /// Fraction of cells classified `Detected`.
    #[must_use]
    pub fn detected_fraction(&self) -> f64 {
        let (d, b, v) = self.tally();
        let total = d + b + v;
        if total == 0 {
            0.0
        } else {
            d as f64 / total as f64
        }
    }
}

/// The taint state: which locations *may* differ from the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Taint {
    /// GPR bitmask (bit `i` = `r{i}`).
    regs: u64,
    /// `d` may differ from golden.
    d: bool,
    /// Queue slots, bit 0 = back/oldest (the next `stB` pop).
    queue: u64,
}

impl Taint {
    fn any(self) -> bool {
        self.regs != 0 || self.d || self.queue != 0
    }

    fn join(self, o: Taint) -> Taint {
        Taint {
            regs: self.regs | o.regs,
            d: self.d || o.d,
            queue: self.queue | o.queue,
        }
    }

    fn tr(self, g: Gpr) -> bool {
        self.regs & (1u64 << g.0) != 0
    }

    fn set(&mut self, g: Gpr, tainted: bool) {
        if tainted {
            self.regs |= 1u64 << g.0;
        } else {
            self.regs &= !(1u64 << g.0);
        }
    }

    fn clear(&mut self, g: Gpr) {
        self.set(g, false);
    }
}

#[inline]
fn ix(addr: i64) -> usize {
    (addr - 1) as usize
}

/// Build the CFG and liveness, then classify every reachable cell.
#[must_use]
pub fn analyze_zaps(program: &Program) -> ZapReport {
    let cfg = Cfg::build(program);
    let Some(live) = liveness(program, &cfg) else {
        return ZapReport {
            bailed: Some(format!(
                "{} GPRs exceed the 64-bit taint mask",
                program.num_gprs
            )),
            ..ZapReport::default()
        };
    };
    analyze_zaps_with(program, &cfg, &live)
}

/// Classify every reachable cell against a prebuilt CFG and liveness.
#[must_use]
pub fn analyze_zaps_with(program: &Program, cfg: &Cfg, live: &Liveness) -> ZapReport {
    let mut report = ZapReport::default();
    if program.num_gprs > 64 {
        report.bailed = Some(format!(
            "{} GPRs exceed the 64-bit taint mask",
            program.num_gprs
        ));
        return report;
    }
    // Recorded depth conflicts mean the static queue indexing may disagree
    // with some dynamic path; refuse to place tainted pushes.
    let pessimistic_queue = !cfg.depth_conflicts.is_empty();
    let reaches_check = reaches_check(program, cfg);
    for a in 1..=cfg.n as i64 {
        if !cfg.reachable[ix(a)] {
            continue;
        }
        report.pc.insert(a, ZapClass::Detected);
        report.dst.insert(
            a,
            if reaches_check[ix(a)] {
                ZapClass::Detected
            } else {
                ZapClass::Benign
            },
        );
        for g in 0..program.num_gprs {
            let class = if live.live_in[ix(a)] & (1u64 << g) == 0 {
                // Dead registers are never read again: at worst a
                // dissimilar (non-output) final state.
                ZapClass::Benign
            } else {
                run_seed(
                    program,
                    cfg,
                    pessimistic_queue,
                    a,
                    Taint {
                        regs: 1u64 << g,
                        ..Taint::default()
                    },
                )
            };
            report.gpr.insert((a, g), class);
        }
        if let Some(depth) = cfg.depth_in[ix(a)] {
            for slot in 0..depth {
                let class = if slot >= 64 {
                    ZapClass::Vulnerable
                } else {
                    run_seed(
                        program,
                        cfg,
                        pessimistic_queue,
                        a,
                        Taint {
                            queue: 1u64 << slot,
                            ..Taint::default()
                        },
                    )
                };
                report.queue.insert((a, slot), class);
            }
        }
    }
    report
}

/// Per-address: can execution starting here reach any `jmp`/`bz` (all of
/// which guard `d`)?
fn reaches_check(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let mut rc: Vec<bool> = program
        .instrs
        .iter()
        .map(|i| matches!(i, Instr::Jmp { .. } | Instr::Bz { .. }))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for a in (1..=cfg.n as i64).rev() {
            if !rc[ix(a)] && cfg.succs[ix(a)].iter().any(|&s| rc[ix(s)]) {
                rc[ix(a)] = true;
                changed = true;
            }
        }
    }
    rc
}

/// Propagate one seeded taint to a fixpoint; classify the cell.
fn run_seed(
    program: &Program,
    cfg: &Cfg,
    pessimistic_queue: bool,
    at: i64,
    seed: Taint,
) -> ZapClass {
    let mut state: Vec<Option<Taint>> = vec![None; cfg.n];
    state[ix(at)] = Some(seed);
    let mut work = vec![at];
    let mut checked = false;
    while let Some(a) = work.pop() {
        let t = state[ix(a)].expect("worklist entries have state");
        match transfer(program, cfg, a, t, pessimistic_queue, &mut checked) {
            Err(Vulnerable) => return ZapClass::Vulnerable,
            Ok(edges) => {
                for (s, ts) in edges {
                    if !ts.any() {
                        continue;
                    }
                    let merged = match state[ix(s)] {
                        None => ts,
                        Some(cur) => cur.join(ts),
                    };
                    if state[ix(s)] != Some(merged) {
                        state[ix(s)] = Some(merged);
                        work.push(s);
                    }
                }
            }
        }
    }
    if checked {
        ZapClass::Detected
    } else {
        ZapClass::Benign
    }
}

/// Marker error: the taint may reach both sides of a compare.
struct Vulnerable;

/// One instruction's taint transfer. Sets `checked` whenever a tainted
/// value flows into a dual-compare (a dynamic instance may fault there);
/// pass edges sanitize compared values (the compare passing proves they
/// held golden values).
fn transfer(
    program: &Program,
    cfg: &Cfg,
    a: i64,
    t: Taint,
    pessimistic_queue: bool,
    checked: &mut bool,
) -> Result<Vec<(i64, Taint)>, Vulnerable> {
    let fall = |t: Taint| -> Vec<(i64, Taint)> {
        if program.is_code_addr(a + 1) {
            vec![(a + 1, t)]
        } else {
            Vec::new()
        }
    };
    // Follow a committed blue transfer; with an unresolved target the
    // analysis cannot continue — surviving taint means "anything may
    // happen", so bail.
    let goto_blue = |out: Taint| -> Result<Vec<(i64, Taint)>, Vulnerable> {
        match cfg.blue_target[ix(a)] {
            Some(tgt) if program.is_code_addr(tgt) => Ok(vec![(tgt, out)]),
            _ if out.any() => Err(Vulnerable),
            _ => Ok(Vec::new()),
        }
    };
    match program.instrs[ix(a)] {
        Instr::Op { rd, rs, src2, .. } => {
            let taint = t.tr(rs)
                || match src2 {
                    OpSrc::Reg(rt) => t.tr(rt),
                    OpSrc::Imm(_) => false,
                };
            let mut o = t;
            o.set(rd, taint);
            Ok(fall(o))
        }
        Instr::Mov { rd, .. } => {
            let mut o = t;
            o.clear(rd);
            Ok(fall(o))
        }
        Instr::Ld {
            color: Color::Green,
            rd,
            rs,
        } => {
            // ldG snoops the queue by address: any tainted slot may alias.
            let mut o = t;
            o.set(rd, t.tr(rs) || t.queue != 0);
            Ok(fall(o))
        }
        Instr::Ld {
            color: Color::Blue,
            rd,
            rs,
        } => {
            let mut o = t;
            o.set(rd, t.tr(rs));
            Ok(fall(o))
        }
        Instr::St {
            color: Color::Green,
            rd,
            rs,
        } => {
            let mut o = t;
            if t.tr(rd) || t.tr(rs) {
                // Place the tainted pair at the front of the queue, i.e.
                // at bit `depth` counting from the back.
                match cfg.depth_in[ix(a)] {
                    Some(depth) if depth < 64 && !pessimistic_queue => o.queue |= 1u64 << depth,
                    _ => return Err(Vulnerable),
                }
            }
            Ok(fall(o))
        }
        Instr::St {
            color: Color::Blue,
            rd,
            rs,
        } => {
            let slot = t.queue & 1 != 0;
            let regs = t.tr(rd) || t.tr(rs);
            if slot && regs {
                // Queue entry and compare registers both corrupt: the
                // compare can pass on a non-golden pair — SDC.
                return Err(Vulnerable);
            }
            if slot || regs {
                *checked = true;
            }
            let mut o = t;
            o.queue >>= 1;
            o.clear(rd);
            o.clear(rs);
            Ok(fall(o))
        }
        Instr::Jmp {
            color: Color::Green,
            rd,
        } => {
            if t.d {
                // jmpG requires d = 0; a corrupt d faults here.
                *checked = true;
            }
            let mut o = t;
            o.d = t.tr(rd);
            Ok(fall(o))
        }
        Instr::Jmp {
            color: Color::Blue,
            rd,
        } => {
            if t.d && t.tr(rd) {
                return Err(Vulnerable);
            }
            if t.d || t.tr(rd) {
                *checked = true;
            }
            let mut o = t;
            o.d = false;
            o.clear(rd);
            goto_blue(o)
        }
        Instr::Bz {
            color: Color::Green,
            rz,
            rd,
        } => {
            if t.d {
                // Both arms of bzG require d = 0.
                *checked = true;
            }
            let mut o = t;
            // A corrupt rz flips whether d latches; a corrupt rd latches
            // a wrong target. Either way d may now differ from golden.
            o.d = t.tr(rz) || t.tr(rd);
            Ok(fall(o))
        }
        Instr::Bz {
            color: Color::Blue,
            rz,
            rd,
        } => {
            if t.d && (t.tr(rz) || t.tr(rd)) {
                // d plus a blue operand corrupt: a wrong-target commit or
                // a silent wrong-direction fall-through becomes possible.
                return Err(Vulnerable);
            }
            if t.d || t.tr(rz) || t.tr(rd) {
                *checked = true;
            }
            // One-sided taint cannot flip the branch direction (the d
            // guard catches it), so both CFG edges correspond to golden
            // directions. Untaken keeps operand taint; taken compares
            // rd = d and rz = 0, proving them golden.
            let mut untaken = t;
            untaken.d = false;
            let mut taken = t;
            taken.d = false;
            taken.clear(rz);
            taken.clear(rd);
            let mut edges = fall(untaken);
            edges.extend(goto_blue(taken)?);
            Ok(edges)
        }
        Instr::Halt => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talft_isa::assemble;

    const STORE: &str = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  mov r3, B 5
  mov r4, B 4096
  stB r4, r3
  halt
"#;

    #[test]
    fn protected_store_has_no_vulnerable_cells() {
        let asm = assemble(STORE).expect("assembles");
        let report = analyze_zaps(&asm.program);
        assert!(report.bailed.is_none());
        let (d, b, v) = report.tally();
        assert_eq!(v, 0, "duplicated store is single-fault safe");
        assert!(d > 0 && b > 0);
        // r1 feeds the green store side: zapping it right after its def
        // is caught by the stB compare.
        assert_eq!(report.gpr.get(&(2, 1)), Some(&ZapClass::Detected));
        // The queued pair between stG and stB is guarded by the pop.
        assert_eq!(report.queue.get(&(4, 0)), Some(&ZapClass::Detected));
        // pc zaps always hit the fetch comparison.
        assert!(report.pc.values().all(|&c| c == ZapClass::Detected));
    }

    #[test]
    fn unduplicated_store_is_vulnerable() {
        // One register feeds *both* sides of the store pair: a single zap
        // of r1 between stG and stB corrupts both compare sides at once.
        let src = r#"
.data
region out at 4096 len 1 : int output
.code
main:
  .pre { forall m:mem; mem: m; }
  mov r1, G 5
  mov r2, G 4096
  stG r2, r1
  stB r2, r1
  halt
"#;
        let asm = assemble(src).expect("assembles");
        let report = analyze_zaps(&asm.program);
        // Zapping r1 *before* the stG poisons the queued pair and the
        // register the stB will compare against it — both sides corrupt.
        assert_eq!(
            report.gpr.get(&(3, 1)),
            Some(&ZapClass::Vulnerable),
            "shared store operand defeats the dual compare"
        );
        // Zapping r1 *after* the push only corrupts the register side:
        // the compare against the golden queued pair catches it.
        assert_eq!(report.gpr.get(&(4, 1)), Some(&ZapClass::Detected));
        let (_, _, v) = report.tally();
        assert!(v > 0);
    }
}
